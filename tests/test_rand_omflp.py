"""Tests for the randomized algorithm RAND-OMFLP (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.base import run_online
from repro.algorithms.offline.brute_force import BruteForceSolver
from repro.algorithms.online.rand_omflp import RandOMFLPAlgorithm
from repro.core.instance import Instance
from repro.core.requests import RequestSequence
from repro.core.trace import CoinFlipEvent
from repro.costs.count_based import ConstantCost
from repro.exceptions import AlgorithmError
from repro.metric.factories import uniform_line_metric
from repro.metric.single_point import SinglePointMetric
from repro.workloads.uniform import uniform_workload
from tests.conftest import random_small_instance


class TestRandBasics:
    def test_feasible_on_small_instance(self, small_instance):
        result = run_online(RandOMFLPAlgorithm(), small_instance, rng=0)
        result.solution.validate(small_instance.requests)
        assert result.total_cost > 0

    def test_deterministic_given_seed(self, small_instance):
        a = run_online(RandOMFLPAlgorithm(), small_instance, rng=123)
        b = run_online(RandOMFLPAlgorithm(), small_instance, rng=123)
        assert a.total_cost == pytest.approx(b.total_cost)
        assert [f.point for f in a.solution.facilities] == [f.point for f in b.solution.facilities]

    def test_different_seeds_may_differ(self, small_instance):
        costs = {round(run_online(RandOMFLPAlgorithm(), small_instance, rng=s).total_cost, 6)
                 for s in range(8)}
        assert len(costs) >= 1  # randomized, but never infeasible; often > 1 distinct value

    def test_first_request_always_served(self):
        metric = uniform_line_metric(3)
        instance = Instance(metric, ConstantCost(2), RequestSequence.from_tuples([(1, {0, 1})]))
        result = run_online(RandOMFLPAlgorithm(), instance, rng=5)
        result.solution.validate(instance.requests)
        assert result.solution.num_facilities() >= 1

    def test_coin_flip_probabilities_are_valid(self, small_instance):
        result = run_online(RandOMFLPAlgorithm(), small_instance, rng=1, trace=True)
        flips = [e for e in result.trace.events if isinstance(e, CoinFlipEvent)]
        assert flips, "RAND-OMFLP should record coin flips"
        for flip in flips:
            assert 0.0 <= flip.probability <= 1.0 + 1e-12

    def test_process_before_prepare_raises(self, small_instance):
        algorithm = RandOMFLPAlgorithm()
        with pytest.raises(AlgorithmError):
            algorithm.process(small_instance.requests[0], None, np.random.default_rng(0))


class TestRandBehaviour:
    def test_colocated_requests_reuse_facilities(self):
        """Requests at a single point with constant cost: expected cost stays O(1)·OPT."""
        requests = RequestSequence.from_tuples([(0, {e}) for e in range(6)])
        instance = Instance(SinglePointMetric(), ConstantCost(6), requests)
        costs = [run_online(RandOMFLPAlgorithm(), instance, rng=s).total_cost for s in range(10)]
        assert np.mean(costs) <= 6.0  # far below the per-commodity cost |S| = 6
        assert min(costs) >= 1.0

    def test_expected_cost_within_theorem19_bound_on_tiny(self, tiny_instance):
        from repro.utils.maths import log_over_loglog
        import math

        opt = BruteForceSolver().solve(tiny_instance).total_cost
        costs = [run_online(RandOMFLPAlgorithm(), tiny_instance, rng=s).total_cost for s in range(12)]
        mean_cost = float(np.mean(costs))
        assert mean_cost >= opt - 1e-9
        # A very generous constant; the point is the shape sqrt(|S|) log n / log log n.
        bound = 50.0 * math.sqrt(tiny_instance.num_commodities) * log_over_loglog(
            tiny_instance.num_requests
        )
        assert mean_cost <= bound * opt

    @pytest.mark.parametrize("seed", range(5))
    def test_feasible_on_random_instances(self, seed):
        instance = random_small_instance(seed, num_requests=15, num_commodities=4, num_points=8)
        result = run_online(RandOMFLPAlgorithm(), instance, rng=seed)
        result.solution.validate(instance.requests)

    def test_uses_large_facilities_when_worthwhile(self):
        """Many co-located multi-commodity requests should trigger large facilities."""
        requests = RequestSequence.from_tuples([(0, {0, 1, 2, 3})] * 10)
        instance = Instance(SinglePointMetric(), ConstantCost(4), requests)
        large_counts = [
            run_online(RandOMFLPAlgorithm(), instance, rng=s).solution.num_large_facilities()
            for s in range(10)
        ]
        assert max(large_counts) >= 1


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_rand_always_feasible_property(seed):
    """Property: RAND-OMFLP always produces a feasible solution."""
    workload = uniform_workload(
        num_requests=8, num_commodities=3, num_points=5, max_demand=3, rng=seed
    )
    result = run_online(RandOMFLPAlgorithm(), workload.instance, rng=seed)
    result.solution.validate(workload.instance.requests)
