"""Unit tests for repro.utils.maths."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.maths import (
    ceil_div,
    geometric_levels,
    harmonic_number,
    log_over_loglog,
    logspace_int,
    positive_part,
    round_down_power_of_two,
    round_up_power_of_two,
    safe_log,
)


class TestHarmonicNumber:
    def test_base_cases(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(2) == pytest.approx(1.5)
        assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic_number(-1)

    def test_asymptotic_branch_matches_exact_sum(self):
        n = 200
        exact = sum(1.0 / k for k in range(1, n + 1))
        assert harmonic_number(n) == pytest.approx(exact, rel=1e-10)

    @given(st.integers(min_value=1, max_value=5000))
    def test_monotone_and_close_to_log(self, n):
        value = harmonic_number(n)
        assert value >= harmonic_number(n - 1)
        assert math.log(n) < value <= math.log(n) + 1.0


class TestLogHelpers:
    def test_safe_log_clamps_below_one(self):
        assert safe_log(0.5) == 0.0
        assert safe_log(1.0) == 0.0
        assert safe_log(math.e) == pytest.approx(1.0)
        assert safe_log(8, base=2) == pytest.approx(3.0)

    def test_log_over_loglog_small_values(self):
        assert log_over_loglog(1.0) == 1.0
        assert log_over_loglog(2.0) >= 0.5

    def test_log_over_loglog_large_values(self):
        n = 1e6
        expected = math.log(n) / math.log(math.log(n))
        assert log_over_loglog(n) == pytest.approx(expected)

    @given(st.floats(min_value=2.0, max_value=1e9))
    def test_log_over_loglog_positive_and_below_log(self, n):
        value = log_over_loglog(n)
        assert value > 0
        assert value <= max(math.log(n), 1.0) + 1e-9


class TestPositivePart:
    def test_scalar(self):
        assert positive_part(3.0) == 3.0
        assert positive_part(-2.0) == 0.0
        assert positive_part(0.0) == 0.0

    def test_array(self):
        result = positive_part(np.array([-1.0, 0.0, 2.5]))
        np.testing.assert_allclose(result, [0.0, 0.0, 2.5])


class TestPowerOfTwoRounding:
    @pytest.mark.parametrize(
        "value,expected",
        [(1.0, 1.0), (1.5, 1.0), (2.0, 2.0), (3.99, 2.0), (4.0, 4.0), (0.75, 0.5), (0.5, 0.5)],
    )
    def test_round_down(self, value, expected):
        assert round_down_power_of_two(value) == expected

    @pytest.mark.parametrize(
        "value,expected",
        [(1.0, 1.0), (1.5, 2.0), (2.0, 2.0), (4.01, 8.0), (0.3, 0.5)],
    )
    def test_round_up(self, value, expected):
        assert round_up_power_of_two(value) == expected

    def test_zero_maps_to_zero(self):
        assert round_down_power_of_two(0.0) == 0.0
        assert round_up_power_of_two(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            round_down_power_of_two(-1.0)
        with pytest.raises(ValueError):
            round_up_power_of_two(-0.1)

    @given(st.floats(min_value=1e-6, max_value=1e12))
    def test_round_down_is_power_of_two_and_below(self, value):
        rounded = round_down_power_of_two(value)
        assert rounded <= value * (1 + 1e-12)
        assert 2 * rounded > value * (1 - 1e-12)
        exponent = math.log2(rounded)
        assert abs(exponent - round(exponent)) < 1e-9


class TestCeilDiv:
    def test_values(self):
        assert ceil_div(0, 3) == 0
        assert ceil_div(1, 3) == 1
        assert ceil_div(3, 3) == 1
        assert ceil_div(4, 3) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)
        with pytest.raises(ValueError):
            ceil_div(-1, 2)


class TestGrids:
    def test_geometric_levels_cover_range(self):
        levels = geometric_levels(1.0, 10.0)
        assert levels[0] == 1.0
        assert levels[-1] >= 10.0
        ratios = levels[1:] / levels[:-1]
        np.testing.assert_allclose(ratios, 2.0)

    def test_geometric_levels_validation(self):
        with pytest.raises(ValueError):
            geometric_levels(0.0, 1.0)
        with pytest.raises(ValueError):
            geometric_levels(2.0, 1.0)
        with pytest.raises(ValueError):
            geometric_levels(1.0, 2.0, factor=1.0)

    def test_logspace_int(self):
        values = logspace_int(10, 1000, 3)
        assert values[0] >= 10 and values[-1] == 1000
        assert values == sorted(set(values))

    def test_logspace_int_single(self):
        assert logspace_int(5, 500, 1) == [500]

    def test_logspace_int_validation(self):
        with pytest.raises(ValueError):
            logspace_int(0, 10, 2)
        with pytest.raises(ValueError):
            logspace_int(10, 5, 2)
        with pytest.raises(ValueError):
            logspace_int(1, 10, 0)
