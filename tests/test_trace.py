"""The span tracer: determinism, passivity, bounded memory, export, CLI.

Pins the contracts of :mod:`repro.trace`:

* **passivity** — a traced run's events, costs and final RNG state are
  exactly ``==`` an untraced run's, over the algorithm × scenario × seed
  grid (tracing observes; it never steers);
* **determinism** — span ids, parent links, event-clock ticks, ordinals and
  attributes are a pure function of seed + spec: the wall-clock-free payload
  and the event-clock Chrome export are byte-identical across same-seed
  runs;
* **bounded memory** — the ring buffer caps retained spans (dropping the
  oldest, counted), while the phase aggregates still fold every recorded
  observation;
* **structure** — retained spans form a well-nested tree with a monotone
  event clock, and cross-process engine shards re-base into the parent
  trace deterministically.

Plus the Chrome trace-event export/validation surface and the ``repro
trace`` record/export/summarize CLI.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenarios.run import ScenarioSession
from repro.trace.export import (
    chrome_trace,
    render_summary,
    summarize_trace,
    validate_chrome_trace,
)
from repro.trace.span import Span
from repro.trace.tracer import TraceError, Tracer, validate_payload
from repro.utils.rng import ensure_rng, rng_state

# The equivalence harness already curates the algorithm/instance grid; the
# trace passivity contract is pinned over the same one (tests share a
# directory, so the sibling module imports under pytest's rootdir insertion).
from test_accel_equivalence import ALGORITHMS, SCENARIOS

SEEDS = [0, 1]


# Module-level and name-registered, so it pickles across the process pool
# and survives result-store round-trips.
from repro.engine import engine_task  # noqa: E402


@engine_task("test-trace/draw")
def _draw_task(case, rng):
    return {"case_id": case["case_id"], "draw": float(rng.random())}

PASSIVITY_CASES = [
    pytest.param(algorithm, scenario, seed, id=f"{algorithm}-{scenario}-s{seed}")
    for algorithm, (_, single_only) in ALGORITHMS.items()
    for scenario, num_commodities, _ in SCENARIOS
    if not (single_only and num_commodities != 1)
    for seed in SEEDS
]

SCENARIO_SPEC = {
    "algorithm": "meyerson-ofl",
    "scenario": {
        "kind": "uniform",
        "num_commodities": 1,
        "num_points": 64,
        "max_demand": 1,
    },
    "seed": 0,
}


def _traced_scenario_run(n: int = 40, **tracer_kwargs) -> Tracer:
    tracer = Tracer(**{"detail_stride": 1, **tracer_kwargs})
    session = ScenarioSession(SCENARIO_SPEC, tracer=tracer)
    session.advance(n)
    session.finalize()
    return tracer


# ---------------------------------------------------------------------------
# Construction, coercion, misuse
# ---------------------------------------------------------------------------
def test_tracer_coercion_and_validation():
    assert Tracer.coerce(None) is None
    assert Tracer.coerce(False) is None
    fresh = Tracer.coerce(True)
    assert isinstance(fresh, Tracer)
    live = Tracer(buffer_size=8)
    assert Tracer.coerce(live) is live
    with pytest.raises(TraceError, match="cannot coerce"):
        Tracer.coerce("yes")
    with pytest.raises(TraceError, match="buffer_size"):
        Tracer(buffer_size=0)
    with pytest.raises(TraceError, match="detail_stride"):
        Tracer(detail_stride=0)


def test_end_must_match_innermost_open_span():
    tracer = Tracer()
    outer = tracer.begin("outer", category="session")
    tracer.begin("inner", category="session")
    with pytest.raises(TraceError, match="innermost"):
        tracer.end(outer)


def test_validate_payload_rejects_malformed_envelopes():
    good = Tracer().to_payload()
    assert validate_payload(json.loads(json.dumps(good)))["format"] == "repro.trace"
    with pytest.raises(TraceError, match="not a repro trace payload"):
        validate_payload({"format": "something-else"})
    with pytest.raises(TraceError, match="version"):
        validate_payload(dict(good, version=99))
    with pytest.raises(TraceError, match="spans"):
        validate_payload(dict(good, spans="nope"))


# ---------------------------------------------------------------------------
# Deterministic stratified sampling
# ---------------------------------------------------------------------------
def test_should_detail_selects_one_index_per_stratum():
    stride, strata = 16, 12
    tracer = Tracer(detail_stride=stride, sample_seed=3)
    chosen = [
        index
        for index in range(stride * strata)
        if tracer.should_detail(index)
    ]
    assert len(chosen) == strata
    for rank, index in enumerate(chosen):
        assert rank * stride <= index < (rank + 1) * stride

    # Pure function of the configuration: a fresh tracer agrees exactly,
    # including on repeated (memoized) queries of the same index.
    clone = Tracer(detail_stride=stride, sample_seed=3)
    for index in range(stride * strata):
        first = clone.should_detail(index)
        assert first == (index in chosen)
        assert clone.should_detail(index) == first

    # A different sample seed picks a different sample (not the same offsets
    # in every one of 12 strata).
    other = Tracer(detail_stride=stride, sample_seed=4)
    assert [i for i in range(stride * strata) if other.should_detail(i)] != chosen

    # stride 1 details everything.
    assert all(Tracer(detail_stride=1).should_detail(i) for i in range(8))


# ---------------------------------------------------------------------------
# Aggregates and the bounded ring buffer
# ---------------------------------------------------------------------------
def test_record_phase_folds_every_observation_through_the_batch_buffer():
    tracer = Tracer()
    for i in range(700):  # crosses the internal flush threshold mid-way
        tracer.record_phase("phase.a", 0.001 * (i + 1))
        if i % 2 == 0:
            tracer.record_phase("phase.b", 0.5)
    summary = tracer.phase_summary()
    assert summary["phase.a"]["count"] == 700
    assert summary["phase.a"]["min_seconds"] == pytest.approx(0.001)
    assert summary["phase.a"]["max_seconds"] == pytest.approx(0.7)
    assert summary["phase.a"]["total_seconds"] == pytest.approx(0.001 * 700 * 701 / 2)
    assert summary["phase.b"]["count"] == 350
    # record_phase never creates spans or ticks the event clock.
    assert len(tracer) == 0
    assert tracer.event_clock == 0
    # to_payload drains the same buffer (counts agree after a partial batch).
    tracer.record_phase("phase.a", 1.0)
    assert tracer.to_payload()["phases"]["phase.a"]["count"] == 701


def test_ring_buffer_caps_retention_but_not_aggregation():
    tracer = Tracer(buffer_size=8, detail_stride=1)
    for i in range(30):
        tracer.add("session.submit", category="session", ordinal=i, seconds=0.001)
    assert len(tracer) == 8
    assert tracer.dropped_spans == 22
    # The buffer keeps the newest spans; the aggregates saw all 30.
    assert [span.ordinal for span in tracer.spans()] == list(range(22, 30))
    assert tracer.phase_summary()["session.submit"]["count"] == 30
    meta = tracer.to_payload()["meta"]
    assert meta["spans_retained"] == 8 and meta["dropped_spans"] == 22


# ---------------------------------------------------------------------------
# Passivity: tracing on == tracing off, exactly
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("algorithm,scenario,seed", PASSIVITY_CASES)
def test_tracing_is_exactly_passive(algorithm, scenario, seed):
    """Traced vs untraced sessions: identical events, costs and RNG states.

    ``detail_stride=1`` exercises the full span path (begin/end plus every
    sub-phase) on *every* request — the worst case for interference.
    """
    from repro.api.session import OnlineSession

    builder = next(b for name, _, b in SCENARIOS if name == scenario)
    instance = builder(seed)
    factory, _ = ALGORITHMS[algorithm]

    def build(tracer):
        return OnlineSession(
            factory(True),
            instance.metric,
            instance.cost_function,
            commodities=instance.commodities,
            rng=ensure_rng(seed),
            tracer=tracer,
        )

    plain = build(None)
    traced = build(Tracer(detail_stride=1))
    for request in instance.requests:
        event_plain = plain.submit(request.point, request.commodities)
        event_traced = traced.submit(request.point, request.commodities)
        assert event_traced == event_plain
    assert rng_state(traced._rng) == rng_state(plain._rng)
    record_plain, record_traced = plain.finalize(), traced.finalize()
    assert record_traced.total_cost == record_plain.total_cost
    assert record_traced.opening_cost == record_plain.opening_cost
    assert record_traced.connection_cost == record_plain.connection_cost
    # The tracer did observe the stream it left untouched.
    tracer = traced.tracer
    assert tracer.phase_summary()["algorithm.process"]["count"] == len(
        instance.requests
    )
    assert any(span.name == "session.submit" for span in tracer.spans())


def test_scenario_session_traced_equals_untraced():
    plain = ScenarioSession(SCENARIO_SPEC)
    traced = ScenarioSession(SCENARIO_SPEC, tracer=Tracer(detail_stride=1))
    events_plain = plain.advance(48)
    events_traced = traced.advance(48)
    assert events_traced == events_plain
    assert traced.finalize().total_cost == plain.finalize().total_cost


# ---------------------------------------------------------------------------
# Span-tree structure
# ---------------------------------------------------------------------------
def test_span_tree_is_well_formed():
    tracer = _traced_scenario_run(40)
    spans = tracer.spans()
    assert spans and tracer.open_spans == 0

    by_id = {span.span_id: span for span in spans}
    assert len(by_id) == len(spans)  # unique ids
    # Spans are retained in finish order: event_end is strictly monotone.
    ends = [span.event_end for span in spans]
    assert ends == sorted(ends) and len(set(ends)) == len(ends)
    for span in spans:
        assert 0 <= span.event_start < span.event_end <= tracer.event_clock
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            # Children nest strictly inside their parent on the event clock.
            assert parent.event_start < span.event_start
            assert span.event_end <= parent.event_end

    # The session taxonomy is present and correlated by request ordinal.
    names = {span.name for span in spans}
    assert {
        "session.submit",
        "session.validate",
        "algorithm.process",
        "session.event",
        "scenario.draw",
        "scenario.observe",
    } <= names
    submits = [span for span in spans if span.name == "session.submit"]
    for submit in submits:
        children = [span for span in spans if span.parent_id == submit.span_id]
        assert {child.name for child in children} == {
            "session.validate",
            "algorithm.process",
            "session.event",
        }
        assert all(child.ordinal == submit.ordinal for child in children)


# ---------------------------------------------------------------------------
# Determinism: byte-identical wall-free payloads and event-clock exports
# ---------------------------------------------------------------------------
def test_same_seed_runs_export_byte_identically():
    first = _traced_scenario_run(40)
    second = _traced_scenario_run(40)

    payload_first = first.to_payload(include_wall=False)
    payload_second = second.to_payload(include_wall=False)
    assert json.dumps(payload_first, sort_keys=True) == json.dumps(
        payload_second, sort_keys=True
    )
    # No wall-clock field survives anywhere in the deterministic form.
    text = json.dumps(payload_first)
    assert "wall_start" not in text and "wall_duration" not in text
    assert "total_seconds" not in text

    chrome_first = chrome_trace(first.to_payload(), clock="event")
    chrome_second = chrome_trace(second.to_payload(), clock="event")
    assert json.dumps(chrome_first, sort_keys=True) == json.dumps(
        chrome_second, sort_keys=True
    )
    assert validate_chrome_trace(chrome_first) == len(chrome_first["traceEvents"])


def test_chrome_export_wall_clock_and_validation_errors():
    tracer = _traced_scenario_run(24)
    chrome = chrome_trace(tracer.to_payload(), clock="wall")
    count = validate_chrome_trace(chrome)
    assert count == len(chrome["traceEvents"])
    names = {event["name"] for event in chrome["traceEvents"]}
    assert {"process_name", "thread_name", "session.submit"} <= names
    complete = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
    assert complete and all(e["dur"] >= 0.0 for e in complete)

    with pytest.raises(TraceError, match="clock"):
        chrome_trace(tracer.to_payload(), clock="cpu")
    with pytest.raises(TraceError, match="traceEvents"):
        validate_chrome_trace({"events": []})
    with pytest.raises(TraceError, match="missing 'ts'"):
        validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 0}]}
        )


# ---------------------------------------------------------------------------
# Cross-process shard merge (engine)
# ---------------------------------------------------------------------------
def test_merge_shard_rebases_ids_clock_and_parents():
    def shard_payload():
        worker = Tracer(detail_stride=1)
        task = worker.begin("engine.task", category="engine", ordinal=7)
        worker.add("engine.compute", category="engine", ordinal=7, seconds=0.25)
        worker.end(task)
        return [span.to_dict() for span in worker.spans()]

    parent = Tracer()
    root = parent.begin("engine.plan", category="engine")
    merged = parent.merge_shard(shard_payload(), shard="abc123", parent_id=root.span_id)
    parent.end(root)

    assert all(span.shard == "abc123" for span in merged)
    task = next(span for span in merged if span.name == "engine.task")
    compute = next(span for span in merged if span.name == "engine.compute")
    assert task.parent_id == root.span_id  # worker root re-parented
    assert compute.parent_id == task.span_id  # intra-shard links preserved
    assert root.event_start < task.event_start < task.event_end <= root.event_end
    assert parent.phase_summary()["engine.compute"]["total_seconds"] == pytest.approx(
        0.25
    )

    # Determinism: merging the same shard into a fresh parent reproduces the
    # wall-free span set byte-for-byte.
    def merged_payload():
        tracer = Tracer()
        plan = tracer.begin("engine.plan", category="engine")
        tracer.merge_shard(shard_payload(), shard="abc123", parent_id=plan.span_id)
        tracer.end(plan)
        return json.dumps(tracer.to_payload(include_wall=False), sort_keys=True)

    assert merged_payload() == merged_payload()


def test_run_plan_tracing_spans_workers_and_stays_passive(tmp_path):
    from repro.engine import ExperimentPlan, run_plan
    from repro.parallel.pool import ParallelConfig

    cases = [{"case_id": i, "base": i} for i in range(6)]
    plan = ExperimentPlan("traced-plan", "test-trace/draw", cases, seed=11)
    config = ParallelConfig(workers=2, min_items_for_parallel=1)

    baseline = run_plan(plan, workers=1)
    tracer = Tracer(detail_stride=1)
    traced = run_plan(plan, config=config, tracer=tracer)
    assert [r.rows for r in traced.results] == [r.rows for r in baseline.results]

    spans = tracer.spans()
    plan_span = next(span for span in spans if span.name == "engine.plan")
    assert plan_span.attributes["tasks"] == 6
    task_spans = [span for span in spans if span.name == "engine.task"]
    assert len(task_spans) == 6
    assert sorted(span.ordinal for span in task_spans) == list(range(6))
    for span in task_spans:
        assert span.parent_id == plan_span.span_id
        assert span.shard is not None  # tagged with the task content hash
    # Shards merged in task order: worker span ordering is deterministic.
    assert [span.ordinal for span in task_spans] == list(range(6))
    assert tracer.phase_summary()["engine.compute"]["count"] == 6

    # Store hits show up as engine.store-hit spans instead of worker shards.
    store_dir = tmp_path / "store"
    from repro.engine import ResultStore

    store = ResultStore(store_dir)
    run_plan(plan, workers=1, store=store)
    rerun_tracer = Tracer()
    rerun = run_plan(plan, workers=1, store=store, tracer=rerun_tracer)
    assert rerun.reused_count == 6
    hits = [span for span in rerun_tracer.spans() if span.name == "engine.store-hit"]
    assert len(hits) == 6


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------
def test_summarize_trace_self_time_and_slowest():
    tracer = Tracer(detail_stride=1)
    with tracer.span("outer", category="session"):
        tracer.add("inner", category="session", seconds=0.0)
    summary = summarize_trace(tracer.to_payload(), top=5)
    outer = summary["self_time"]["outer"]
    inner_duration = next(
        span.wall_duration for span in tracer.spans() if span.name == "inner"
    )
    outer_duration = next(
        span.wall_duration for span in tracer.spans() if span.name == "outer"
    )
    assert outer["self_seconds"] == pytest.approx(outer_duration - inner_duration)
    assert [s["name"] for s in summary["slowest_spans"]][0] == "outer"
    rendered = render_summary(summary)
    assert "phase aggregates" in rendered and "self time" in rendered


# ---------------------------------------------------------------------------
# The ``repro trace`` CLI: record → export → summarize
# ---------------------------------------------------------------------------
def test_trace_cli_record_export_summarize_roundtrip(tmp_path, capsys):
    from repro.cli import main

    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(SCENARIO_SPEC))
    trace_path = tmp_path / "trace.json"
    assert (
        main(
            [
                "trace",
                "record",
                "--spec",
                str(spec_path),
                "--out",
                str(trace_path),
                "--max-requests",
                "32",
                "--stride",
                "1",
            ]
        )
        == 0
    )
    payload = validate_payload(json.loads(trace_path.read_text()))
    assert payload["meta"]["spans_retained"] > 0

    chrome_path = tmp_path / "chrome.json"
    assert (
        main(
            [
                "trace",
                "export",
                str(trace_path),
                "--out",
                str(chrome_path),
                "--clock",
                "event",
            ]
        )
        == 0
    )
    chrome = json.loads(chrome_path.read_text())
    assert validate_chrome_trace(chrome) > 0

    assert main(["trace", "summarize", str(trace_path), "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "phase aggregates" in out and "slowest retained spans" in out

    # Deterministic event-clock exports are byte-stable across re-records.
    trace_path_2 = tmp_path / "trace2.json"
    chrome_path_2 = tmp_path / "chrome2.json"
    main(
        [
            "trace",
            "record",
            "--spec",
            str(spec_path),
            "--out",
            str(trace_path_2),
            "--max-requests",
            "32",
            "--stride",
            "1",
        ]
    )
    main(
        [
            "trace",
            "export",
            str(trace_path_2),
            "--out",
            str(chrome_path_2),
            "--clock",
            "event",
        ]
    )
    assert chrome_path_2.read_bytes() == chrome_path.read_bytes()


def test_span_round_trips_with_and_without_wall_fields():
    span = Span(
        span_id=3,
        parent_id=1,
        name="session.submit",
        category="session",
        ordinal=9,
        event_start=4,
        event_end=11,
        attributes={"point": 2},
        wall_start=1.5,
        wall_duration=0.25,
        shard="ab12",
    )
    assert Span.from_dict(span.to_dict()) == span
    stripped = Span.from_dict(span.to_dict(include_wall=False))
    assert stripped.wall_start == 0.0 and stripped.wall_duration == 0.0
    assert stripped.to_dict(include_wall=False) == span.to_dict(include_wall=False)
