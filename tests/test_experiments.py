"""Tests for the experiment registry, the individual experiments and the CLI.

Every registered experiment is executed with the quick profile; beyond "it
runs", each test checks the experiment-specific claims that EXPERIMENTS.md
reports (growth exponents, bound checks, expected winners).
"""

import json
import math

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import get_experiment, list_experiments, run_experiment
from repro.experiments.cli import build_parser, main


class TestRegistry:
    def test_all_design_md_experiments_registered(self):
        ids = list_experiments()
        expected = {
            "fig2-bound-curves",
            "thm2-single-point",
            "cor3-line-adversary",
            "thm4-pd-scaling",
            "thm19-rand-scaling",
            "thm18-cost-class",
            "baseline-separation",
            "duality-certificates",
            "covering-lemma",
            "fig3-connection-trace",
            "fotakis-ofl-regression",
        }
        assert expected <= set(ids)

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("does-not-exist")
        with pytest.raises(ExperimentError):
            run_experiment("fig2-bound-curves", profile="huge")


@pytest.fixture(scope="module")
def quick_results():
    """Run every experiment once (quick profile) and cache the results."""
    return {
        experiment_id: run_experiment(experiment_id, profile="quick", rng=0)
        for experiment_id in list_experiments()
    }


class TestAllExperimentsRun:
    def test_every_experiment_produces_rows_and_notes(self, quick_results):
        for experiment_id, result in quick_results.items():
            assert result.experiment_id == experiment_id
            assert result.rows, experiment_id
            assert result.notes, experiment_id
            assert result.to_table()
            assert result.to_markdown()


class TestFigure2:
    def test_curves_coincide_at_special_points_and_peak(self, quick_results):
        result = quick_results["fig2-bound-curves"]
        by_x = {row["x"]: row for row in result.rows}
        for x in (0.0, 1.0, 2.0):
            assert by_x[x]["gap_factor"] == pytest.approx(1.0)
        assert by_x[1.0]["upper_bound_sqrtS_power"] == pytest.approx(10_000**0.25)
        assert by_x[0.0]["upper_bound_sqrtS_power"] == pytest.approx(1.0)
        assert by_x[2.0]["lower_bound_sqrtS_power"] == pytest.approx(1.0)
        peak = max(row["upper_bound_sqrtS_power"] for row in result.rows)
        assert peak == pytest.approx(by_x[1.0]["upper_bound_sqrtS_power"])


class TestTheorem2:
    def test_every_algorithm_pays_at_least_sqrt_s(self, quick_results):
        result = quick_results["thm2-single-point"]
        for row in result.rows:
            assert row["opt_cost"] == pytest.approx(1.0)
            assert row["ratio"] >= 0.9 * row["predicted_sqrt_S"]
        assert result.extra_text and "Figure 1" in result.extra_text

    def test_pd_exponent_close_to_half(self, quick_results):
        result = quick_results["thm2-single-point"]
        note = next(n for n in result.notes if n.startswith("pd-omflp"))
        exponent = float(note.split("|S|^")[1].split()[0])
        assert 0.4 <= exponent <= 0.65


class TestBaselineSeparation:
    def test_constant_cost_separation(self, quick_results):
        result = quick_results["baseline-separation"]
        constant_rows = [r for r in result.rows if r["cost_kind"] == "constant"]
        largest = max(r["num_commodities"] for r in constant_rows)
        by_algorithm = {
            r["algorithm"]: r["ratio"]
            for r in constant_rows
            if r["num_commodities"] == largest
        }
        assert by_algorithm["per-commodity-fotakis"] >= largest * 0.9
        assert by_algorithm["pd-omflp"] <= 4.0
        assert by_algorithm["rand-omflp"] <= 10.0
        # The separation factor is at least of the order sqrt(|S|).
        assert (
            by_algorithm["per-commodity-fotakis"] / by_algorithm["pd-omflp"]
            >= math.sqrt(largest) / 2
        )


class TestDualityCertificates:
    def test_corollary8_and_gamma_feasibility(self, quick_results):
        result = quick_results["duality-certificates"]
        for row in result.rows:
            assert row["primal_over_duals"] <= 3.0 + 1e-9
            assert row["gamma_feasible"] is True or row["gamma_feasible"] == True  # noqa: E712
            assert row["max_feasible_scale"] >= row["gamma"] - 1e-12
            if not math.isnan(row["exact_opt"]):
                assert row["weak_duality_lower_bound"] <= row["exact_opt"] + 1e-6


class TestCoveringLemma:
    def test_bound_never_exceeded(self, quick_results):
        result = quick_results["covering-lemma"]
        for row in result.rows:
            assert row["max_weight_over_bound"] <= 1.0 + 1e-9


class TestScalingExperiments:
    def test_thm4_rows_have_valid_ratios(self, quick_results):
        result = quick_results["thm4-pd-scaling"]
        for row in result.rows:
            # Ratios are measured against the best available offline reference;
            # against an *upper bound* on OPT they may dip slightly below 1.
            assert row["ratio"] >= 0.6
            if row["reference_kind"] == "exact":
                assert row["ratio"] >= 1.0 - 1e-6
            assert row["reference_kind"] in ("exact", "upper-bound", "analytic")

    def test_thm19_includes_head_to_head(self, quick_results):
        result = quick_results["thm19-rand-scaling"]
        sweeps = {row["sweep"] for row in result.rows}
        assert "head-to-head" in sweeps
        head_to_head = [r for r in result.rows if r["sweep"] == "head-to-head"]
        for row in head_to_head:
            assert 0.2 <= row["ratio"] <= 5.0  # RAND within a small factor of PD

    def test_thm18_has_both_sides(self, quick_results):
        result = quick_results["thm18-cost-class"]
        sides = {row["side"] for row in result.rows}
        assert sides == {"adversary", "workload"}
        for row in result.rows:
            if row["side"] == "adversary":
                assert row["ratio"] >= 0.99  # OPT is analytic on the adversary side
            else:
                assert row["ratio"] >= 0.5  # heuristic (upper-bound) reference
        # At x = 2 (linear costs) the adversary cannot beat constant ratios by
        # exploiting bundling: predicted lower bound is 1.
        linear_rows = [r for r in result.rows if r["x"] == 2.0 and r["side"] == "adversary"]
        for row in linear_rows:
            assert row["predicted_lower"] == pytest.approx(1.0)

    def test_cor3_rows(self, quick_results):
        result = quick_results["cor3-line-adversary"]
        for row in result.rows:
            assert row["predicted_shape"] >= math.sqrt(row["num_commodities"])
            assert row["single_point_ratio"] >= 1.0
            assert row["line_game_ratio"] > 0.0

    def test_fig3_trace_reports_both_modes(self, quick_results):
        result = quick_results["fig3-connection-trace"]
        assert result.extra_text and "Figure 3" in result.extra_text
        assert all(row["connection_cost"] >= 0 for row in result.rows)

    def test_ofl_substrate_ratios_small(self, quick_results):
        result = quick_results["fotakis-ofl-regression"]
        for row in result.rows:
            # The reference is local-search (an upper bound on OPT), so ratios
            # can fall below 1; they must stay within a constant band.
            assert row["ratio"] >= 0.5
            assert row["ratio"] <= 12.0


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "thm2-single-point" in output

    def test_run_command_with_output(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "fig2-bound-curves",
                "--profile",
                "quick",
                "--seed",
                "1",
                "--output",
                str(tmp_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "fig2-bound-curves" in output
        saved = json.loads((tmp_path / "fig2-bound-curves.json").read_text())
        assert saved["experiment_id"] == "fig2-bound-curves"

    def test_run_markdown(self, capsys):
        assert main(["run", "covering-lemma", "--markdown"]) == 0
        assert "### covering-lemma" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiments_list(self, capsys):
        assert main(["experiments", "list"]) == 0
        assert "covering-lemma" in capsys.readouterr().out

    def test_experiments_run_with_workers_and_store(self, tmp_path, capsys):
        code = main(
            [
                "experiments",
                "run",
                "covering-lemma",
                "--workers",
                "2",
                "--store",
                str(tmp_path / "store"),
            ]
        )
        assert code == 0
        first = capsys.readouterr().out
        assert "covering-lemma" in first
        assert "0 case(s) reused" in first

        # Same grid again: every case must be served from the store.
        assert (
            main(
                [
                    "experiments",
                    "run",
                    "covering-lemma",
                    "--store",
                    str(tmp_path / "store"),
                ]
            )
            == 0
        )
        second = capsys.readouterr().out
        assert "6 case(s) reused" in second

    def test_repro_workers_env_default(self, monkeypatch):
        from repro.experiments.cli import _default_workers

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert _default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert _default_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        with pytest.raises(ExperimentError):
            _default_workers()
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ExperimentError):
            _default_workers()

    def test_run_uses_env_workers(self, monkeypatch, capsys):
        # Smoke: run-all style command picks up REPRO_WORKERS without flags.
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert main(["run", "fig2-bound-curves"]) == 0
        assert "fig2-bound-curves" in capsys.readouterr().out
