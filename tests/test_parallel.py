"""Tests for the scatter/gather process-pool helpers."""

import os
import pickle

import pytest

from repro.exceptions import ExperimentError
from repro.parallel import ParallelConfig, ParallelTaskError, parallel_map, scatter_gather


def _square(x: int) -> int:
    return x * x


def _raise_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("boom")
    return x


class TestParallelConfig:
    def test_defaults(self):
        config = ParallelConfig()
        assert config.resolved_workers() == 1

    def test_none_uses_cpu_count(self):
        config = ParallelConfig(workers=None)
        assert config.resolved_workers() >= 1

    def test_invalid_workers(self):
        with pytest.raises(ExperimentError):
            ParallelConfig(workers=0).resolved_workers()


class TestParallelMap:
    def test_serial_matches_builtin_map(self):
        items = list(range(20))
        assert parallel_map(_square, items) == [x * x for x in items]

    def test_order_preserved_in_parallel(self):
        items = list(range(40))
        result = parallel_map(_square, items, config=ParallelConfig(workers=2))
        assert result == [x * x for x in items]

    def test_parallel_equals_serial(self):
        items = list(range(25))
        serial = parallel_map(_square, items, config=ParallelConfig(workers=1))
        parallel = parallel_map(_square, items, config=ParallelConfig(workers=2, chunk_size=4))
        assert serial == parallel

    def test_small_inputs_stay_serial(self):
        # Below min_items_for_parallel a lambda (unpicklable) must still work,
        # proving the serial fallback is used.
        result = parallel_map(lambda x: x + 1, [1, 2, 3], config=ParallelConfig(workers=4))
        assert result == [2, 3, 4]

    def test_invalid_chunk_size(self):
        with pytest.raises(ExperimentError):
            parallel_map(_square, list(range(30)), config=ParallelConfig(workers=2, chunk_size=0))

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError):
            parallel_map(_raise_on_three, list(range(5)), config=ParallelConfig(workers=1))

    def test_empty_input(self):
        assert parallel_map(_square, []) == []

    def test_scatter_gather_wrapper(self):
        assert scatter_gather(_square, [1, 2, 3], workers=1) == [1, 4, 9]


class TestWorkerExceptionIdentity:
    def test_pool_failure_names_the_failing_item(self):
        with pytest.raises(ParallelTaskError, match=r"item 3 \(3\).*boom") as info:
            parallel_map(
                _raise_on_three,
                list(range(10)),
                config=ParallelConfig(workers=2, chunk_size=2, min_items_for_parallel=2),
            )
        assert info.value.item_index == 3
        assert info.value.item_repr == "3"
        # The ExperimentError hierarchy is preserved for existing catchers.
        assert isinstance(info.value, ExperimentError)

    def test_scatter_gather_surfaces_identity_too(self):
        with pytest.raises(ParallelTaskError, match="item 3"):
            scatter_gather(
                _raise_on_three, list(range(20)), workers=2, chunk_size=1
            )

    def test_error_survives_pickling(self):
        # The pool transports exceptions by pickle; keyword state must survive.
        error = ParallelTaskError("item 7 ({'x': 1}) failed", item_index=7, item_repr="{'x': 1}")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.item_index == 7
        assert clone.item_repr == "{'x': 1}"
        assert str(clone) == str(error)

    def test_serial_path_keeps_original_exception(self):
        # workers=1 stays a plain loop: callers still see the raw error type.
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_raise_on_three, list(range(5)), config=ParallelConfig(workers=1))
