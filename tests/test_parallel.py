"""Tests for the scatter/gather process-pool helpers."""

import os

import pytest

from repro.exceptions import ExperimentError
from repro.parallel import ParallelConfig, parallel_map, scatter_gather


def _square(x: int) -> int:
    return x * x


def _raise_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("boom")
    return x


class TestParallelConfig:
    def test_defaults(self):
        config = ParallelConfig()
        assert config.resolved_workers() == 1

    def test_none_uses_cpu_count(self):
        config = ParallelConfig(workers=None)
        assert config.resolved_workers() >= 1

    def test_invalid_workers(self):
        with pytest.raises(ExperimentError):
            ParallelConfig(workers=0).resolved_workers()


class TestParallelMap:
    def test_serial_matches_builtin_map(self):
        items = list(range(20))
        assert parallel_map(_square, items) == [x * x for x in items]

    def test_order_preserved_in_parallel(self):
        items = list(range(40))
        result = parallel_map(_square, items, config=ParallelConfig(workers=2))
        assert result == [x * x for x in items]

    def test_parallel_equals_serial(self):
        items = list(range(25))
        serial = parallel_map(_square, items, config=ParallelConfig(workers=1))
        parallel = parallel_map(_square, items, config=ParallelConfig(workers=2, chunk_size=4))
        assert serial == parallel

    def test_small_inputs_stay_serial(self):
        # Below min_items_for_parallel a lambda (unpicklable) must still work,
        # proving the serial fallback is used.
        result = parallel_map(lambda x: x + 1, [1, 2, 3], config=ParallelConfig(workers=4))
        assert result == [2, 3, 4]

    def test_invalid_chunk_size(self):
        with pytest.raises(ExperimentError):
            parallel_map(_square, list(range(30)), config=ParallelConfig(workers=2, chunk_size=0))

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError):
            parallel_map(_raise_on_three, list(range(5)), config=ParallelConfig(workers=1))

    def test_empty_input(self):
        assert parallel_map(_square, []) == []

    def test_scatter_gather_wrapper(self):
        assert scatter_gather(_square, [1, 2, 3], workers=1) == [1, 4, 9]
