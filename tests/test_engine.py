"""Tests for the parallel experiment engine: plans, tasks, store, executor."""

import json
import math

import numpy as np
import pytest

from repro.analysis.sweep import ParameterGrid, run_sweep
from repro.engine import (
    EngineTask,
    ExperimentPlan,
    ResultStore,
    TASKS,
    engine_task,
    grid_cases,
    run_plan,
)
from repro.engine.executor import execute_task
from repro.exceptions import EngineError, ParallelTaskError, UnknownComponentError
from repro.parallel.pool import ParallelConfig
from repro.utils.rng import spawn_child_seeds


# ----------------------------------------------------------------------
# Module-level task functions (picklable across the process pool).
# ----------------------------------------------------------------------
@engine_task("test-engine/draw")
def _draw_task(case, rng):
    return {"case_id": case["case_id"], "draw": float(rng.random())}


@engine_task("test-engine/multi-row")
def _multi_row_task(case, rng):
    return [{"i": i, "value": case["base"] + i} for i in range(case["count"])]


@engine_task("test-engine/special-floats")
def _special_floats_task(case, rng):
    return {"nan": float("nan"), "inf": float("inf"), "ninf": float("-inf"), "pi": math.pi}


@engine_task("test-engine/boom")
def _boom_task(case, rng):
    if case.get("explode"):
        raise ValueError(f"boom on {case['case_id']}")
    return {"case_id": case["case_id"]}


def _callable_task(case, rng):
    return {"case_id": case["case_id"], "draw": float(rng.random())}


class TestSpawnChildSeeds:
    def test_deterministic(self):
        assert spawn_child_seeds(7, 5) == spawn_child_seeds(7, 5)

    def test_distinct_across_seeds_and_indices(self):
        seeds = spawn_child_seeds(0, 64)
        assert len(set(seeds)) == 64
        assert spawn_child_seeds(0, 8) != spawn_child_seeds(1, 8)

    def test_prefix_stable(self):
        # Growing a case grid must keep the seeds of existing cases.
        assert spawn_child_seeds(3, 10)[:4] == spawn_child_seeds(3, 4)

    def test_range_and_types(self):
        for seed in spawn_child_seeds(11, 16):
            assert isinstance(seed, int)
            assert 0 <= seed < 2**63 - 1

    def test_zero_count_and_negative(self):
        assert spawn_child_seeds(0, 0) == []
        with pytest.raises(ValueError):
            spawn_child_seeds(0, -1)

    def test_generator_input_accepted(self):
        seeds = spawn_child_seeds(np.random.default_rng(5), 3)
        assert len(seeds) == 3

    def test_seed_sequence_input_is_not_mutated(self):
        # spawn() advances a SeedSequence's spawn counter; the helper must
        # clone so repeated calls with the same object stay deterministic
        # (otherwise a re-run against the same ResultStore reuses nothing).
        sequence = np.random.SeedSequence(5)
        first = spawn_child_seeds(sequence, 4)
        assert spawn_child_seeds(sequence, 4) == first
        assert sequence.n_children_spawned == 0


class TestExperimentPlan:
    def test_tasks_carry_prefix_stable_child_seeds(self):
        cases = [{"case_id": i} for i in range(6)]
        plan = ExperimentPlan("p", "test-engine/draw", cases, seed=9)
        tasks = plan.tasks()
        assert [t.seed for t in tasks] == spawn_child_seeds(9, 6)
        assert [t.index for t in tasks] == list(range(6))
        # Stable across calls (the root seed is normalized once).
        assert [t.seed for t in plan.tasks()] == [t.seed for t in tasks]

    def test_generator_root_seed_normalized_once(self):
        plan = ExperimentPlan(
            "p", "test-engine/draw", [{"case_id": 0}], seed=np.random.default_rng(0)
        )
        assert isinstance(plan.seed, int)
        assert plan.tasks()[0].seed == plan.tasks()[0].seed

    def test_case_level_task_override(self):
        plan = ExperimentPlan(
            "p",
            "test-engine/draw",
            [{"case_id": 0}, {"task": "test-engine/multi-row", "base": 10, "count": 2}],
            seed=0,
        )
        kinds = [t.task for t in plan.tasks()]
        assert kinds == ["test-engine/draw", "test-engine/multi-row"]
        # The reserved key is stripped from the case handed to the function.
        assert "task" not in plan.tasks()[1].case

    def test_empty_plan_rejected(self):
        with pytest.raises(EngineError):
            ExperimentPlan("p", "test-engine/draw", [])

    def test_from_grid_merges_base(self):
        plan = ExperimentPlan.from_grid(
            "p",
            "test-engine/draw",
            ParameterGrid({"a": [1, 2], "b": [3]}),
            base={"common": True},
            seed=0,
        )
        assert plan.cases == [
            {"common": True, "a": 1, "b": 3},
            {"common": True, "a": 2, "b": 3},
        ]

    def test_grid_cases_point_wins_over_base(self):
        assert grid_cases([{"a": 1}], base={"a": 0, "b": 2}) == [{"a": 1, "b": 2}]


class TestTaskIdentity:
    def test_key_is_stable_and_sensitive(self):
        task = EngineTask(0, "test-engine/draw", {"case_id": 1}, seed=5)
        same = EngineTask(3, "test-engine/draw", {"case_id": 1}, seed=5)
        assert task.key() == same.key()  # position does not affect identity
        assert task.key() != EngineTask(0, "test-engine/draw", {"case_id": 2}, 5).key()
        assert task.key() != EngineTask(0, "test-engine/draw", {"case_id": 1}, 6).key()
        assert task.key() != EngineTask(0, "test-engine/other", {"case_id": 1}, 5).key()

    def test_callable_tasks_are_not_storable(self):
        task = EngineTask(0, _callable_task, {"case_id": 1}, seed=5)
        assert not task.storable()
        with pytest.raises(EngineError):
            task.key()

    def test_non_json_case_is_not_storable(self):
        task = EngineTask(0, "test-engine/draw", {"case_id": object()}, seed=5)
        assert not task.storable()

    def test_unknown_task_name_raises_with_suggestions(self):
        with pytest.raises(UnknownComponentError):
            execute_task(("test-engine/drww", {"case_id": 0}, 0))


class TestRunPlan:
    def test_rows_in_case_order(self):
        plan = ExperimentPlan(
            "p", "test-engine/draw", [{"case_id": i} for i in range(10)], seed=0
        )
        outcome = run_plan(plan)
        assert [row["case_id"] for row in outcome.rows] == list(range(10))
        assert len(outcome) == 10
        assert outcome.computed_count == 10 and outcome.reused_count == 0

    def test_parallel_equals_serial_through_the_pool(self):
        cases = [{"case_id": i} for i in range(12)]
        plan = ExperimentPlan("p", "test-engine/draw", cases, seed=42)
        serial = run_plan(plan, workers=1)
        pooled = run_plan(
            plan, config=ParallelConfig(workers=2, chunk_size=3, min_items_for_parallel=2)
        )
        assert serial.rows == pooled.rows

    def test_multi_row_tasks_flatten_in_order(self):
        plan = ExperimentPlan(
            "p",
            "test-engine/multi-row",
            [{"base": 10, "count": 2}, {"base": 20, "count": 3}],
            seed=0,
        )
        outcome = run_plan(plan)
        assert [row["value"] for row in outcome.rows] == [10, 11, 20, 21, 22]
        with pytest.raises(EngineError):
            outcome.results[0].row  # .row demands exactly one row

    def test_callable_tasks_run_in_process(self):
        plan = ExperimentPlan("p", _callable_task, [{"case_id": 7}], seed=1)
        assert run_plan(plan).rows[0]["case_id"] == 7

    def test_failing_case_surfaces_item_identity(self):
        plan = ExperimentPlan(
            "p",
            "test-engine/boom",
            [{"case_id": 0}, {"case_id": 1, "explode": True}, {"case_id": 2}],
            seed=0,
        )
        with pytest.raises(ValueError, match="boom on 1"):
            run_plan(plan)  # serial: original exception propagates
        with pytest.raises(ParallelTaskError, match="item 1"):
            run_plan(
                plan,
                config=ParallelConfig(workers=2, chunk_size=1, min_items_for_parallel=2),
            )

    def test_bad_task_output_rejected(self):
        plan = ExperimentPlan("p", lambda case, rng: 42, [{"case_id": 0}], seed=0)
        with pytest.raises(EngineError):
            run_plan(plan)


class TestResultStore:
    def test_round_trip_and_reuse(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        plan = ExperimentPlan(
            "p", "test-engine/draw", [{"case_id": i} for i in range(5)], seed=3
        )
        first = run_plan(plan, store=store)
        assert first.reused_count == 0
        assert store.writes == 5 and len(store) == 5

        second = run_plan(plan, store=store)
        assert second.reused_count == 5 and second.computed_count == 0
        assert second.rows == first.rows
        # Column order must survive the disk round-trip too (dict == ignores
        # it, but tables and CSV headers do not).
        assert [list(row) for row in second.rows] == [list(row) for row in first.rows]
        # Reused results keep the original compute-time provenance.
        assert [r.runtime_seconds for r in second.results] == [
            r.runtime_seconds for r in first.results
        ]

    def test_growing_the_grid_reuses_the_prefix(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        small = ExperimentPlan(
            "p", "test-engine/draw", [{"case_id": i} for i in range(3)], seed=3
        )
        run_plan(small, store=store)
        grown = ExperimentPlan(
            "p", "test-engine/draw", [{"case_id": i} for i in range(5)], seed=3
        )
        outcome = run_plan(grown, store=store)
        # Child seeds are prefix-stable, so the first three cases are hits.
        assert outcome.reused_count == 3 and outcome.computed_count == 2

    def test_different_seed_or_case_misses(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_plan(
            ExperimentPlan("p", "test-engine/draw", [{"case_id": 0}], seed=1), store=store
        )
        other_seed = run_plan(
            ExperimentPlan("p", "test-engine/draw", [{"case_id": 0}], seed=2), store=store
        )
        other_case = run_plan(
            ExperimentPlan("p", "test-engine/draw", [{"case_id": 9}], seed=1), store=store
        )
        assert other_seed.reused_count == 0 and other_case.reused_count == 0

    def test_special_floats_round_trip_strict_json(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        plan = ExperimentPlan("p", "test-engine/special-floats", [{"x": 0}], seed=0)
        fresh = run_plan(plan, store=store).rows[0]
        # The entry on disk is strict JSON (no NaN/Infinity tokens).
        (path,) = [store.path_for(key) for key in store.keys()]
        payload = json.loads(path.read_text(), parse_constant=pytest.fail)
        assert payload["format"] == "repro-engine-result"

        reused = run_plan(plan, store=store).rows[0]
        assert math.isnan(reused["nan"])
        assert reused["inf"] == math.inf and reused["ninf"] == -math.inf
        assert reused["pi"] == fresh["pi"]

    def test_corrupt_entry_counts_as_miss_and_recomputes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        plan = ExperimentPlan("p", "test-engine/draw", [{"case_id": 0}], seed=0)
        first = run_plan(plan, store=store)
        (key,) = list(store.keys())
        store.path_for(key).write_text("{not json")
        again = run_plan(plan, store=store)
        assert again.reused_count == 0
        assert again.rows == first.rows  # recomputed, bit-identical

    def test_corrupt_float_tag_counts_as_miss(self, tmp_path):
        # Parseable JSON whose payload decodes badly must also fall back to
        # recomputation, not crash the run (the store is a cache).
        store = ResultStore(tmp_path / "store")
        plan = ExperimentPlan("p", "test-engine/special-floats", [{"x": 0}], seed=0)
        first = run_plan(plan, store=store)
        (key,) = list(store.keys())
        path = store.path_for(key)
        path.write_text(path.read_text().replace('{"__float__": "nan"}', '{"__float__": "bogus"}'))
        again = run_plan(plan, store=store)
        assert again.reused_count == 0
        assert again.rows[0]["pi"] == first.rows[0]["pi"]

    def test_store_rejects_callable_tasks(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        plan = ExperimentPlan("p", _callable_task, [{"case_id": 0}], seed=0)
        with pytest.raises(EngineError):
            run_plan(plan, store=store)

    def test_malformed_key_rejected(self, tmp_path):
        with pytest.raises(EngineError):
            ResultStore(tmp_path).path_for("short")


class TestRunSpecTask:
    def test_grid_of_specs_runs_and_stores(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = {
            "algorithm": "pd-omflp",
            "workload": {"kind": "uniform", "num_requests": 8, "num_commodities": 3},
        }
        cases = [{"spec": {**spec, "seed": s}} for s in (0, 1)]
        plan = ExperimentPlan("specs", "run-spec", cases, seed=0)
        outcome = run_plan(plan, store=store)
        assert [row["algorithm"] for row in outcome.rows] == ["pd-omflp", "pd-omflp"]
        assert all(row["total_cost"] > 0 for row in outcome.rows)
        assert run_plan(plan, store=store).rows == outcome.rows

    def test_seedless_spec_gets_deterministic_seed(self):
        spec = {
            "algorithm": "rand-omflp",
            "workload": {"kind": "uniform", "num_requests": 8, "num_commodities": 3},
        }
        plan = ExperimentPlan("specs", "run-spec", [{"spec": spec}], seed=5)

        def deterministic(rows):
            # runtime_seconds is wall-clock and legitimately varies.
            return [
                {k: v for k, v in row.items() if k != "runtime_seconds"} for row in rows
            ]

        assert deterministic(run_plan(plan).rows) == deterministic(run_plan(plan).rows)


class TestRunSweepShim:
    def test_rows_merge_parameters(self):
        def worker(params):
            return {"value": params["x"] * 2}

        rows = run_sweep(worker, ParameterGrid({"x": [1, 2, 3]}))
        assert rows == [
            {"x": 1, "value": 2},
            {"x": 2, "value": 4},
            {"x": 3, "value": 6},
        ]

    def test_parameter_named_task_is_plain_data(self):
        # "task" is only reserved inside experiment plans, not user grids.
        rows = run_sweep(
            lambda params: {"seen": params["task"]}, ParameterGrid({"task": ["a", "b"]})
        )
        assert rows == [{"task": "a", "seen": "a"}, {"task": "b", "seen": "b"}]

    def test_workers_none_stays_serial(self):
        # Historical contract: workers=None runs in-process, so closure
        # workers never need to pickle regardless of host core count.
        rows = run_sweep(
            lambda params: {"value": params["x"] + 1},
            ParameterGrid({"x": list(range(20))}),
            workers=None,
        )
        assert [row["value"] for row in rows] == [x + 1 for x in range(20)]

    def test_registered_engine_tasks_visible(self):
        # The experiments register their task kinds at import time.
        import repro.experiments.registry  # noqa: F401

        names = TASKS.names()
        assert "run-spec" in names
        assert "omflp/scaling-cell" in names
        assert "covering-lemma/cell" in names
