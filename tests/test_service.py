"""The multi-session service layer: SessionManager, wire protocol, CLI serve.

Pins the service-level acceptance contract: a manager hosts several named
concurrent sessions created from RunSpec dicts and routes interleaved
submits without cross-talk; eviction to disk and transparent reload is
bit-identical to staying resident; and the JSON line protocol works
end-to-end through the real ``repro serve`` CLI subprocess.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.session import AssignmentEvent, OnlineSession
from repro.exceptions import ServiceError, SnapshotError, UnknownComponentError
from repro.service import ServiceProtocol, SessionManager, components_from_spec

REPO_ROOT = Path(__file__).resolve().parent.parent


def _spec(seed: int, *, num_requests: int = 6) -> dict:
    return {
        "algorithm": "rand-omflp",
        "workload": {
            "kind": "uniform",
            "num_requests": num_requests,
            "num_commodities": 4,
            "num_points": 10,
        },
        "seed": seed,
    }


def _explicit_spec(seed: int = 0) -> dict:
    return {
        "algorithm": "pd-omflp",
        "metric": {"kind": "uniform-line", "num_points": 8},
        "cost": {"kind": "power", "num_commodities": 4, "exponent_x": 1.0},
        "requests": [],
        "seed": seed,
    }


def _reference_session(spec: dict) -> OnlineSession:
    """An unmanaged session built exactly as SessionManager builds one."""
    algorithm, instance, generator = components_from_spec(spec)
    return OnlineSession(
        algorithm,
        instance.metric,
        instance.cost_function,
        commodities=instance.commodities,
        rng=generator,
    )


STREAM_A = [(1, [0, 1]), (6, [2]), (2, [0, 3]), (4, [1, 2]), (0, [3])]
STREAM_B = [(7, [3]), (3, [0, 2]), (5, [1]), (1, [0, 1, 2, 3]), (6, [0])]


# ---------------------------------------------------------------------------
# SessionManager
# ---------------------------------------------------------------------------
def test_manager_hosts_concurrent_sessions_without_cross_talk():
    """Interleaved submits to two named sessions equal two isolated runs."""
    manager = SessionManager()
    manager.create("a", _spec(3))
    manager.create("b", _spec(4))
    solo_a = _reference_session(_spec(3))
    solo_b = _reference_session(_spec(4))

    for (point_a, comms_a), (point_b, comms_b) in zip(STREAM_A, STREAM_B):
        event_a = manager.submit("a", point_a, comms_a)
        event_b = manager.submit("b", point_b, comms_b)
        assert event_a == solo_a.submit(point_a, comms_a)
        assert event_b == solo_b.submit(point_b, comms_b)

    record_a = manager.finalize("a")
    record_b = manager.finalize("b")
    assert record_a.total_cost == solo_a.finalize().total_cost
    assert record_b.total_cost == solo_b.finalize().total_cost
    assert manager.status("a")["finalized"] is True


def test_manager_eviction_roundtrip_is_bit_identical(tmp_path):
    """A session bounced through disk mid-stream matches an isolated run."""
    manager = SessionManager(snapshot_dir=tmp_path)
    manager.create("durable", _spec(9))
    solo = _reference_session(_spec(9))

    events = [manager.submit("durable", p, c) for p, c in STREAM_A[:2]]
    path = manager.evict("durable")
    assert path.exists()
    assert manager.status("durable")["evicted"] is True
    # Transparent reload on the next submit.
    events += [manager.submit("durable", p, c) for p, c in STREAM_A[2:]]
    solo_events = [solo.submit(p, c) for p, c in STREAM_A]
    assert events == solo_events
    assert manager.finalize("durable").total_cost == solo.finalize().total_cost
    assert not path.exists()  # finalize cleans the snapshot file


def test_manager_lru_eviction_under_capacity_pressure(tmp_path):
    manager = SessionManager(snapshot_dir=tmp_path, max_live_sessions=1)
    manager.create("old", _explicit_spec(0))
    manager.create("new", _explicit_spec(1))
    status_old = manager.status("old")
    assert status_old["live"] is False and status_old.get("evicted") is True
    assert manager.status("new")["live"] is True
    # Touching the evicted one swaps residency.
    manager.submit("old", 1, [0])
    assert manager.status("old")["live"] is True
    assert manager.status("new")["live"] is False
    assert sorted(manager.names()) == ["new", "old"]


def test_manager_rejects_bad_inputs(tmp_path):
    manager = SessionManager()
    with pytest.raises(ServiceError, match="invalid session name"):
        manager.create("../escape", _explicit_spec())
    with pytest.raises(ServiceError, match="seed"):
        manager.create("s", {k: v for k, v in _explicit_spec().items() if k != "seed"})
    with pytest.raises(SnapshotError, match="online"):
        manager.create("s", dict(_explicit_spec(), algorithm="greedy"))
    manager.create("s", _explicit_spec())
    with pytest.raises(ServiceError, match="already exists"):
        manager.create("s", _explicit_spec())
    with pytest.raises(ServiceError, match="unknown session"):
        manager.submit("nope", 0, [0])
    with pytest.raises(ServiceError, match="snapshot_dir"):
        manager.evict("s")
    with pytest.raises(ServiceError, match="unknown session"):
        manager.close("nope")
    manager.close("s")
    with pytest.raises(ServiceError, match="needs a snapshot_dir"):
        SessionManager(max_live_sessions=2)
    with pytest.raises(ServiceError, match="positive"):
        SessionManager(snapshot_dir=tmp_path, max_live_sessions=0)


def test_manager_rejects_traversal_names_on_every_operation(tmp_path):
    """Name validation is a chokepoint, not a create()-only courtesy."""
    manager = SessionManager(snapshot_dir=tmp_path)
    manager.create("s", _explicit_spec())
    for operation in (
        lambda: manager.submit("../escape", 0, [0]),
        lambda: manager.status("../escape"),
        lambda: manager.close("../escape"),
        lambda: manager.evict("../escape"),
        lambda: manager.snapshot("../escape"),
    ):
        with pytest.raises(ServiceError, match="invalid session name"):
            operation()


def test_restore_rejects_mismatched_algorithm(tmp_path):
    """A snapshot remembers its algorithm and refuses to restore onto another."""
    from repro.algorithms.online.always_large import AlwaysLargeGreedy

    algorithm, instance, generator = components_from_spec(_explicit_spec())
    session = OnlineSession(
        algorithm,
        instance.metric,
        instance.cost_function,
        commodities=instance.commodities,
        rng=generator,
    )
    session.submit(1, [0])
    snapshot = session.snapshot()
    with pytest.raises(SnapshotError, match="pd-omflp"):
        OnlineSession.restore(
            snapshot,
            algorithm=AlwaysLargeGreedy(),
            metric=instance.metric,
            cost=instance.cost_function,
        )


def test_manager_finalized_sessions_reject_submits():
    manager = SessionManager()
    manager.create("s", _explicit_spec())
    manager.submit("s", 1, [0])
    manager.finalize("s")
    with pytest.raises(ServiceError, match="finalized"):
        manager.submit("s", 2, [1])
    manager.close("s")
    assert manager.names() == []


# ---------------------------------------------------------------------------
# Wire protocol (in-process)
# ---------------------------------------------------------------------------
def test_protocol_lifecycle_and_error_responses(tmp_path):
    protocol = ServiceProtocol(SessionManager(snapshot_dir=tmp_path))

    assert protocol.handle({"op": "ping"})["pong"] is True
    created = protocol.handle({"op": "create", "name": "s", "spec": _explicit_spec()})
    assert created["ok"] and created["session"]["name"] == "s"

    submitted = protocol.handle(
        {"op": "submit", "name": "s", "point": 1, "commodities": [0, 2]}
    )
    assert submitted["ok"]
    event = AssignmentEvent.from_dict(submitted["event"])
    assert event.request_index == 0 and event.point == 1

    snapshot = protocol.handle({"op": "snapshot", "name": "s"})
    assert snapshot["ok"] and snapshot["snapshot"]["num_requests"] == 1

    evicted = protocol.handle({"op": "evict", "name": "s"})
    assert evicted["ok"] and Path(evicted["path"]).exists()
    assert protocol.handle({"op": "list"})["sessions"] == ["s"]

    finalized = protocol.handle({"op": "finalize", "name": "s"})
    assert finalized["ok"] and finalized["record"]["num_requests"] == 1

    closed = protocol.handle({"op": "close", "name": "s"})
    assert closed["ok"]

    # Error shapes: unknown op, missing field, unknown session, bad JSON.
    assert protocol.handle({"op": "warp"})["error_type"] == "ReproError"
    assert "needs a 'name'" in protocol.handle({"op": "submit"})["error"]
    assert (
        protocol.handle({"op": "status", "name": "gone"})["error_type"] == "ServiceError"
    )
    assert json.loads(protocol.handle_line("{not json"))["error_type"] == "JSONDecodeError"
    assert json.loads(protocol.handle_line('{"op": "ping"}'))["ok"] is True

    down = protocol.handle({"op": "shutdown"})
    assert down["shutdown"] is True


def test_protocol_registry_typo_gets_suggestion():
    protocol = ServiceProtocol(SessionManager())
    response = protocol.handle(
        {"op": "create", "name": "s", "spec": dict(_explicit_spec(), algorithm="pd-omfpl")}
    )
    assert response["ok"] is False
    assert "did you mean" in response["error"] and "pd-omflp" in response["error"]


def test_protocol_status_and_metrics_carry_telemetry(tmp_path):
    """Telemetry-aware observability over the wire, through real JSON text.

    A session created with ``"telemetry": true`` reports its probe summaries
    in ``status``; the manager-wide ``metrics`` op reports live counters and
    the per-session roll-up.  Everything round-trips ``handle_line`` (i.e. is
    strict JSON), and sessions without telemetry stay telemetry-free.
    """
    protocol = ServiceProtocol(SessionManager(snapshot_dir=tmp_path))

    created = protocol.handle(
        {"op": "create", "name": "probed", "spec": _spec(5), "telemetry": True}
    )
    assert created["ok"]
    protocol.handle({"op": "create", "name": "plain", "spec": _spec(6)})
    for point, commodities in STREAM_A[:3]:
        assert protocol.handle(
            {"op": "submit", "name": "probed", "point": point, "commodities": commodities}
        )["ok"]

    status = json.loads(
        protocol.handle_line(json.dumps({"op": "status", "name": "probed"}))
    )["session"]
    assert status["num_requests"] == 3
    assert status["runtime_seconds"] > 0.0
    telemetry = status["telemetry"]
    assert set(telemetry) == {
        "cost-decomposition",
        "opening-rate",
        "latency",
        "competitive-ratio",
    }
    assert telemetry["cost-decomposition"]["num_requests"] == 3
    assert telemetry["cost-decomposition"]["total_cost"] == pytest.approx(
        status["total_cost"]
    )
    assert telemetry["latency"]["reservoir_size"] == 3
    assert "telemetry" not in protocol.handle({"op": "status", "name": "plain"})["session"]

    metrics = json.loads(protocol.handle_line(json.dumps({"op": "metrics"})))["metrics"]
    assert metrics["counters"]["created"] == 2
    assert metrics["counters"]["requests"] == 3
    assert metrics["sessions_live"] == 2
    assert metrics["uptime_seconds"] >= 0.0
    assert "requests_per_second" in metrics
    assert metrics["sessions"]["probed"]["num_requests"] == 3
    assert "telemetry" in metrics["sessions"]["probed"]
    assert "telemetry" not in metrics["sessions"]["plain"]

    # Eviction bounces the sink through disk; the metrics continue exactly.
    before = dict(telemetry["cost-decomposition"])
    protocol.handle({"op": "evict", "name": "probed"})
    point, commodities = STREAM_A[3]
    protocol.handle(
        {"op": "submit", "name": "probed", "point": point, "commodities": commodities}
    )
    after = protocol.handle({"op": "status", "name": "probed"})["session"]["telemetry"]
    assert after["cost-decomposition"]["num_requests"] == before["num_requests"] + 1
    reloaded = protocol.handle({"op": "metrics"})["metrics"]
    assert reloaded["counters"]["evictions"] == 1
    assert reloaded["counters"]["reloads"] == 1


def test_protocol_metrics_carry_per_op_latency_aggregates(tmp_path):
    """The ``metrics`` op's tracer-backed ``ops`` block, through real JSON.

    Every dispatched wire op folds into a ``service.<op>`` phase on the
    protocol's (default-on) tracer; ``metrics`` reports count/total/p50/p99
    per op, covering *all* handled ops — including failed ones — not just
    the span buffer's tail.  ``tracer=False`` removes the block entirely.
    """
    protocol = ServiceProtocol(SessionManager(snapshot_dir=tmp_path))
    assert protocol.tracer is not None

    protocol.handle({"op": "create", "name": "s", "spec": _spec(5)})
    for point, commodities in STREAM_A[:4]:
        protocol.handle(
            {"op": "submit", "name": "s", "point": point, "commodities": commodities}
        )
    protocol.handle({"op": "status", "name": "s"})
    assert protocol.handle({"op": "status", "name": "gone"})["ok"] is False

    response = json.loads(protocol.handle_line(json.dumps({"op": "metrics"})))
    assert response["ok"]
    ops = response["metrics"]["ops"]
    assert ops["service.create"]["count"] == 1
    assert ops["service.submit"]["count"] == 4
    # Failed dispatches still count: both status calls folded.
    assert ops["service.status"]["count"] == 2
    for stats in ops.values():
        assert stats["count"] >= 1
        assert stats["total_seconds"] >= 0.0
        assert set(stats) >= {"count", "total_seconds", "mean_seconds", "p50", "p99"}
    # The in-flight metrics op folds when its span closes: a second metrics
    # call sees the first one.
    again = protocol.handle({"op": "metrics"})["metrics"]["ops"]
    assert again["service.metrics"]["count"] == 1

    # Correlation ids: wire-op spans carry the session name.
    submit_spans = [
        span for span in protocol.tracer.spans() if span.name == "service.submit"
    ]
    assert submit_spans
    assert all(span.attributes["session"] == "s" for span in submit_spans)
    ordinals = [
        span.ordinal
        for span in protocol.tracer.spans()
        if span.name.startswith("service.")
    ]
    assert ordinals == sorted(ordinals)  # op sequence numbers are monotone

    untraced = ServiceProtocol(SessionManager(), tracer=False)
    assert untraced.tracer is None
    assert "ops" not in untraced.handle({"op": "metrics"})["metrics"]


def test_protocol_telemetry_accepts_probe_lists_and_rejects_typos(tmp_path):
    protocol = ServiceProtocol(SessionManager(snapshot_dir=tmp_path))
    created = protocol.handle(
        {
            "op": "create",
            "name": "s",
            "spec": _spec(1),
            "telemetry": ["opening-rate", {"kind": "latency", "capacity": 4}],
        }
    )
    assert created["ok"]
    protocol.handle({"op": "submit", "name": "s", "point": 1, "commodities": [0]})
    telemetry = protocol.handle({"op": "status", "name": "s"})["session"]["telemetry"]
    assert sorted(telemetry) == ["latency", "opening-rate"]

    bad = protocol.handle(
        {"op": "create", "name": "t", "spec": _spec(2), "telemetry": ["opening-rte"]}
    )
    assert bad["ok"] is False and "did you mean" in bad["error"]


def test_cli_serve_in_process(tmp_path, monkeypatch, capsys):
    """The argparse `serve` branch wired to real streams (in-process)."""
    import io

    from repro.experiments.cli import main

    lines = [
        json.dumps({"op": "create", "name": "s", "spec": _explicit_spec()}),
        json.dumps({"op": "submit", "name": "s", "point": 1, "commodities": [0]}),
        "",  # blank lines are skipped
        json.dumps({"op": "shutdown"}),
    ]
    monkeypatch.setattr(sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
    assert main(["serve", "--snapshot-dir", str(tmp_path), "--max-live-sessions", "2"]) == 0
    responses = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]
    assert [r["ok"] for r in responses] == [True, True, True]
    assert responses[-1]["evicted"] == ["s"]
    assert (tmp_path / "s.session.json").exists()


# ---------------------------------------------------------------------------
# End to end: the real `repro serve` CLI over a pipe
# ---------------------------------------------------------------------------
def test_repro_serve_end_to_end(tmp_path):
    """Drive the JSON line protocol through the actual CLI subprocess."""
    state_dir = tmp_path / "state"
    messages = [
        {"op": "ping"},
        {"op": "create", "name": "east", "spec": _explicit_spec(0)},
        {"op": "create", "name": "west", "spec": _explicit_spec(1)},
        {"op": "submit", "name": "east", "point": 1, "commodities": [0, 2]},
        {"op": "submit", "name": "west", "point": 6, "commodities": [1]},
        {"op": "submit", "name": "east", "point": 2, "commodities": [3]},
        {"op": "list"},
        {"op": "finalize", "name": "west"},
        {"op": "shutdown"},
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "serve",
            "--snapshot-dir",
            str(state_dir),
        ],
        input="\n".join(json.dumps(m) for m in messages) + "\n",
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
        check=True,
    )
    responses = [json.loads(line) for line in completed.stdout.strip().splitlines()]
    assert len(responses) == len(messages)
    assert all(r["ok"] for r in responses)

    # Two concurrent named sessions routed independently over the wire.
    east_events = [r["event"] for r in responses if r.get("name") == "east" and "event" in r]
    assert [e["request_index"] for e in east_events] == [0, 1]
    west_record = next(r["record"] for r in responses if "record" in r)
    assert west_record["num_requests"] == 1
    assert set(responses[6]["sessions"]) == {"east", "west"}

    # Shutdown persisted the still-live session for the next process.
    assert responses[-1]["shutdown"] is True and responses[-1]["evicted"] == ["east"]
    assert (state_dir / "east.session.json").exists()

    # A fresh manager (new process in spirit) resumes the evicted session.
    manager = SessionManager(snapshot_dir=state_dir)
    assert manager.status("east")["num_requests"] == 2
    event = manager.submit("east", 3, [1])
    assert event.request_index == 2
