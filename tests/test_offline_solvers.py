"""Tests for the offline reference solvers (brute force, greedy, local search, planted, LP)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.base import run_online
from repro.algorithms.offline.brute_force import BruteForceSolver
from repro.algorithms.offline.common import (
    candidate_configurations,
    evaluate_facility_specs,
    optimal_assignment,
    solution_from_specs,
)
from repro.algorithms.offline.greedy import GreedyOfflineSolver
from repro.algorithms.offline.local_search import LocalSearchSolver
from repro.algorithms.offline.lp_bound import lp_relaxation_lower_bound
from repro.algorithms.offline.planted import PlantedSolver
from repro.algorithms.online.pd_omflp import PDOMFLPAlgorithm
from repro.core.facility import Facility
from repro.core.instance import Instance
from repro.core.requests import Request, RequestSequence
from repro.costs.count_based import ConstantCost, LinearCost, PowerCost
from repro.exceptions import AlgorithmError, InfeasibleSolutionError
from repro.metric.factories import uniform_line_metric
from repro.workloads.clustered import clustered_workload
from repro.workloads.uniform import uniform_workload
from tests.conftest import random_small_instance


class TestOptimalAssignment:
    def _make_facilities(self, metric, cost, specs):
        return [
            Facility(id=i, point=p, configuration=frozenset(c), opening_cost=cost.cost(p, c))
            for i, (p, c) in enumerate(specs)
        ]

    def test_prefers_single_covering_facility_when_cheaper(self, line_metric, sqrt_cost):
        facilities = self._make_facilities(
            line_metric, sqrt_cost, [(0, {0}), (4, {1}), (1, {0, 1})]
        )
        request = Request(0, 1, frozenset({0, 1}))
        assignment, cost = optimal_assignment(line_metric, request, facilities)
        assert cost == pytest.approx(0.0)
        assert assignment.facility_ids() == frozenset({2})

    def test_combines_facilities_when_necessary(self, line_metric, sqrt_cost):
        facilities = self._make_facilities(line_metric, sqrt_cost, [(0, {0}), (4, {1})])
        request = Request(0, 2, frozenset({0, 1}))
        assignment, cost = optimal_assignment(line_metric, request, facilities)
        assert cost == pytest.approx(1.0)
        assert assignment.facility_ids() == frozenset({0, 1})

    def test_counts_each_distinct_facility_once(self, line_metric, sqrt_cost):
        facilities = self._make_facilities(line_metric, sqrt_cost, [(4, {0, 1, 2})])
        request = Request(0, 0, frozenset({0, 1, 2}))
        _, cost = optimal_assignment(line_metric, request, facilities)
        assert cost == pytest.approx(1.0)  # distance paid once, not three times

    def test_infeasible_when_commodity_missing(self, line_metric, sqrt_cost):
        facilities = self._make_facilities(line_metric, sqrt_cost, [(0, {0})])
        request = Request(0, 0, frozenset({0, 1}))
        with pytest.raises(InfeasibleSolutionError):
            optimal_assignment(line_metric, request, facilities)

    def test_solution_from_specs_totals(self, tiny_instance):
        specs = [(1, {0, 1, 2})]
        solution, total = solution_from_specs(tiny_instance, specs)
        solution.validate(tiny_instance.requests)
        assert total == pytest.approx(evaluate_facility_specs(tiny_instance, specs))
        expected_connection = sum(
            tiny_instance.metric.distance(r.point, 1) for r in tiny_instance.requests
        )
        assert total == pytest.approx(
            tiny_instance.cost_function.cost(1, {0, 1, 2}) + expected_connection
        )

    def test_candidate_configurations_include_singletons_and_full_set(self, tiny_instance):
        family = candidate_configurations(tiny_instance)
        assert frozenset({0}) in family
        assert tiny_instance.cost_function.full_set in family
        assert frozenset({0, 1}) in family  # a requested demand set


class TestBruteForce:
    def test_finds_known_optimum(self):
        """Two co-located requests, constant cost: OPT = one facility at their point."""
        metric = uniform_line_metric(3)
        cost = ConstantCost(2)
        requests = RequestSequence.from_tuples([(1, {0}), (1, {1})])
        instance = Instance(metric, cost, requests)
        result = BruteForceSolver().solve(instance)
        assert result.total_cost == pytest.approx(1.0)
        assert result.is_optimal

    def test_linear_cost_matches_hand_computation(self):
        metric = uniform_line_metric(2, length=1.0)
        cost = LinearCost(2, scale=0.1)
        requests = RequestSequence.from_tuples([(0, {0}), (1, {1})])
        instance = Instance(metric, cost, requests)
        result = BruteForceSolver().solve(instance)
        # Open {0} at point 0 and {1} at point 1: cost 0.2, no connections.
        assert result.total_cost == pytest.approx(0.2)

    def test_never_above_any_online_algorithm(self, tiny_instance):
        opt = BruteForceSolver().solve(tiny_instance).total_cost
        online = run_online(PDOMFLPAlgorithm(), tiny_instance).total_cost
        assert opt <= online + 1e-9

    def test_size_guard(self, small_instance):
        with pytest.raises(AlgorithmError):
            BruteForceSolver(max_combinations=10).solve(small_instance)

    def test_explicit_configuration_family(self, tiny_instance):
        restricted = BruteForceSolver(configurations=[{0}, {1}, {2}]).solve(tiny_instance)
        unrestricted = BruteForceSolver().solve(tiny_instance)
        assert restricted.total_cost >= unrestricted.total_cost - 1e-9


class TestHeuristicSolvers:
    def test_greedy_feasible_and_above_opt(self, tiny_instance):
        greedy = GreedyOfflineSolver().solve(tiny_instance)
        greedy.solution.validate(tiny_instance.requests)
        opt = BruteForceSolver().solve(tiny_instance).total_cost
        assert greedy.total_cost >= opt - 1e-9
        assert greedy.total_cost <= 4 * opt  # loose sanity bound

    def test_local_search_never_worse_than_greedy(self, tiny_instance):
        greedy = GreedyOfflineSolver().solve(tiny_instance)
        local = LocalSearchSolver(max_iterations=20).solve(tiny_instance)
        local.solution.validate(tiny_instance.requests)
        assert local.total_cost <= greedy.total_cost + 1e-9

    def test_local_search_accepts_initial_specs(self, tiny_instance):
        initial = [(1, {0, 1, 2})]
        result = LocalSearchSolver(max_iterations=5, initial_specs=initial).solve(tiny_instance)
        result.solution.validate(tiny_instance.requests)
        assert result.total_cost <= evaluate_facility_specs(tiny_instance, initial) + 1e-9

    def test_local_search_rejects_infeasible_start(self, tiny_instance):
        with pytest.raises(AlgorithmError):
            LocalSearchSolver(initial_specs=[(0, {0})], max_iterations=1).solve(tiny_instance)

    def test_greedy_on_clustered_workload_close_to_planted(self):
        workload = clustered_workload(
            num_requests=20, num_commodities=6, num_clusters=2, rng=0
        )
        greedy = GreedyOfflineSolver().solve(workload.instance)
        planted = PlantedSolver(workload.planted_specs).solve(workload.instance)
        assert greedy.total_cost <= 2.0 * planted.total_cost + 1e-9

    def test_empty_instance_rejected(self, line_metric, sqrt_cost):
        instance = Instance(line_metric, sqrt_cost, RequestSequence([]))
        with pytest.raises(AlgorithmError):
            GreedyOfflineSolver().solve(instance)


class TestPlantedSolver:
    def test_requires_specs(self):
        with pytest.raises(AlgorithmError):
            PlantedSolver([])

    def test_evaluates_given_facilities(self, tiny_instance):
        solver = PlantedSolver([(1, {0, 1, 2})])
        result = solver.solve(tiny_instance)
        result.solution.validate(tiny_instance.requests)
        assert result.total_cost == pytest.approx(
            evaluate_facility_specs(tiny_instance, [(1, {0, 1, 2})])
        )
        assert solver.facility_specs == [(1, frozenset({0, 1, 2}))]


class TestLPBound:
    def test_lp_below_opt_and_above_zero(self, tiny_instance):
        lp = lp_relaxation_lower_bound(tiny_instance)
        opt = BruteForceSolver().solve(tiny_instance).total_cost
        assert 0 < lp <= opt + 1e-6

    def test_lp_size_guards(self, tiny_instance):
        with pytest.raises(AlgorithmError):
            lp_relaxation_lower_bound(tiny_instance, max_variables=10)
        big = uniform_workload(
            num_requests=3, num_commodities=15, num_points=3, rng=0
        ).instance
        with pytest.raises(AlgorithmError):
            lp_relaxation_lower_bound(big)

    def test_lp_exact_on_integral_instance(self):
        """Single request: the LP optimum equals the integral optimum."""
        metric = uniform_line_metric(2)
        cost = ConstantCost(2)
        instance = Instance(metric, cost, RequestSequence.from_tuples([(0, {0, 1})]))
        lp = lp_relaxation_lower_bound(instance)
        opt = BruteForceSolver().solve(instance).total_cost
        assert lp == pytest.approx(opt, abs=1e-6)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2000))
def test_opt_is_below_all_algorithms_property(seed):
    """Property: brute-force OPT lower-bounds every heuristic and online run."""
    instance = random_small_instance(seed, num_requests=6, num_commodities=3, num_points=4)
    opt = BruteForceSolver().solve(instance).total_cost
    greedy = GreedyOfflineSolver().solve(instance).total_cost
    online = run_online(PDOMFLPAlgorithm(), instance).total_cost
    assert opt <= greedy + 1e-9
    assert opt <= online + 1e-9
