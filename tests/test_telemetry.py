"""The telemetry subsystem: probes, sink, zero-cost contract, durability, report.

Pins the three contracts of :mod:`repro.telemetry`:

* **registry/spec discipline** — probes are string-keyed registry citizens
  with declarative specs and strict-JSON state dicts that round-trip exactly;
* **zero cost** — enabling telemetry changes *nothing* about a run: every
  event, every cost and the final RNG state are exactly ``==`` with and
  without probes attached, over the full algorithm × scenario × seed grid;
* **durability** — a snapshot carries the sink bit-identically, a resumed
  session continues its metrics where they left off, and the rolling
  competitive-ratio estimate at finalize exactly matches the post-hoc batch
  computation.

Plus the ``repro report`` renderer: golden-file markdown, HTML smoke checks,
and the baseline regression gate in both its passing and failing modes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.competitive import IncrementalOfflineBound, streaming_lower_bound
from repro.api.session import OnlineSession
from repro.core.instance import Instance
from repro.core.requests import RequestSequence
from repro.engine.store import ResultStore
from repro.exceptions import ReproError, TelemetryError, UnknownComponentError
from repro.scenarios import EXAMPLE_SPECS
from repro.scenarios.run import ScenarioSession
from repro.telemetry import (
    DEFAULT_PROBES,
    METRICS_PROBES,
    CompetitiveRatioProbe,
    TelemetrySink,
    render_report,
)
from repro.utils.rng import ensure_rng, rng_state

# The equivalence harness already curates the algorithm/instance grid; the
# zero-cost contract is pinned over the same one (tests share a directory, so
# the sibling module imports directly under pytest's rootdir insertion).
from test_accel_equivalence import ALGORITHMS, SCENARIOS

SEEDS = [0, 1, 2]

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

ZERO_COST_CASES = [
    pytest.param(algorithm, scenario, seed, id=f"{algorithm}-{scenario}-s{seed}")
    for algorithm, (_, single_only) in ALGORITHMS.items()
    for scenario, num_commodities, _ in SCENARIOS
    if not (single_only and num_commodities != 1)
    for seed in SEEDS
]


def _scenario_instance(name: str, seed: int) -> Instance:
    builder = next(b for scenario, _, b in SCENARIOS if scenario == name)
    return builder(seed)


def _session(instance: Instance, algorithm: str, seed: int, telemetry) -> OnlineSession:
    factory, _ = ALGORITHMS[algorithm]
    return OnlineSession(
        factory(True),
        instance.metric,
        instance.cost_function,
        commodities=instance.commodities,
        rng=ensure_rng(seed),
        telemetry=telemetry,
    )


# ---------------------------------------------------------------------------
# Probe registry contracts
# ---------------------------------------------------------------------------
def test_probe_registry_catalog_and_specs():
    """Every stock probe is a registry citizen with a rebuildable spec."""
    assert sorted(METRICS_PROBES.names()) == [
        "competitive-ratio",
        "cost-decomposition",
        "latency",
        "opening-rate",
    ]
    assert set(DEFAULT_PROBES) == set(METRICS_PROBES.names())
    for kind in METRICS_PROBES.names():
        probe = METRICS_PROBES.build(kind)
        assert probe.kind == kind
        spec = probe.spec()
        assert spec["kind"] == kind
        # The spec is strict JSON and rebuilds an identically-configured probe.
        rebuilt = TelemetrySink([json.loads(json.dumps(spec))]).probes[0]
        assert rebuilt.spec() == spec


def test_probe_registry_rejects_typos_with_suggestions():
    with pytest.raises(UnknownComponentError, match="did you mean 'latency'"):
        METRICS_PROBES.build("latncy")
    with pytest.raises(ReproError, match="did you mean 'capacity'"):
        METRICS_PROBES.build("latency", capacty=16)


def test_fresh_probe_state_round_trips_through_json():
    """state_dict/load_state_dict are exact inverses, via real JSON text."""
    for kind in METRICS_PROBES.names():
        probe = METRICS_PROBES.build(kind)
        state = json.loads(json.dumps(probe.state_dict()))
        clone = METRICS_PROBES.build(kind)
        clone.load_state_dict(state)
        assert clone.state_dict() == probe.state_dict()
        assert clone.summary() == probe.summary()


def test_probe_state_dict_validation():
    probe = METRICS_PROBES.build("opening-rate")
    good = probe.state_dict()
    with pytest.raises(TelemetryError, match="format"):
        probe.load_state_dict(dict(good, format="something-else"))
    with pytest.raises(TelemetryError, match="version"):
        probe.load_state_dict(dict(good, version=99))
    with pytest.raises(TelemetryError, match="kind"):
        METRICS_PROBES.build("latency").load_state_dict(good)


def test_sink_coercion_and_misuse_guards():
    assert TelemetrySink.coerce(None) is None
    assert TelemetrySink.coerce(False) is None
    stock = TelemetrySink.coerce(True)
    assert stock.kinds == list(DEFAULT_PROBES)
    assert TelemetrySink.coerce(stock) is stock
    assert TelemetrySink.coerce(["latency"]).kinds == ["latency"]

    with pytest.raises(TelemetryError, match="duplicate probe kind"):
        TelemetrySink(["latency", {"kind": "latency", "capacity": 8}])
    with pytest.raises(TelemetryError, match="'kind'"):
        TelemetrySink([{"capacity": 8}])
    with pytest.raises(TelemetryError, match="cannot build a probe"):
        TelemetrySink([42])

    instance = _scenario_instance("uniform-euclidean", 0)
    sink = TelemetrySink(["opening-rate"])
    sink.bind(instance.metric, instance.cost_function)
    with pytest.raises(TelemetryError, match="fresh sink per session"):
        sink.bind(instance.metric, instance.cost_function)

    # The competitive-ratio probe needs its environment before observing.
    unbound = METRICS_PROBES.build("competitive-ratio")
    event_source = _session(instance, "pd-omflp", 0, None)
    event = event_source.submit(0, [0])
    with pytest.raises(TelemetryError, match="before bind"):
        unbound.observe(event, 0.0)


# ---------------------------------------------------------------------------
# The zero-cost contract: telemetry on == telemetry off, exactly
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("algorithm,scenario,seed", ZERO_COST_CASES)
def test_telemetry_is_exactly_zero_cost(algorithm, scenario, seed):
    """Full stock catalog attached vs no telemetry: identical runs.

    Equality is ``==`` throughout — same events (decisions *and* costs), same
    final RNG state (no probe ever draws from the session's generator), same
    finalized record totals.
    """
    instance = _scenario_instance(scenario, seed)
    plain = _session(instance, algorithm, seed, None)
    probed = _session(instance, algorithm, seed, True)

    for request in instance.requests:
        event_plain = plain.submit(request.point, request.commodities)
        event_probed = probed.submit(request.point, request.commodities)
        assert event_probed == event_plain

    assert rng_state(probed._rng) == rng_state(plain._rng)
    record_plain, record_probed = plain.finalize(), probed.finalize()
    assert record_probed.total_cost == record_plain.total_cost
    assert record_probed.opening_cost == record_plain.opening_cost
    assert record_probed.connection_cost == record_plain.connection_cost

    # The probes did observe the stream they left untouched.
    summary = probed.telemetry_summary()
    assert set(summary) == set(DEFAULT_PROBES)
    for kind in DEFAULT_PROBES:
        assert summary[kind]["num_requests"] == len(instance.requests)
    assert summary["cost-decomposition"]["total_cost"] == pytest.approx(
        record_plain.total_cost
    )


# ---------------------------------------------------------------------------
# Durability: snapshots carry telemetry bit-identically
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("kind", sorted(EXAMPLE_SPECS))
def test_snapshot_resume_carries_every_probe(kind, seed):
    """All 16 scenario kinds: a resumed session continues its metrics exactly.

    The restored sink must equal the snapshotted one bit-for-bit (including
    the latency reservoir and its private RNG state); after streaming the
    remainder, every non-wall-clock probe matches an uninterrupted run
    exactly, and the latency probe has counted every request.
    """
    spec = {"algorithm": "pd-omflp", "scenario": EXAMPLE_SPECS[kind], "seed": seed}
    reference = ScenarioSession(spec, telemetry=True)
    reference_events = reference.advance(24)

    session = ScenarioSession(spec, telemetry=True)
    head = session.advance(12)
    snapshot_json = session.snapshot().to_json()
    restored = ScenarioSession.restore(snapshot_json)
    assert restored.telemetry.state_dict() == session.telemetry.state_dict()

    tail = restored.advance(12)
    assert head + tail == reference_events

    reference_state = reference.telemetry.state_dict()
    restored_state = restored.telemetry.state_dict()
    for ref_entry, res_entry in zip(
        reference_state["probes"], restored_state["probes"]
    ):
        assert res_entry["spec"] == ref_entry["spec"]
        if ref_entry["spec"]["kind"] == "latency":
            # Wall-clock values differ across the interruption by nature;
            # the counting side must not.
            assert (
                res_entry["state"]["state"]["count"]
                == ref_entry["state"]["state"]["count"]
            )
        else:
            assert res_entry == ref_entry


def test_sink_from_state_dict_is_unbound_and_exact():
    instance = _scenario_instance("clustered-euclidean", 3)
    session = _session(instance, "rand-omflp", 3, True)
    for request in instance.requests:
        session.submit(request.point, request.commodities)
    state = json.loads(json.dumps(session.telemetry.state_dict()))
    rebuilt = TelemetrySink.from_state_dict(state)
    assert rebuilt.bound is False
    assert rebuilt.state_dict() == session.telemetry.state_dict()
    assert rebuilt.summary() == session.telemetry.summary()


# ---------------------------------------------------------------------------
# The rolling competitive-ratio estimate vs the post-hoc batch computation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "algorithm,scenario",
    [
        ("pd-omflp", "uniform-euclidean"),
        ("rand-omflp", "clustered-euclidean"),
        ("per-commodity-fotakis", "grid-l1"),
        ("meyerson-ofl", "euclidean-single"),
    ],
)
@pytest.mark.parametrize("seed", SEEDS)
def test_rolling_ratio_matches_batch_at_finalize(algorithm, scenario, seed):
    instance = _scenario_instance(scenario, seed)
    probe = CompetitiveRatioProbe()
    session = _session(instance, algorithm, seed, [probe])
    for request in instance.requests:
        session.submit(request.point, request.commodities)
    record = session.finalize()

    batch = streaming_lower_bound(instance)
    assert probe.lower_bound == batch.value

    summary = probe.summary()
    assert summary["num_requests"] == len(instance.requests)
    assert summary["online_cost"] == record.total_cost
    assert summary["offline_lower_bound"] == batch.value
    if batch.value > 0:
        assert summary["ratio_upper_bound"] == record.total_cost / batch.value
        # A valid lower bound never exceeds what the online algorithm paid.
        assert summary["ratio_upper_bound"] >= 1.0


def test_incremental_bound_is_prefix_exact_and_durable():
    """update() after k requests == the batch shim on the k-prefix, for all k;
    a mid-stream state round-trip continues identically."""
    instance = _scenario_instance("uniform-euclidean", 7)
    incremental = IncrementalOfflineBound(instance.metric, instance.cost_function)
    requests = list(instance.requests)
    resumed = None
    for served, request in enumerate(requests, start=1):
        value = incremental.update(request)
        prefix = Instance(
            instance.metric,
            instance.cost_function,
            RequestSequence(requests[:served]),
            commodities=instance.commodities,
        )
        assert value == streaming_lower_bound(prefix).value
        if served == len(requests) // 2:
            state = json.loads(json.dumps(incremental.state_dict()))
            resumed = IncrementalOfflineBound(
                instance.metric, instance.cost_function
            )
            resumed.load_state_dict(state)
        elif resumed is not None:
            assert resumed.update(request) == value
    assert resumed is not None
    assert resumed.state_dict() == incremental.state_dict()


# ---------------------------------------------------------------------------
# repro report: golden rendering and the regression gate
# ---------------------------------------------------------------------------
def _tiny_store(directory: Path) -> ResultStore:
    """A fixed two-task sweep with engine telemetry rows, fully deterministic."""
    store = ResultStore(directory)
    for index, (n, cost) in enumerate([(4, 2.0), (8, 3.0), (16, 4.5)]):
        store.put(
            f"curve{index:07d}",
            task="demo/curve",
            case={"n": n},
            seed=0,
            rows=[
                {
                    "n": n,
                    "algorithm": "pd-omflp",
                    "cost": cost,
                    "upper_bound_cost": 2.0 * cost,
                }
            ],
            runtime_seconds=0.5,
            plan="demo",
            telemetry={
                "task": "demo/curve",
                "index": index,
                "seed": 0,
                "rows": 1,
                "runtime_seconds": 0.5,
                "reused": False,
            },
        )
    store.put(
        "ratio000000",
        task="demo/ratio",
        case={},
        seed=1,
        rows=[
            {"scenario": "uniform", "algorithm": "pd-omflp", "ratio": 1.5},
            {"scenario": "zipf", "algorithm": "pd-omflp", "ratio": 2.0},
            {
                "scenario": "burst",
                "algorithm": "pd-omflp",
                "ratio": 1.25,
                "note": "a\nmulti-line   cell " + "x" * 150,
            },
        ],
        runtime_seconds=0.25,
        plan="demo",
        telemetry={
            "task": "demo/ratio",
            "index": 0,
            "seed": 1,
            "rows": 3,
            "runtime_seconds": 0.25,
            "reused": True,
        },
    )
    return store


def test_report_golden_markdown(tmp_path):
    """Byte-exact rendering of a tiny sweep against the committed golden file."""
    _tiny_store(tmp_path / "store")
    result = render_report(
        store=tmp_path / "store", out_dir=tmp_path / "out", title="golden report"
    )
    assert result.tasks == ["demo/curve", "demo/ratio"]
    produced = result.markdown_path.read_text()
    golden = (GOLDEN_DIR / "report_tiny.md").read_text()
    assert produced == golden


def test_report_html_is_self_contained(tmp_path):
    _tiny_store(tmp_path / "store")
    result = render_report(
        store=tmp_path / "store", out_dir=tmp_path / "out", title="golden report"
    )
    html = result.html_path.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "golden report" in html
    # Inline SVG chart for the cost-vs-n curve, dashed paper-bound overlay.
    assert "<svg" in html and "polyline" in html
    assert "stroke-dasharray" in html
    # Multi-line cells were sanitized, never raw.
    assert "\nmulti-line" not in html
    # No external resources: self-contained by construction (the only URL is
    # the SVG xmlns declaration, which is an identifier, not a fetch).
    assert "<script src" not in html and "<link" not in html
    assert "<img" not in html


def test_report_baseline_gate_passes_then_flags_drift(tmp_path):
    store_dir = tmp_path / "store"
    _tiny_store(store_dir)
    baseline = tmp_path / "baseline.json"
    first = render_report(
        store=store_dir, out_dir=tmp_path / "out1", write_baseline=baseline
    )
    assert first.baseline_written == baseline
    clean = render_report(
        store=store_dir, out_dir=tmp_path / "out2", baseline=baseline
    )
    assert clean.regressions == [] and clean.failed is False

    # Perturb one ratio: the gate must flag the exact task and column.
    store = ResultStore(store_dir)
    store.put(
        "ratio000000",
        task="demo/ratio",
        case={},
        seed=1,
        rows=[{"scenario": "uniform", "algorithm": "pd-omflp", "ratio": 9.9}],
        runtime_seconds=0.25,
        plan="demo",
    )
    drifted = render_report(
        store=store_dir, out_dir=tmp_path / "out3", baseline=baseline
    )
    assert drifted.failed is True
    flagged = {(r["task"], r.get("column")) for r in drifted.regressions}
    assert ("demo/ratio", "ratio") in flagged
    # The markdown carries the gate verdict for humans.
    assert "Regression gate" in drifted.markdown_path.read_text()


def test_report_requires_exactly_one_source(tmp_path):
    with pytest.raises(TelemetryError, match="exactly one"):
        render_report(out_dir=tmp_path)
    with pytest.raises(TelemetryError, match="no readable entries"):
        render_report(store=tmp_path / "empty", out_dir=tmp_path / "out")


def test_report_renders_run_records(tmp_path):
    """The --records path: finalized RunRecord JSON files as one table."""
    instance = _scenario_instance("uniform-euclidean", 2)
    session = _session(instance, "pd-omflp", 2, None)
    for request in instance.requests:
        session.submit(request.point, request.commodities)
    record_path = tmp_path / "run.json"
    record_path.write_text(json.dumps(session.finalize().to_dict()))
    result = render_report(
        records=[record_path], out_dir=tmp_path / "out", formats=("markdown",)
    )
    assert result.html_path is None
    markdown = result.markdown_path.read_text()
    assert "total_cost" in markdown
