"""Tests for :mod:`repro.lint` — rules, suppressions, runner, CLI and the
meta-gate that keeps the repository itself clean.

Fixture files under ``tests/lint_fixtures/`` are self-describing: every line
that must be flagged carries a trailing ``# EXPECT: rule-id`` marker, and the
fixture test compares the *exact* set of ``(line, rule_id)`` findings against
the markers — so each fixture pins its rule's positives and negatives at
once.
"""

from __future__ import annotations

import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms.base import OnlineAlgorithm
from repro.api.registry import Registry
from repro.exceptions import ReproError
from repro.lint import RULES, lint_paths, lint_source
from repro.lint.contracts import ContractContext, _strict_json_violations
from repro.lint.rules import all_rules, rule_catalog
from repro.lint.runner import collect_files

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
EXPECT_MARK = re.compile(r"#\s*EXPECT:\s*(?P<rules>[\w\-, ]+)")


def expected_findings(path: Path):
    """``{(line, rule_id)}`` declared by the fixture's EXPECT markers."""
    pairs = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = EXPECT_MARK.search(line)
        if match is None:
            continue
        for rule_id in match.group("rules").split(","):
            pairs.add((lineno, rule_id.strip()))
    return pairs


# ----------------------------------------------------------------------
# Fixture files: exact positive + negative coverage per rule
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "fixture",
    sorted(FIXTURES.rglob("*.py")),
    ids=lambda path: str(path.relative_to(FIXTURES)),
)
def test_fixture_matches_expectations(fixture):
    result = lint_paths([fixture], contracts=False)
    actual = {(finding.line, finding.rule_id) for finding in result.findings}
    assert actual == expected_findings(fixture)


def test_every_determinism_rule_has_a_fixture_positive():
    covered = set()
    for fixture in FIXTURES.rglob("*.py"):
        covered |= {rule_id for _, rule_id in expected_findings(fixture)}
    determinism_ids = {rule.id for rule in all_rules() if rule.family == "determinism"}
    assert determinism_ids <= covered


# ----------------------------------------------------------------------
# Suppression semantics
# ----------------------------------------------------------------------
HAZARD = "import numpy as np\nvalue = np.random.random(){comment}\n"


def test_reasoned_noqa_suppresses_and_records_reason():
    text = HAZARD.format(
        comment="  # repro: noqa[det-global-random] -- demo uses ambient entropy"
    )
    result = lint_source(text)
    assert result.ok
    (waived,) = result.suppressed
    assert waived.rule_id == "det-global-random"
    assert waived.suppressed is True
    assert waived.suppression_reason == "demo uses ambient entropy"


def test_noqa_without_reason_does_not_suppress():
    text = HAZARD.format(comment="  # repro: noqa[det-global-random]")
    result = lint_source(text)
    assert not result.ok
    assert result.counts() == {"det-global-random": 1, "noqa-missing-reason": 1}
    assert result.suppressed == []


def test_noqa_for_other_rule_does_not_suppress():
    text = HAZARD.format(comment="  # repro: noqa[det-wall-clock] -- wrong id")
    result = lint_source(text)
    assert {finding.rule_id for finding in result.findings} == {"det-global-random"}


def test_noqa_with_unknown_rule_id_is_reported():
    text = HAZARD.format(comment="  # repro: noqa[det-bogus] -- typo'd id")
    result = lint_source(text)
    assert result.counts() == {"det-global-random": 1, "noqa-unknown-rule": 1}


def test_noqa_can_cover_multiple_rules():
    text = (
        "import numpy as np\n"
        "from numpy.random import default_rng\n"
        "value = np.random.default_rng()  "
        "# repro: noqa[det-unseeded-rng, det-global-random] -- fixture\n"
    )
    result = lint_source(text)
    assert result.ok
    assert [finding.rule_id for finding in result.suppressed] == ["det-unseeded-rng"]


def test_meta_findings_cannot_be_suppressed():
    text = HAZARD.format(
        comment="  # repro: noqa[det-bogus, noqa-unknown-rule] -- trying to waive the meta rule"
    )
    result = lint_source(text)
    # The unknown-id finding survives even though the comment names the meta
    # rule with a reason.
    assert "noqa-unknown-rule" in result.counts()


def test_noqa_inside_docstring_is_text_not_suppression():
    text = (
        '"""Docs may mention # repro: noqa[det-global-random] -- example."""\n'
        "import numpy as np\n"
        "value = np.random.random()\n"
    )
    result = lint_source(text)
    assert result.counts() == {"det-global-random": 1}


def test_parse_error_is_a_finding():
    result = lint_source("def broken(:\n")
    (finding,) = result.findings
    assert finding.rule_id == "parse-error"
    assert finding.line >= 1


# ----------------------------------------------------------------------
# Runner plumbing
# ----------------------------------------------------------------------
def test_collect_files_rejects_missing_paths(tmp_path):
    with pytest.raises(ReproError, match="does not exist"):
        collect_files([tmp_path / "nope.py"])


def test_select_restricts_rule_set():
    text = HAZARD.format(comment="") + "import time\nnow = time.time()\n"
    result = lint_source(text, select=["det-wall-clock"])
    assert result.counts() == {"det-wall-clock": 1}
    assert result.rule_ids == ["det-wall-clock"]


def test_injected_global_random_is_located(tmp_path):
    scratch = tmp_path / "scratch.py"
    scratch.write_text("import numpy as np\nvalue = np.random.random()\n")
    result = lint_paths([scratch], contracts=False)
    (finding,) = result.findings
    assert finding.rule_id == "det-global-random"
    assert finding.path == str(scratch)
    assert finding.line == 2
    assert finding.location() == f"{scratch}:2:9"


def test_json_document_schema(tmp_path):
    scratch = tmp_path / "scratch.py"
    scratch.write_text("import numpy as np\nvalue = np.random.random()\n")
    document = lint_paths([scratch], contracts=False).to_dict()
    # Strict JSON end to end.
    assert json.loads(json.dumps(document)) == document
    assert document["version"] == 1
    assert document["ok"] is False
    assert document["files_scanned"] == 1
    assert document["counts"] == {"det-global-random": 1}
    (finding,) = document["findings"]
    assert set(finding) == {
        "rule",
        "path",
        "line",
        "column",
        "message",
        "hint",
        "suppressed",
        "suppression_reason",
    }
    assert finding["rule"] == "det-global-random"
    assert finding["line"] == 2


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
def test_rules_registry_shape():
    names = RULES.names()
    assert len(names) == len(set(names))
    for rule in all_rules():
        assert re.fullmatch(r"[a-z][a-z0-9-]*", rule.id)
        assert rule.family in {"determinism", "contract", "meta"}
        assert rule.summary and rule.threat
    catalog = rule_catalog()
    assert {row["id"] for row in catalog} == set(names)


def test_unknown_select_gets_did_you_mean():
    with pytest.raises(ReproError, match="det-global-random"):
        all_rules(["det-global-randon"])


# ----------------------------------------------------------------------
# Contract rules against injected fake registries
# ----------------------------------------------------------------------
class _HalfSnapshotAlgorithm(OnlineAlgorithm):
    """Overrides state_dict but not load_state_dict: the pairing bug."""

    name = "half-snapshot"

    def process(self, request, state, rng) -> None:  # pragma: no cover
        pass

    def state_dict(self):
        return {"facilities": []}


class _LeakySnapshotAlgorithm(OnlineAlgorithm):
    """Paired hooks, but the snapshot leaks a NumPy scalar."""

    name = "leaky-snapshot"

    def process(self, request, state, rng) -> None:  # pragma: no cover
        pass

    def state_dict(self):
        return {"total": np.float64(1.5)}

    def load_state_dict(self, state) -> None:  # pragma: no cover
        pass


class _CleanAlgorithm(OnlineAlgorithm):
    name = "clean"

    def process(self, request, state, rng) -> None:  # pragma: no cover
        pass


def _fake_context(algorithms: Registry) -> ContractContext:
    return ContractContext(
        algorithms=algorithms,
        scenarios=Registry("scenario", strict_params=True),
        scenario_examples={},
        strict_registries={},
        param_registries={},
        smoke_run=lambda algorithm: None,
    )


def _contract_findings(ctx: ContractContext, rule_id: str):
    result = lint_paths([], select=[rule_id], contract_context=ctx)
    return result.findings


def test_state_dict_pair_flags_half_override():
    registry = Registry("algorithm")
    registry.add("half-snapshot", _HalfSnapshotAlgorithm)
    registry.add("clean", _CleanAlgorithm)
    findings = _contract_findings(_fake_context(registry), "con-state-dict-pair")
    (finding,) = findings
    assert finding.rule_id == "con-state-dict-pair"
    assert "half-snapshot" in finding.message
    assert "load_state_dict" in finding.message
    assert finding.path.endswith("test_lint.py")  # anchored at the class


def test_strict_json_flags_numpy_scalar_in_snapshot():
    registry = Registry("algorithm")
    registry.add("leaky-snapshot", _LeakySnapshotAlgorithm)
    registry.add("clean", _CleanAlgorithm)
    findings = _contract_findings(_fake_context(registry), "con-strict-json")
    (finding,) = findings
    assert "leaky-snapshot" in finding.message
    assert "float64" in finding.message


def test_strict_params_flags_lax_registry_and_kwargs_builder():
    lax = Registry("scenario")  # strict_params missing

    def opaque_builder(**kwargs):  # hides its parameters
        return None

    params = Registry("workload")
    params.add("opaque", opaque_builder)
    ctx = ContractContext(
        algorithms=Registry("algorithm"),
        scenarios=Registry("scenario", strict_params=True),
        scenario_examples={},
        strict_registries={"scenario": lax},
        param_registries={"workload": params},
        smoke_run=lambda algorithm: None,
    )
    findings = _contract_findings(ctx, "con-strict-params")
    messages = sorted(finding.message for finding in findings)
    assert len(messages) == 2
    assert any("strict_params" in message for message in messages)
    assert any("**kwargs" in message for message in messages)


def test_strict_json_violation_paths():
    violations = list(
        _strict_json_violations({"a": [1, np.float64(2.0)], "b": {"c": (1, 2)}})
    )
    assert any("$.a[1]" in violation for violation in violations)
    assert any("$.b.c" in violation and "tuple" in violation for violation in violations)
    assert list(_strict_json_violations({"x": [1, 2.5, "s", True, None]})) == []


def test_contract_rules_pass_on_real_catalog():
    result = lint_paths([], contracts=True)
    assert [finding.format() for finding in result.findings] == []


# ----------------------------------------------------------------------
# The meta-gate: this repository lints clean
# ----------------------------------------------------------------------
def test_src_tree_is_lint_clean():
    result = lint_paths([REPO_ROOT / "src"])
    assert [finding.format() for finding in result.findings] == []
    # Every waiver must carry its written reason.
    for finding in result.suppressed:
        assert finding.suppression_reason, finding.format()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_exit_codes_and_json(tmp_path, capsys):
    from repro.cli import main

    scratch = tmp_path / "scratch.py"
    scratch.write_text("import numpy as np\nvalue = np.random.random()\n")
    assert main(["lint", str(scratch), "--format", "json", "--no-contracts"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is False
    assert document["findings"][0]["rule"] == "det-global-random"

    clean = tmp_path / "clean.py"
    clean.write_text("value = 1 + 1\n")
    assert main(["lint", str(clean), "--no-contracts"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    from repro.cli import main

    assert main(["lint", "--list-rules"]) == 0
    output = capsys.readouterr().out
    for rule in all_rules():
        assert rule.id in output


def test_repro_help_lists_every_subcommand():
    from repro.cli import SUBCOMMANDS, build_parser

    assert SUBCOMMANDS.names() == [
        "list",
        "run",
        "run-all",
        "experiments",
        "spec",
        "scenarios",
        "serve",
        "report",
        "trace",
        "lint",
    ]
    help_text = build_parser().format_help()
    for name in SUBCOMMANDS.names():
        assert name in help_text


def test_experiments_cli_shim_reexports_the_same_objects():
    import repro.cli
    import repro.experiments.cli

    assert repro.experiments.cli.main is repro.cli.main
    assert repro.experiments.cli.build_parser is repro.cli.build_parser
    assert repro.experiments.cli.SUBCOMMANDS is repro.cli.SUBCOMMANDS


# ----------------------------------------------------------------------
# External tool gates (run only where the tools exist, e.g. CI)
# ----------------------------------------------------------------------
@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff is not installed")
def test_ruff_is_clean():
    completed = subprocess.run(
        ["ruff", "check", "src"], cwd=REPO_ROOT, capture_output=True, text=True
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy is not installed")
def test_mypy_is_clean():
    completed = subprocess.run(
        [sys.executable, "-m", "mypy"], cwd=REPO_ROOT, capture_output=True, text=True
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
