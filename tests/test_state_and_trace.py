"""Tests for OnlineState and execution traces."""

import pytest

from repro.core import Assignment, OnlineState, Request, Trace
from repro.core.trace import (
    CoinFlipEvent,
    DualFreezeEvent,
    FacilityOpenedEvent,
    RequestAssignedEvent,
)
from repro.exceptions import AlgorithmError


class TestOnlineState:
    def test_open_and_assign(self, small_instance):
        state = OnlineState(small_instance, trace=Trace(enabled=True))
        request = small_instance.requests[0]  # point 0, commodities {0, 1}
        facility = state.open_facility(request, 1, {0, 1})
        assert facility.opening_cost > 0
        assignment = Assignment(request_index=0)
        assignment.assign(0, facility.id)
        assignment.assign(1, facility.id)
        state.record_assignment(request, assignment)
        assert state.current_opening_cost() == pytest.approx(facility.opening_cost)
        assert state.current_connection_cost() == pytest.approx(0.25)
        assert state.current_total_cost() == pytest.approx(facility.opening_cost + 0.25)
        assert len(state.processed_requests) == 1
        solution = state.to_solution()
        solution.validate(small_instance.requests.prefix(1))

    def test_distance_queries_delegate_to_store(self, small_instance):
        state = OnlineState(small_instance)
        request = small_instance.requests[0]
        assert state.distance_to_nearest(0, 0) == float("inf")
        state.open_facility(request, 4, {0})
        assert state.distance_to_nearest(0, 0) == pytest.approx(1.0)
        assert state.nearest_offering(0, 0)[0].point == 4
        assert state.distance_to_nearest_large(0) == float("inf")
        state.open_large_facility(request, 2)
        assert state.distance_to_nearest_large(0) == pytest.approx(0.5)
        assert state.nearest_large(0)[0].point == 2

    def test_double_assignment_rejected(self, small_instance):
        state = OnlineState(small_instance)
        request = small_instance.requests[1]  # point 4, commodity {2}
        facility = state.open_facility(request, 4, {2})
        state.record_assignment(request, Assignment(1, {2: facility.id}))
        with pytest.raises(AlgorithmError):
            state.record_assignment(request, Assignment(1, {2: facility.id}))

    def test_assign_to_single_facility_requires_coverage(self, small_instance):
        state = OnlineState(small_instance)
        request = small_instance.requests[0]  # {0, 1}
        small = state.open_facility(request, 0, {0})
        with pytest.raises(AlgorithmError):
            state.assign_to_single_facility(request, small)
        large = state.open_large_facility(request, 0)
        assignment = state.assign_to_single_facility(request, large)
        assert assignment.uses_single_facility()

    def test_trace_records_events(self, small_instance):
        state = OnlineState(small_instance, trace=Trace(enabled=True))
        request = small_instance.requests[0]
        state.open_large_facility(request, 0)
        state.assign_to_single_facility(request, state.store[0])
        openings = state.trace.facility_openings()
        assert len(openings) == 1
        assert openings[0].is_large
        assert len(state.trace.events_for_request(0)) == 2
        assert "opened large facility" in state.trace.transcript()

    def test_disabled_trace_records_nothing(self, small_instance):
        state = OnlineState(small_instance, trace=Trace(enabled=False))
        request = small_instance.requests[0]
        state.open_large_facility(request, 0)
        assert len(state.trace) == 0


class TestTraceEvents:
    def test_describe_methods(self):
        opened = FacilityOpenedEvent(
            request_index=1, facility_id=2, point=3, configuration=frozenset({0}), opening_cost=1.5
        )
        assert "small facility #2" in opened.describe()
        large = FacilityOpenedEvent(
            request_index=1, facility_id=2, point=3, configuration=frozenset({0, 1}),
            opening_cost=1.5, is_large=True,
        )
        assert "large facility" in large.describe()
        assigned = RequestAssignedEvent(request_index=0, facility_ids=(1, 2), connection_cost=0.5)
        assert "connected via 2" in assigned.describe()
        via_large = RequestAssignedEvent(
            request_index=0, facility_ids=(1,), connection_cost=0.5, via_large=True
        )
        assert "single large facility" in via_large.describe()
        freeze = DualFreezeEvent(request_index=0, commodity=3, value=0.7, reason="test")
        assert "a_(r,3)" in freeze.describe()
        coin = CoinFlipEvent(request_index=0, kind="small", commodity=1, class_index=2,
                             probability=0.3, success=True)
        assert "OPENED" in coin.describe()
        assert "commodity 1" in coin.describe()
        base_event = FacilityOpenedEvent(request_index=0)
        assert "request 0" in base_event.describe()
