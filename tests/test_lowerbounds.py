"""Tests for the adversarial lower-bound constructions of Section 2 / Section 3.3."""

import math

import pytest

from repro.algorithms.online.no_prediction import NoPredictionGreedy
from repro.algorithms.online.pd_omflp import PDOMFLPAlgorithm
from repro.algorithms.online.rand_omflp import RandOMFLPAlgorithm
from repro.algorithms.base import run_online
from repro.costs.count_based import PowerCost
from repro.exceptions import InvalidInstanceError
from repro.lowerbound import (
    adaptive_lower_bound_instance,
    predicted_adaptive_ratio,
    predicted_single_point_ratio,
    run_adaptive_line_game,
    run_combined_lower_bound_game,
    run_single_point_game,
    single_point_instance,
)
from repro.lowerbound.fotakis_line import line_game_parameters
from repro.lowerbound.single_point import round_structure


class TestSinglePointInstance:
    def test_structure(self):
        instance, opt = single_point_instance(16, rng=0)
        assert instance.num_points == 1
        assert instance.num_requests == 4  # sqrt(16)
        assert opt == pytest.approx(1.0)
        assert all(r.num_commodities == 1 for r in instance.requests)
        commodities = {next(iter(r.commodities)) for r in instance.requests}
        assert len(commodities) == 4  # all distinct

    def test_subset_size_override(self):
        instance, opt = single_point_instance(16, subset_size=7, rng=1)
        assert instance.num_requests == 7
        assert opt == pytest.approx(2.0)  # ceil(7/4)

    def test_custom_cost_function(self):
        cost = PowerCost(16, 1.0)
        instance, opt = single_point_instance(16, cost_function=cost, rng=2)
        assert opt == pytest.approx(2.0)  # 4^(1/2)

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            single_point_instance(0)
        with pytest.raises(InvalidInstanceError):
            single_point_instance(16, subset_size=0)
        with pytest.raises(InvalidInstanceError):
            single_point_instance(16, cost_function=PowerCost(9, 1.0))

    def test_deterministic_by_seed(self):
        a, _ = single_point_instance(25, rng=5)
        b, _ = single_point_instance(25, rng=5)
        assert [r.commodities for r in a.requests] == [r.commodities for r in b.requests]


class TestSinglePointGame:
    def test_pd_ratio_matches_sqrt_s(self):
        game = run_single_point_game(PDOMFLPAlgorithm(), 36, repeats=2, rng=0)
        assert game.ratio == pytest.approx(6.0)
        assert game.opt_cost == pytest.approx(1.0)
        assert game.subset_size == 6

    def test_no_prediction_ratio_at_least_sqrt_s(self):
        game = run_single_point_game(NoPredictionGreedy(), 49, repeats=2, rng=1)
        assert game.ratio >= 7.0 - 1e-9

    def test_rand_ratio_at_least_constant_fraction_of_sqrt_s(self):
        game = run_single_point_game(RandOMFLPAlgorithm(), 36, repeats=5, rng=2)
        assert game.ratio >= 1.0
        assert game.algorithm_cost >= 1.0

    def test_round_structure_reconstruction(self):
        instance, _ = single_point_instance(16, rng=3)
        result = run_online(PDOMFLPAlgorithm(), instance, trace=True)
        rounds = round_structure(instance, result)
        assert len(rounds) <= instance.num_requests
        assert sum(r.commodities_newly_covered for r in rounds) >= instance.num_requests
        assert all(r.facility_cost_paid >= 0 for r in rounds)

    def test_repeats_validation(self):
        with pytest.raises(InvalidInstanceError):
            run_single_point_game(PDOMFLPAlgorithm(), 16, repeats=0)

    def test_predicted_ratio(self):
        assert predicted_single_point_ratio(64) == pytest.approx(8.0)


class TestAdaptiveLineGame:
    def test_parameters_cover_request_budget(self):
        phases, growth = line_game_parameters(200)
        assert growth >= 2
        assert sum(growth**i for i in range(phases)) <= 200

    def test_parameters_validation(self):
        with pytest.raises(InvalidInstanceError):
            line_game_parameters(1)

    def test_game_runs_and_ratio_at_least_one(self):
        game = run_adaptive_line_game(PDOMFLPAlgorithm(), 60, facility_cost=0.5, rng=0)
        assert game.num_requests <= 60
        assert game.opt_estimate > 0
        assert game.ratio >= 1.0 - 1e-9
        assert game.predicted_ratio > 0
        assert game.num_phases >= 2

    def test_phases_grow_with_n(self):
        small = run_adaptive_line_game(PDOMFLPAlgorithm(), 30, facility_cost=0.5, rng=1)
        large = run_adaptive_line_game(PDOMFLPAlgorithm(), 600, facility_cost=0.5, rng=1)
        assert large.num_phases >= small.num_phases
        assert large.num_requests > small.num_requests
        # The OPT estimate is an upper bound on OPT, so the measured ratio is a
        # conservative under-estimate; it must still be bounded away from zero.
        assert large.ratio > 0.5

    def test_invalid_cost(self):
        with pytest.raises(InvalidInstanceError):
            run_adaptive_line_game(PDOMFLPAlgorithm(), 20, facility_cost=0.0)


class TestCombinedGame:
    def test_combines_both_games(self):
        result = run_combined_lower_bound_game(
            PDOMFLPAlgorithm, num_commodities=16, num_requests=40, rng=0
        )
        assert result.single_point.ratio >= 1.0
        assert result.line_game.ratio >= 1.0
        assert result.measured_ratio == max(result.single_point.ratio, result.line_game.ratio)
        expected = math.sqrt(16) + result.predicted_ratio - math.sqrt(16)
        assert result.predicted_ratio >= math.sqrt(16)


class TestAdaptiveLowerBound:
    @pytest.mark.parametrize("x", [0.0, 0.5, 1.0, 1.5, 2.0])
    def test_instance_and_prediction(self, x):
        instance, opt = adaptive_lower_bound_instance(16, x, rng=0)
        assert instance.num_requests == 4
        assert opt == pytest.approx(4 ** (x / 2.0))
        predicted = predicted_adaptive_ratio(16, x)
        root = math.sqrt(16)
        assert predicted == pytest.approx(min(root ** ((2 - x) / 2), root ** (x / 2)))

    def test_prediction_peaks_at_one(self):
        values = [predicted_adaptive_ratio(256, x) for x in [0.0, 0.5, 1.0, 1.5, 2.0]]
        assert max(values) == pytest.approx(predicted_adaptive_ratio(256, 1.0))
        assert values[0] == pytest.approx(1.0)
        assert values[-1] == pytest.approx(1.0)

    def test_invalid_exponent(self):
        with pytest.raises(InvalidInstanceError):
            predicted_adaptive_ratio(16, 2.5)
