"""Unit and property-based tests for the facility cost functions."""

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.costs import (
    AdversaryCost,
    ConstantCost,
    CostClassIndex,
    CountBasedCost,
    HierarchicalCost,
    LinearCost,
    OrderedLinearCost,
    PerPointScaledCost,
    PowerCost,
    TabulatedCost,
    WeightedConcaveCost,
    check_condition_one,
    check_monotonicity,
    check_subadditivity,
)
from repro.costs.general import random_weighted_concave_cost
from repro.exceptions import InvalidCostFunctionError
from repro.metric.factories import uniform_line_metric


class TestCountBasedCost:
    def test_empty_configuration_is_free(self):
        cost = PowerCost(4, 1.0)
        assert cost.cost(0, ()) == 0.0

    def test_shape_table_used(self):
        cost = LinearCost(3, scale=2.0)
        assert cost.cost(5, {0, 1}) == 4.0
        assert cost.full_cost(0) == 6.0
        assert cost.singleton_cost(0, 2) == 2.0

    def test_point_scales(self):
        cost = LinearCost(2, point_scales=[1.0, 3.0])
        assert cost.cost(0, {0}) == 1.0
        assert cost.cost(1, {0}) == 3.0
        with pytest.raises(InvalidCostFunctionError):
            cost.cost(2, {0})

    def test_costs_over_points_vectorized(self):
        cost = LinearCost(2, point_scales=[1.0, 2.0, 4.0])
        np.testing.assert_allclose(cost.costs_over_points({0, 1}, [0, 1, 2]), [2.0, 4.0, 8.0])
        uniform = LinearCost(2)
        np.testing.assert_allclose(uniform.costs_over_points({0}, [5, 9]), [1.0, 1.0])

    def test_is_uniform_over_points(self):
        assert LinearCost(2).is_uniform_over_points()
        assert LinearCost(2, point_scales=[2.0, 2.0]).is_uniform_over_points()
        assert not LinearCost(2, point_scales=[1.0, 2.0]).is_uniform_over_points()

    def test_invalid_shape_rejected(self):
        with pytest.raises(InvalidCostFunctionError):
            CountBasedCost(2, lambda k: 1.0)  # shape(0) != 0
        with pytest.raises(InvalidCostFunctionError):
            CountBasedCost(2, lambda k: -float(k))

    def test_unknown_commodity_rejected(self):
        cost = PowerCost(3, 1.0)
        with pytest.raises(InvalidCostFunctionError):
            cost.cost(0, {7})


class TestPowerCost:
    @pytest.mark.parametrize("x", [0.0, 0.5, 1.0, 1.5, 2.0])
    def test_shape_values(self, x):
        cost = PowerCost(16, x)
        assert cost.cost(0, range(4)) == pytest.approx(4 ** (x / 2.0))
        assert cost.full_cost(0) == pytest.approx(16 ** (x / 2.0))

    def test_exponent_bounds(self):
        with pytest.raises(InvalidCostFunctionError):
            PowerCost(4, -0.1)
        with pytest.raises(InvalidCostFunctionError):
            PowerCost(4, 2.1)

    def test_predicted_exponents_match_figure2(self):
        # Exponents coincide at x in {0, 1, 2} (Figure 2).
        for x in (0.0, 1.0, 2.0):
            cost = PowerCost(100, x)
            assert cost.predicted_upper_exponent() == pytest.approx(
                cost.predicted_lower_exponent()
            )
        mid = PowerCost(100, 0.5)
        assert mid.predicted_upper_exponent() > mid.predicted_lower_exponent()

    def test_peak_at_x_equal_one(self):
        exponents = [PowerCost(100, x).predicted_upper_exponent() for x in np.linspace(0, 2, 21)]
        assert max(exponents) == pytest.approx(PowerCost(100, 1.0).predicted_upper_exponent())

    def test_tuned_threshold(self):
        assert PowerCost(16, 1.0).tuned_threshold() == pytest.approx(4.0)
        assert PowerCost(16, 2.0).tuned_threshold() == pytest.approx(16.0)
        assert PowerCost(16, 0.0).tuned_threshold() == pytest.approx(1.0)

    def test_special_cases_match_named_classes(self):
        assert PowerCost(5, 2.0).cost(0, {0, 1, 2}) == pytest.approx(
            LinearCost(5).cost(0, {0, 1, 2})
        )
        assert PowerCost(5, 0.0).cost(0, {0, 1, 2}) == pytest.approx(
            ConstantCost(5).cost(0, {0, 1, 2})
        )


class TestAdversaryCost:
    def test_theorem2_values(self):
        cost = AdversaryCost(16)
        assert cost.sqrt_block == 4
        assert cost.cost(0, {0}) == 1.0
        assert cost.cost(0, range(4)) == 1.0
        assert cost.cost(0, range(5)) == 2.0
        assert cost.full_cost(0) == 4.0

    def test_opt_of_planted_subset_is_one(self):
        cost = AdversaryCost(64)
        assert cost.cost(0, range(8)) == 1.0


class TestWeightedConcaveCost:
    def test_uniform_weights_satisfy_condition_one(self):
        cost = WeightedConcaveCost([1.0] * 6)
        assert not check_condition_one(cost, [0])

    def test_cost_values(self):
        cost = WeightedConcaveCost([1.0, 4.0], transform=math.sqrt)
        assert cost.cost(0, {0}) == pytest.approx(1.0)
        assert cost.cost(0, {1}) == pytest.approx(2.0)
        assert cost.cost(0, {0, 1}) == pytest.approx(math.sqrt(5.0))

    def test_point_scales_and_vectorized(self):
        cost = WeightedConcaveCost([1.0, 1.0], point_scales=[1.0, 2.0])
        np.testing.assert_allclose(
            cost.costs_over_points({0, 1}, [0, 1]), [math.sqrt(2), 2 * math.sqrt(2)]
        )

    def test_invalid_weights(self):
        with pytest.raises(InvalidCostFunctionError):
            WeightedConcaveCost([0.0, 1.0])
        with pytest.raises(InvalidCostFunctionError):
            WeightedConcaveCost([])

    def test_random_factory(self):
        cost = random_weighted_concave_cost(5, 7, rng=0)
        assert cost.num_commodities == 5
        assert cost.cost(3, {0, 1}) > 0


class TestPerPointScaledAndTabulated:
    def test_per_point_scaled(self):
        base = ConstantCost(3)
        cost = PerPointScaledCost(base, [1.0, 0.5])
        assert cost.cost(0, {0}) == 1.0
        assert cost.cost(1, {0, 1}) == 0.5
        with pytest.raises(InvalidCostFunctionError):
            cost.cost(5, {0})

    def test_tabulated_direct_and_cover(self):
        table = {
            (0, frozenset({0})): 1.0,
            (0, frozenset({1})): 1.0,
            (0, frozenset({0, 1})): 1.5,
        }
        cost = TabulatedCost(2, table)
        assert cost.cost(0, {0, 1}) == 1.5
        assert cost.cost(0, {0}) == 1.0
        assert cost.cost(0, ()) == 0.0

    def test_tabulated_fallback_cover(self):
        table = {(0, frozenset({0})): 1.0, (0, frozenset({1})): 2.0}
        cost = TabulatedCost(2, table)
        assert cost.cost(0, {0, 1}) == 3.0

    def test_tabulated_strict_and_uncoverable(self):
        table = {(0, frozenset({0})): 1.0}
        strict = TabulatedCost(2, table, strict=True)
        with pytest.raises(InvalidCostFunctionError):
            strict.cost(0, {0, 1})
        loose = TabulatedCost(2, table)
        with pytest.raises(InvalidCostFunctionError):
            loose.cost(0, {1})
        with pytest.raises(InvalidCostFunctionError):
            loose.cost(1, {0})

    def test_tabulated_rejects_negative(self):
        with pytest.raises(InvalidCostFunctionError):
            TabulatedCost(1, {(0, frozenset({0})): -1.0})


class TestHierarchicalCost:
    def test_balanced_hierarchy(self):
        cost = HierarchicalCost.balanced(4, branching=2, edge_weight=1.0)
        single = cost.cost(0, {0})
        pair_far = cost.cost(0, {0, 3})
        assert single > 0
        assert pair_far <= 2 * single
        assert cost.full_cost(0) <= 4 * single

    def test_explicit_tree(self):
        tree = nx.Graph()
        tree.add_edge("root", "l", weight=1.0)
        tree.add_edge("root", "r", weight=1.0)
        tree.add_edge("l", "a", weight=0.5)
        tree.add_edge("l", "b", weight=0.5)
        cost = HierarchicalCost(tree, "root", {0: "a", 1: "b", 2: "r"})
        assert cost.cost(0, {0}) == pytest.approx(1.5)
        # Shared edge root->l counted once.
        assert cost.cost(0, {0, 1}) == pytest.approx(2.0)
        assert cost.cost(0, {0, 2}) == pytest.approx(2.5)

    def test_subadditive_property(self):
        cost = HierarchicalCost.balanced(6, branching=3)
        assert not check_subadditivity(cost, [0])

    def test_invalid_inputs(self):
        with pytest.raises(InvalidCostFunctionError):
            HierarchicalCost(nx.cycle_graph(3), 0, {0: 1})
        tree = nx.path_graph(3)
        with pytest.raises(InvalidCostFunctionError):
            HierarchicalCost(tree, 99, {0: 2})
        with pytest.raises(InvalidCostFunctionError):
            HierarchicalCost(tree, 0, {1: 2})  # commodities must be 0..|S|-1


class TestOrderedLinearCost:
    def test_linear_sum(self):
        prices = [[1.0, 2.0], [2.0, 3.0]]
        cost = OrderedLinearCost(prices)
        assert cost.cost(0, {0, 1}) == 3.0
        assert cost.cost(1, {1}) == 3.0
        np.testing.assert_allclose(cost.costs_over_points({0, 1}, [0, 1]), [3.0, 5.0])

    def test_ordered_check(self):
        with pytest.raises(InvalidCostFunctionError):
            OrderedLinearCost([[1.0, 5.0], [2.0, 1.0]])
        # Same prices but check disabled.
        OrderedLinearCost([[1.0, 5.0], [2.0, 1.0]], enforce_ordered=False)

    def test_point_range(self):
        cost = OrderedLinearCost([[1.0]])
        with pytest.raises(InvalidCostFunctionError):
            cost.cost(3, {0})


class TestCostClassIndex:
    def test_classes_are_rounded_powers_of_two(self):
        metric = uniform_line_metric(4)
        cost = ConstantCost(2, point_scales=[1.0, 3.0, 5.0, 16.0])
        index = CostClassIndex(metric, cost, {0})
        values = [c.value for c in index.classes]
        assert values == [1.0, 2.0, 4.0, 16.0]
        assert index.num_classes == 4
        assert index.class_of_point(1) == 2

    def test_distance_convention_is_cumulative(self):
        metric = uniform_line_metric(4)
        cost = ConstantCost(2, point_scales=[8.0, 4.0, 2.0, 1.0])
        index = CostClassIndex(metric, cost, {0})
        # From point 0: the cheapest class (value 1) lives at point 3.
        assert index.distance_to_class(1, 0) == pytest.approx(1.0)
        # The most expensive class includes every point, so distance 0.
        assert index.distance_to_class(index.num_classes, 0) == pytest.approx(0.0)
        # Distances are non-increasing in the class index.
        distances = [index.distance_to_class(i, 0) for i in range(1, index.num_classes + 1)]
        assert distances == sorted(distances, reverse=True)

    def test_cheapest_open_option(self):
        metric = uniform_line_metric(3)
        cost = ConstantCost(1, point_scales=[10.0, 1.0, 10.0])
        index = CostClassIndex(metric, cost, {0})
        best_class, value = index.cheapest_open_option(0)
        assert value == pytest.approx(1.0 + 0.5)
        assert index.class_value(best_class) == 1.0
        options = index.opening_option_values(0)
        assert value == pytest.approx(float(options.min()))

    def test_empty_configuration_rejected(self):
        metric = uniform_line_metric(2)
        with pytest.raises(InvalidCostFunctionError):
            CostClassIndex(metric, ConstantCost(2), ())

    def test_invalid_class_index(self):
        metric = uniform_line_metric(2)
        index = CostClassIndex(metric, ConstantCost(2), {0})
        with pytest.raises(InvalidCostFunctionError):
            index.class_value(0)
        with pytest.raises(InvalidCostFunctionError):
            index.distance_to_class(99, 0)


class TestPropertyCheckers:
    def test_power_cost_is_subadditive_and_condition_one(self):
        for x in (0.0, 0.5, 1.0, 2.0):
            cost = PowerCost(6, x)
            assert not check_subadditivity(cost, [0])
            assert not check_condition_one(cost, [0])
            assert not check_monotonicity(cost, [0])

    def test_adversary_cost_satisfies_condition_one(self):
        cost = AdversaryCost(16)
        assert not check_condition_one(cost, [0])
        assert not check_subadditivity(cost, [0])

    def test_skewed_weights_violate_condition_one(self):
        cost = WeightedConcaveCost([1.0, 1.0, 100.0])
        violations = check_condition_one(cost, [0])
        assert violations  # the heavy commodity breaks Condition 1

    def test_raise_on_violation(self):
        cost = WeightedConcaveCost([1.0, 1.0, 100.0])
        with pytest.raises(InvalidCostFunctionError):
            check_condition_one(cost, [0], raise_on_violation=True)

    def test_superadditive_function_detected(self):
        bad = CountBasedCost(4, lambda k: float(k * k), name="square")
        assert check_subadditivity(bad, [0])
        with pytest.raises(InvalidCostFunctionError):
            check_subadditivity(bad, [0], raise_on_violation=True)

    def test_nonmonotone_function_detected(self):
        wiggle = CountBasedCost(3, lambda k: [0.0, 2.0, 1.0, 3.0][k], name="wiggle")
        assert check_monotonicity(wiggle, [0])
        with pytest.raises(InvalidCostFunctionError):
            check_monotonicity(wiggle, [0], raise_on_violation=True)


@settings(max_examples=30, deadline=None)
@given(
    num_commodities=st.integers(min_value=2, max_value=8),
    x=st.floats(min_value=0.0, max_value=2.0),
    point_count=st.integers(min_value=1, max_value=4),
)
def test_class_c_costs_always_satisfy_paper_assumptions(num_commodities, x, point_count):
    """Property: every g_x in the class C is subadditive and satisfies Condition 1."""
    scales = list(1.0 + np.linspace(0, 1, point_count))
    cost = PowerCost(num_commodities, x, point_scales=scales)
    points = list(range(point_count))
    assert not check_subadditivity(cost, points)
    assert not check_condition_one(cost, points)
