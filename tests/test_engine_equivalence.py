"""Parallel-vs-serial equivalence harness for every experiment.

The engine's determinism contract: because each task owns a private child RNG
stream (``spawn_child_seeds``), the worker count can never change results.
This harness pins that at two levels for **all 13 experiment modules**:

* **plan level** — each experiment's quick-profile plan is executed serially
  and through a forced 2-worker process pool (``min_items_for_parallel=1``,
  so even one-case plans cross the process boundary); every emitted row must
  be exactly ``==``.
* **experiment level** — the full ``run(workers=2)`` path (the CLI's
  ``--workers``) must reproduce ``run(workers=1)`` rows, notes, parameters
  and extra text exactly.
"""

import math

import pytest

from repro.experiments import registry as experiments_registry
from repro.engine import run_plan
from repro.parallel.pool import ParallelConfig


def _canonical(value):
    """Identity-preserving form whose ``==`` treats NaN as equal to itself.

    Rows may legitimately contain NaN (e.g. ``exact_opt`` when brute force is
    unaffordable); bitwise-identical runs must still compare equal.
    """
    if isinstance(value, float) and math.isnan(value):
        return "__nan__"
    if isinstance(value, dict):
        return {key: _canonical(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(entry) for entry in value]
    return value

#: Every experiment module, keyed by its registry id.
EXPERIMENT_MODULES = {
    module.EXPERIMENT_ID: module
    for module in (
        experiments_registry.fig2_bound_curves,
        experiments_registry.thm2_single_point,
        experiments_registry.cor3_combined,
        experiments_registry.thm4_pd_scaling,
        experiments_registry.thm19_rand_scaling,
        experiments_registry.thm18_cost_class,
        experiments_registry.baseline_separation,
        experiments_registry.duality_certificates,
        experiments_registry.covering_lemma,
        experiments_registry.fig3_connection_trace,
        experiments_registry.ofl_substrate,
        experiments_registry.heavy_commodities,
        experiments_registry.arrival_order,
    )
}

EXPERIMENT_IDS = sorted(EXPERIMENT_MODULES)


def test_every_registered_experiment_is_covered():
    """The harness must grow with the registry: no experiment escapes it."""
    assert set(EXPERIMENT_IDS) == set(experiments_registry.list_experiments())


def test_every_experiment_module_has_a_declarative_plan():
    for experiment_id, module in EXPERIMENT_MODULES.items():
        plan = module.build_plan("quick", seed=0)
        assert len(plan) >= 1, experiment_id
        for task in plan.tasks():
            # Every case must be name-registered plain data, i.e. storable.
            assert task.storable(), (experiment_id, task)


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_plan_rows_identical_through_forced_pool(experiment_id):
    module = EXPERIMENT_MODULES[experiment_id]
    plan = module.build_plan("quick", seed=0)
    serial = run_plan(plan, workers=1)
    pooled = run_plan(
        plan, config=ParallelConfig(workers=2, min_items_for_parallel=1)
    )
    assert _canonical(serial.rows) == _canonical(pooled.rows)


@pytest.mark.parametrize(
    "experiment_id",
    # Cheap plans with diverse row shapes: deterministic curve samples,
    # multi-row tasks, and NaN-bearing certificate rows.
    ["fig2-bound-curves", "covering-lemma", "duality-certificates"],
)
def test_experiment_store_reuse_round_trip(experiment_id, tmp_path):
    """Re-running against a store reuses every case and reproduces the result."""
    from repro.engine import ResultStore

    module = EXPERIMENT_MODULES[experiment_id]
    store = ResultStore(tmp_path / "store")
    first = module.run("quick", rng=0, store=store)
    assert store.writes == len(module.build_plan("quick", seed=0))

    reused = module.run("quick", rng=0, store=store)
    assert store.hits == store.writes  # every case served from disk
    assert _canonical(reused.rows) == _canonical(first.rows)
    assert reused.notes == first.notes
    assert reused.extra_text == first.extra_text


@pytest.mark.parametrize(
    "experiment_id",
    # The three largest grids exercise the full run() path end to end; the
    # plan-level test above already pins every module through the pool.
    ["thm2-single-point", "baseline-separation", "thm18-cost-class"],
)
def test_experiment_run_workers2_equals_serial(experiment_id):
    module = EXPERIMENT_MODULES[experiment_id]
    serial = module.run("quick", rng=0, workers=1)
    parallel = module.run("quick", rng=0, workers=2)
    assert _canonical(parallel.rows) == _canonical(serial.rows)
    assert parallel.notes == serial.notes
    assert parallel.parameters == serial.parameters
    assert parallel.extra_text == serial.extra_text
