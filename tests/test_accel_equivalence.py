"""Bit-identical equivalence of the accelerated and reference hot paths.

The acceleration layer (:mod:`repro.accel`) claims to be an *exact* drop-in:
for every algorithm, metric space, workload and seed, the fast path
(``use_accel=True``, the default) must produce byte-for-byte the same run as
the reference scans it replaces — same total/opening/connection cost, same
facility-opening sequence (ids, points, configurations, costs), and the same
assignment trace (which facility serves which commodity of every request,
with the same per-request connection cost).

This harness pins that claim over a grid of scenarios and 5 seeds each, so
any future change that breaks exactness fails loudly by name.  Equality is
asserted with ``==`` on floats throughout — "close" is not good enough here;
the accel layer's whole contract is bitwise equality.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np
import pytest

from repro.algorithms.base import OnlineAlgorithm, OnlineResult, run_online
from repro.algorithms.online.fotakis_ofl import FotakisOFLAlgorithm
from repro.algorithms.online.meyerson_ofl import MeyersonOFLAlgorithm
from repro.algorithms.online.pd_omflp import PDOMFLPAlgorithm
from repro.algorithms.online.per_commodity import PerCommodityAlgorithm
from repro.algorithms.online.rand_omflp import RandOMFLPAlgorithm
from repro.core.commodities import CommodityUniverse
from repro.core.instance import Instance
from repro.core.requests import Request, RequestSequence
from repro.costs.count_based import PowerCost
from repro.costs.general import PerPointScaledCost
from repro.metric.factories import (
    random_euclidean_metric,
    random_graph_metric,
    random_line_metric,
    random_tree_metric,
)
from repro.metric.grid import GridMetric
from repro.metric.matrix import ExplicitMetric
from repro.metric.single_point import SinglePointMetric
from repro.utils.rng import ensure_rng
from repro.workloads.clustered import clustered_workload
from repro.workloads.uniform import uniform_workload

SEEDS = [0, 1, 2, 3, 4]


# ---------------------------------------------------------------------------
# Scenario grid: (name, num_commodities, instance builder)
# ---------------------------------------------------------------------------
def _random_requests(metric, num_commodities: int, num_requests: int, rng) -> RequestSequence:
    """Uniform random requests over the given metric's points."""
    requests = []
    for index in range(num_requests):
        point = int(rng.integers(0, metric.num_points))
        size = int(rng.integers(1, num_commodities + 1))
        commodities = rng.choice(num_commodities, size=size, replace=False)
        requests.append(
            Request(index=index, point=point, commodities=frozenset(int(e) for e in commodities))
        )
    return RequestSequence(requests)


def _instance_on(metric, num_commodities: int, seed: int, *, scaled_costs: bool = False):
    rng = ensure_rng(seed)
    cost = PowerCost(num_commodities, 1.0, scale=0.5)
    if scaled_costs:
        # Non-uniform per-point opening costs exercise multi-class behaviour
        # (uniform PowerCost collapses to a single power-of-two class).
        scales = rng.uniform(0.5, 8.0, size=metric.num_points)
        cost = PerPointScaledCost(cost, scales)
    requests = _random_requests(metric, num_commodities, 25, rng)
    return Instance(
        metric, cost, requests, commodities=CommodityUniverse(num_commodities)
    )


def _euclidean_single(seed: int) -> Instance:
    return _instance_on(
        random_euclidean_metric(40, rng=seed), 1, seed, scaled_costs=True
    )


def _line_single(seed: int) -> Instance:
    return _instance_on(random_line_metric(32, rng=seed), 1, seed, scaled_costs=True)


def _clustered_multi(seed: int) -> Instance:
    return clustered_workload(
        num_requests=25, num_commodities=6, num_clusters=3, rng=seed
    ).instance


def _grid_multi(seed: int) -> Instance:
    return _instance_on(GridMetric.full_grid(6, 6), 5, seed, scaled_costs=True)


def _tree_multi(seed: int) -> Instance:
    return _instance_on(random_tree_metric(30, rng=seed), 4, seed, scaled_costs=True)


def _graph_matrix_multi(seed: int) -> Instance:
    # Shortest-path matrix rewrapped as an explicit matrix metric: exercises
    # the column-slice path of distances_to on a (potentially) only
    # approximately symmetric stored matrix.
    graph = random_graph_metric(28, rng=seed)
    return _instance_on(ExplicitMetric(graph.pairwise_matrix()), 4, seed, scaled_costs=True)


def _single_point_multi(seed: int) -> Instance:
    # The Theorem-2 degenerate space: all distances vanish, only facility
    # configuration decisions matter.
    return _instance_on(SinglePointMetric(), 6, seed)


def _uniform_euclidean_multi(seed: int) -> Instance:
    return uniform_workload(
        num_requests=25, num_commodities=5, num_points=36, rng=seed
    ).instance


SCENARIOS: List[Tuple[str, int, Callable[[int], Instance]]] = [
    ("euclidean-single", 1, _euclidean_single),
    ("line-single", 1, _line_single),
    ("clustered-euclidean", 6, _clustered_multi),
    ("grid-l1", 5, _grid_multi),
    ("tree", 4, _tree_multi),
    ("graph-matrix", 4, _graph_matrix_multi),
    ("single-point", 6, _single_point_multi),
    ("uniform-euclidean", 5, _uniform_euclidean_multi),
]

#: name -> (factory taking use_accel, single_commodity_only)
ALGORITHMS: Dict[str, Tuple[Callable[[bool], OnlineAlgorithm], bool]] = {
    "meyerson-ofl": (lambda ua: MeyersonOFLAlgorithm(use_accel=ua), True),
    "fotakis-ofl": (lambda ua: FotakisOFLAlgorithm(use_accel=ua), True),
    "pd-omflp": (lambda ua: PDOMFLPAlgorithm(use_accel=ua), False),
    "rand-omflp": (lambda ua: RandOMFLPAlgorithm(use_accel=ua), False),
    "per-commodity-fotakis": (lambda ua: PerCommodityAlgorithm("fotakis", use_accel=ua), False),
    "per-commodity-meyerson": (lambda ua: PerCommodityAlgorithm("meyerson", use_accel=ua), False),
}

CASES = [
    pytest.param(algorithm_name, scenario_name, seed, id=f"{algorithm_name}-{scenario_name}-s{seed}")
    for algorithm_name, (_, single_only) in ALGORITHMS.items()
    for scenario_name, num_commodities, _ in SCENARIOS
    if not (single_only and num_commodities != 1)
    for seed in SEEDS
]


# ---------------------------------------------------------------------------
# Fingerprinting one run
# ---------------------------------------------------------------------------
def _facility_sequence(result: OnlineResult) -> List[Tuple[int, int, Tuple[int, ...], float]]:
    """(id, point, configuration, opening cost) in opening order."""
    return [
        (f.id, f.point, tuple(sorted(f.configuration)), f.opening_cost)
        for f in result.solution.facilities
    ]


def _assignment_trace(result: OnlineResult) -> List[Tuple[int, Tuple[Tuple[int, int], ...]]]:
    """(request index, sorted (commodity, facility id) pairs) per request."""
    return [
        (a.request_index, tuple(sorted(a.facility_of_commodity.items())))
        for a in result.solution.assignments
    ]


def _per_request_connection_costs(result: OnlineResult) -> List[float]:
    return [
        event.connection_cost
        for event in result.trace.events
        if type(event).__name__ == "RequestAssignedEvent"
    ]


def _run(algorithm_name: str, scenario_name: str, seed: int, use_accel: bool) -> OnlineResult:
    factory, _ = ALGORITHMS[algorithm_name]
    builder = next(b for name, _, b in SCENARIOS if name == scenario_name)
    instance = builder(seed)
    return run_online(
        factory(use_accel), instance, rng=seed, trace=True, use_accel=use_accel
    )


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("algorithm_name,scenario_name,seed", CASES)
def test_fast_path_is_bit_identical_to_reference(algorithm_name, scenario_name, seed):
    reference = _run(algorithm_name, scenario_name, seed, use_accel=False)
    fast = _run(algorithm_name, scenario_name, seed, use_accel=True)

    # Exact cost equality — bitwise, not approximate.
    assert fast.total_cost == reference.total_cost
    assert fast.opening_cost == reference.opening_cost
    assert fast.connection_cost == reference.connection_cost

    # Identical facility-opening sequence.
    assert _facility_sequence(fast) == _facility_sequence(reference)

    # Identical assignment trace (commodity -> facility id per request) and
    # identical per-request connection costs.
    assert _assignment_trace(fast) == _assignment_trace(reference)
    assert _per_request_connection_costs(fast) == _per_request_connection_costs(reference)


def test_streaming_session_matches_batch_fast_path():
    """The accel caches thread through OnlineSession identically to batch."""
    from repro.api.session import OnlineSession

    instance = _clustered_multi(7)
    batch = run_online(PDOMFLPAlgorithm(), instance, use_accel=True)
    session = OnlineSession(
        PDOMFLPAlgorithm(),
        instance.metric,
        instance.cost_function,
        commodities=instance.commodities,
        use_accel=True,
        instance=instance,
    )
    for request in instance.requests:
        session.submit(request.point, request.commodities)
    record = session.finalize()
    assert record.total_cost == batch.total_cost
    assert _facility_sequence(record.source) == _facility_sequence(batch)


@pytest.mark.parametrize("seed", SEEDS)
def test_meyerson_budget_override_equivalence(seed):
    """SingleCommodityMeyerson.decide with an explicit budget (the RAND-OMFLP
    entry point) is bit-identical between the fast and reference helper."""
    from repro.algorithms.online.meyerson_ofl import SingleCommodityMeyerson

    rng = ensure_rng(seed)
    metric = random_euclidean_metric(30, rng=seed)
    costs = rng.uniform(0.25, 4.0, size=metric.num_points)
    reference = SingleCommodityMeyerson(metric, costs, use_accel=False)
    fast = SingleCommodityMeyerson(metric, costs, use_accel=True)
    rng_ref, rng_fast = ensure_rng(seed + 1), ensure_rng(seed + 1)
    for _ in range(40):
        point = int(rng.integers(0, metric.num_points))
        budget = float(rng.uniform(0.0, 2.0)) if rng.uniform() < 0.5 else None
        out_ref = reference.decide(point, rng_ref, budget=budget)
        out_fast = fast.decide(point, rng_fast, budget=budget)
        assert out_fast == out_ref
    assert fast.facility_points == reference.facility_points
