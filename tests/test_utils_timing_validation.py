"""Unit tests for repro.utils.timing and repro.utils.validation."""

import time

import pytest

from repro.utils.timing import Stopwatch, TimingRecord
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)


class TestStopwatch:
    def test_measure_accumulates(self):
        watch = Stopwatch()
        with watch.measure("phase"):
            time.sleep(0.001)
        with watch.measure("phase"):
            pass
        record = watch.record("phase")
        assert record.calls == 2
        assert record.total_seconds > 0
        assert record.mean_seconds == pytest.approx(record.total_seconds / 2)

    def test_total_and_summary(self):
        watch = Stopwatch()
        with watch.measure("a"):
            pass
        with watch.measure("b"):
            pass
        assert watch.total_seconds() >= 0
        summary = watch.summary()
        assert "a:" in summary and "b:" in summary
        assert set(watch.records().keys()) == {"a", "b"}

    def test_timing_record_rejects_negative(self):
        record = TimingRecord("x")
        with pytest.raises(ValueError):
            record.add(-1.0)

    def test_empty_record_mean(self):
        assert TimingRecord("x").mean_seconds == 0.0


class TestValidation:
    def test_check_nonnegative(self):
        assert check_nonnegative(0.0, "v") == 0.0
        assert check_nonnegative(2.5, "v") == 2.5
        with pytest.raises(ValueError, match="v"):
            check_nonnegative(-1.0, "v")

    def test_check_positive(self):
        assert check_positive(0.1, "v") == 0.1
        with pytest.raises(ValueError):
            check_positive(0.0, "v")

    def test_check_probability(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.01, "p")
        with pytest.raises(ValueError):
            check_probability(-0.01, "p")

    def test_check_finite(self):
        with pytest.raises(ValueError):
            check_finite(float("inf"), "v")
        with pytest.raises(ValueError):
            check_nonnegative(float("nan"), "v")

    def test_check_in_range(self):
        assert check_in_range(0.5, "v", 0.0, 1.0) == 0.5
        with pytest.raises(ValueError):
            check_in_range(1.5, "v", 0.0, 1.0)
        with pytest.raises(ValueError):
            check_in_range(0.0, "v", 0.0, 1.0, low_inclusive=False)
        with pytest.raises(ValueError):
            check_in_range(1.0, "v", 0.0, 1.0, high_inclusive=False)
        assert check_in_range(2.0, "v", low=None, high=3.0) == 2.0
