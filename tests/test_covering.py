"""Tests for c-ordered covering (Definition 9, Lemmas 10-12) and set cover."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.covering import (
    OrderedCoveringInstance,
    SetCoverInstance,
    cover_ordered_instance,
    greedy_set_cover,
    random_ordered_instance,
)
from repro.exceptions import InvalidInstanceError
from repro.utils.maths import harmonic_number


class TestOrderedCoveringInstance:
    def test_definition_accessors(self):
        instance = OrderedCoveringInstance(
            c=2.0,
            b_sets=(frozenset(), frozenset(), frozenset({0})),
        )
        assert instance.num_elements == 3
        assert instance.a_set(2) == frozenset({1})
        assert instance.singleton_weight(2) == pytest.approx(1.0)
        assert instance.block_weight() == 2.0
        assert instance.harmonic_bound() == pytest.approx(2 * 2.0 * harmonic_number(3))

    def test_chain_property_enforced(self):
        with pytest.raises(InvalidInstanceError):
            OrderedCoveringInstance(c=1.0, b_sets=(frozenset(), frozenset({0}), frozenset()))

    def test_b_subset_of_prefix_enforced(self):
        with pytest.raises(InvalidInstanceError):
            OrderedCoveringInstance(c=1.0, b_sets=(frozenset({3}),))

    def test_c_at_least_one(self):
        with pytest.raises(InvalidInstanceError):
            OrderedCoveringInstance(c=0.5, b_sets=(frozenset(),))


class TestCoverConstruction:
    def test_empty_instance(self):
        solution = cover_ordered_instance(OrderedCoveringInstance(c=1.0, b_sets=()))
        assert solution.total_weight == 0.0
        assert solution.is_cover_of(0)

    def test_single_element(self):
        instance = OrderedCoveringInstance(c=1.0, b_sets=(frozenset(),))
        solution = cover_ordered_instance(instance)
        assert solution.is_cover_of(1)
        assert solution.total_weight <= instance.harmonic_bound() + 1e-12

    def test_all_empty_b_sets_uses_one_block_set(self):
        # With B_i empty for all i, the set {n} ∪ A_n covers everything at weight c.
        instance = OrderedCoveringInstance(c=1.0, b_sets=(frozenset(),) * 6)
        solution = cover_ordered_instance(instance)
        assert solution.is_cover_of(6)
        assert solution.total_weight == pytest.approx(1.0)

    def test_full_chain_uses_singletons(self):
        # B_i = {0, ..., i-1}: every element copes nothing; singletons cost c/(|B_i|+1).
        b_sets = tuple(frozenset(range(i)) for i in range(5))
        instance = OrderedCoveringInstance(c=1.0, b_sets=b_sets)
        solution = cover_ordered_instance(instance)
        assert solution.is_cover_of(5)
        expected = sum(1.0 / (i + 1) for i in range(5))
        assert solution.total_weight == pytest.approx(expected)
        assert solution.total_weight <= instance.harmonic_bound() + 1e-12

    def test_random_instance_generator_valid(self):
        instance = random_ordered_instance(50, c=3.0, growth_probability=0.4, rng=0)
        assert instance.num_elements == 50
        assert instance.c == 3.0
        # Chain property holds by construction; re-validate through the constructor.
        OrderedCoveringInstance(c=instance.c, b_sets=instance.b_sets)

    def test_negative_length_rejected(self):
        with pytest.raises(InvalidInstanceError):
            random_ordered_instance(-1)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=120),
    density=st.floats(min_value=0.0, max_value=1.0),
    c=st.floats(min_value=1.0, max_value=10.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_lemma12_bound_holds(n, density, c, seed):
    """Property (Lemma 12): the constructive cover weighs at most 2 c H_n."""
    instance = random_ordered_instance(n, c=c, growth_probability=density, rng=seed)
    solution = cover_ordered_instance(instance)
    assert solution.is_cover_of(n)
    assert solution.total_weight <= instance.harmonic_bound() + 1e-9


class TestSetCover:
    def test_greedy_cover(self):
        instance = SetCoverInstance(
            universe=frozenset({1, 2, 3, 4}),
            sets={"a": frozenset({1, 2}), "b": frozenset({3}), "c": frozenset({3, 4}), "d": frozenset({1, 2, 3, 4})},
            weights={"a": 1.0, "b": 1.0, "c": 1.0, "d": 10.0},
        )
        chosen, weight = greedy_set_cover(instance)
        covered = frozenset().union(*(instance.sets[k] for k in chosen))
        assert covered == instance.universe
        assert weight == pytest.approx(2.0)

    def test_uncoverable_universe_rejected(self):
        with pytest.raises(InvalidInstanceError):
            SetCoverInstance(
                universe=frozenset({1, 2}),
                sets={"a": frozenset({1})},
                weights={"a": 1.0},
            )

    def test_missing_weight_rejected(self):
        with pytest.raises(InvalidInstanceError):
            SetCoverInstance(
                universe=frozenset({1}), sets={"a": frozenset({1})}, weights={}
            )

    def test_greedy_bound_helper(self):
        instance = SetCoverInstance(
            universe=frozenset({1, 2, 3}),
            sets={"a": frozenset({1, 2, 3})},
            weights={"a": 2.0},
        )
        assert instance.greedy_bound(2.0) == pytest.approx(2.0 * harmonic_number(3))
