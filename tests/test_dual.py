"""Tests for dual variables, feasibility checking and weak-duality bounds."""

import numpy as np
import pytest

from repro.algorithms.base import run_online
from repro.algorithms.offline.brute_force import BruteForceSolver
from repro.algorithms.online.pd_omflp import PDOMFLPAlgorithm
from repro.dual import (
    DualVariableStore,
    check_dual_feasibility,
    max_feasible_scale,
    paper_scaling_factor,
    weak_duality_lower_bound,
)
from repro.exceptions import AlgorithmError
from repro.utils.maths import harmonic_number


class TestDualVariableStore:
    def test_set_get_total(self):
        store = DualVariableStore(3)
        store.set(0, 1, 2.5)
        store.set(1, 0, 1.0)
        assert store.get(0, 1) == 2.5
        assert store.get(5, 2) == 0.0
        assert store.total() == pytest.approx(3.5)
        assert store.request_total(0, [0, 1, 2]) == pytest.approx(2.5)
        assert len(store) == 2

    def test_write_once_semantics(self):
        store = DualVariableStore(2)
        store.set(0, 0, 1.0)
        store.set(0, 0, 1.0)  # same value is fine
        with pytest.raises(AlgorithmError):
            store.set(0, 0, 2.0)

    def test_validation(self):
        with pytest.raises(AlgorithmError):
            DualVariableStore(0)
        store = DualVariableStore(2)
        with pytest.raises(AlgorithmError):
            store.set(0, 0, -1.0)
        with pytest.raises(AlgorithmError):
            store.set(0, 5, 1.0)

    def test_dense_matrix(self):
        store = DualVariableStore(3)
        store.set(0, 2, 1.5)
        store.set(2, 0, 0.5)
        matrix = store.as_dense_matrix(3)
        assert matrix.shape == (3, 3)
        assert matrix[0, 2] == 1.5
        assert matrix[2, 0] == 0.5
        assert matrix.sum() == pytest.approx(2.0)
        # Rows beyond the requested count are dropped.
        assert store.as_dense_matrix(1).sum() == pytest.approx(1.5)


class TestPaperScalingFactor:
    def test_formula(self):
        gamma = paper_scaling_factor(4, 10)
        assert gamma == pytest.approx(1.0 / (5.0 * 2.0 * harmonic_number(10)))

    def test_degenerate_inputs(self):
        assert paper_scaling_factor(4, 0) == 1.0
        with pytest.raises(ValueError):
            paper_scaling_factor(0, 5)


class TestFeasibilityChecks:
    def test_zero_duals_always_feasible(self, tiny_instance):
        duals = DualVariableStore(tiny_instance.num_commodities)
        report = check_dual_feasibility(tiny_instance, duals, scale=100.0)
        assert report.feasible
        assert report.worst_ratio == 0.0
        assert report.exhaustive
        assert max_feasible_scale(tiny_instance, duals) == float("inf")

    def test_huge_duals_are_infeasible(self, tiny_instance):
        duals = DualVariableStore(tiny_instance.num_commodities)
        for request in tiny_instance.requests:
            for commodity in request.commodities:
                duals.set(request.index, commodity, 100.0)
        report = check_dual_feasibility(tiny_instance, duals, scale=1.0)
        assert not report.feasible
        assert report.violations
        assert report.worst_ratio > 1.0

    def test_pd_duals_feasible_at_paper_gamma(self, tiny_instance):
        result = run_online(PDOMFLPAlgorithm(), tiny_instance)
        duals = result.duals
        gamma = paper_scaling_factor(
            tiny_instance.num_commodities, tiny_instance.num_requests
        )
        report = check_dual_feasibility(tiny_instance, duals, scale=gamma)
        assert report.feasible

    def test_max_feasible_scale_is_a_boundary(self, tiny_instance):
        result = run_online(PDOMFLPAlgorithm(), tiny_instance)
        duals = result.duals
        scale = max_feasible_scale(tiny_instance, duals)
        assert np.isfinite(scale) and scale > 0
        assert check_dual_feasibility(tiny_instance, duals, scale=scale * 0.999).feasible
        assert not check_dual_feasibility(tiny_instance, duals, scale=scale * 1.01).feasible


class TestWeakDuality:
    def test_bound_below_opt(self, tiny_instance):
        result = run_online(PDOMFLPAlgorithm(), tiny_instance)
        opt = BruteForceSolver().solve(tiny_instance).total_cost
        bound = weak_duality_lower_bound(tiny_instance, result.duals)
        assert 0 < bound <= opt + 1e-9

    def test_paper_gamma_bound_below_opt(self, tiny_instance):
        result = run_online(PDOMFLPAlgorithm(), tiny_instance)
        opt = BruteForceSolver().solve(tiny_instance).total_cost
        bound = weak_duality_lower_bound(
            tiny_instance, result.duals, use_empirical_scale=False
        )
        assert 0 <= bound <= opt + 1e-9

    def test_zero_duals_bound_zero(self, tiny_instance):
        duals = DualVariableStore(tiny_instance.num_commodities)
        assert weak_duality_lower_bound(tiny_instance, duals) == 0.0
