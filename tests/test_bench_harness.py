"""The shared benchmark envelope: schema validation of committed artifacts.

Every ``benchmarks/bench_*.py`` that writes a committed ``BENCH_*.json``
wraps its measurements in the ``benchmarks/_harness.py`` envelope
(``format``/``version``/``bench``/``command``/``host``/``params``/
``results``).  These tests validate the harness itself and every committed
artifact against it, so a benchmark that drifts off the shared schema (or a
stale artifact from before a schema change) fails CI instead of silently
confusing tooling.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_harness", REPO_ROOT / "benchmarks" / "_harness.py"
)
_harness = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_harness)

COMMITTED = sorted(REPO_ROOT.glob("BENCH_*.json"))


def test_committed_bench_artifacts_exist():
    names = [path.name for path in COMMITTED]
    assert {
        "BENCH_engine.json",
        "BENCH_kernels.json",
        "BENCH_scenarios.json",
        "BENCH_telemetry.json",
        "BENCH_trace.json",
    } <= set(names)


@pytest.mark.parametrize("path", COMMITTED, ids=lambda p: p.name)
def test_committed_bench_artifact_matches_envelope(path):
    payload = _harness.validate(json.loads(path.read_text()))
    # The command documents how to regenerate this exact artifact.
    assert "benchmarks/bench_" in payload["command"]
    assert payload["command"].split()[-1] == path.name
    assert payload["results"], "results must not be empty"
    assert isinstance(payload["host"]["cpu_count"], int)


def test_overhead_benchmarks_stayed_within_budget():
    """The committed overhead artifacts carry their own acceptance verdicts."""
    for name in ("BENCH_telemetry.json", "BENCH_trace.json"):
        results = json.loads((REPO_ROOT / name).read_text())["results"]
        assert results["within_budget"] is True
        assert results["overhead_fraction"] < results["overhead_budget"]


def test_trace_artifact_pins_bounded_retention():
    results = json.loads((REPO_ROOT / "BENCH_trace.json").read_text())["results"]
    checks = results["trace_checks"]
    assert checks["retained_bounded_by_buffer"] is True
    params = json.loads((REPO_ROOT / "BENCH_trace.json").read_text())["params"]
    assert checks["spans_retained"] <= params["buffer_size"]


def test_envelope_helpers_and_validation_errors():
    payload = _harness.envelope(
        "demo", command="python benchmarks/bench_demo.py --json BENCH_demo.json",
        params={"n": 1}, results={"ok": True},
    )
    assert _harness.validate(json.loads(json.dumps(payload))) == payload
    host = _harness.host_info()
    assert host["python"] == sys.version.split()[0]

    with pytest.raises(ValueError, match="JSON object"):
        _harness.validate([])
    with pytest.raises(ValueError, match="format"):
        _harness.validate(dict(payload, format="other"))
    with pytest.raises(ValueError, match="version"):
        _harness.validate(dict(payload, version=2))
    with pytest.raises(ValueError, match="'results'"):
        _harness.validate({k: v for k, v in payload.items() if k != "results"})
    broken = dict(payload, host={"python": "3"})
    with pytest.raises(ValueError, match="cpu_count"):
        _harness.validate(broken)
