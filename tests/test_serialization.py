"""Tests for JSON instance serialization."""

import json

import pytest

from repro.algorithms.base import run_online
from repro.algorithms.online.pd_omflp import PDOMFLPAlgorithm
from repro.core.serialization import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)
from repro.costs.count_based import AdversaryCost, ConstantCost, LinearCost, PowerCost
from repro.costs.general import WeightedConcaveCost
from repro.costs.hierarchical import HierarchicalCost
from repro.core.instance import Instance
from repro.core.requests import RequestSequence
from repro.exceptions import InvalidInstanceError
from repro.metric.factories import uniform_line_metric
from repro.workloads.uniform import uniform_workload


class TestRoundTrip:
    def test_costs_and_distances_preserved(self, small_instance):
        clone = instance_from_dict(instance_to_dict(small_instance))
        assert clone.num_requests == small_instance.num_requests
        assert clone.num_commodities == small_instance.num_commodities
        assert clone.num_points == small_instance.num_points
        # Distances and costs agree, so algorithm behaviour is identical.
        assert clone.metric.distance(0, 4) == pytest.approx(small_instance.metric.distance(0, 4))
        original = run_online(PDOMFLPAlgorithm(), small_instance)
        reloaded = run_online(PDOMFLPAlgorithm(), clone)
        assert reloaded.total_cost == pytest.approx(original.total_cost)

    @pytest.mark.parametrize(
        "cost",
        [
            PowerCost(3, 1.5, scale=2.0),
            LinearCost(3, scale=0.5),
            ConstantCost(3, scale=3.0),
            AdversaryCost(9),
            WeightedConcaveCost([1.0, 2.0, 3.0]),
            LinearCost(3, point_scales=[1.0, 2.0, 1.0, 4.0]),
        ],
    )
    def test_all_supported_cost_families(self, cost):
        metric = uniform_line_metric(4)
        requests = RequestSequence.from_tuples([(0, {0, 1}), (3, {2})])
        instance = Instance(metric, cost, requests, name="roundtrip")
        clone = instance_from_dict(instance_to_dict(instance))
        for point in range(4):
            assert clone.cost_function.cost(point, {0, 2}) == pytest.approx(
                cost.cost(point, {0, 2})
            )
            assert clone.cost_function.full_cost(point) == pytest.approx(cost.full_cost(point))

    def test_named_commodities_preserved(self):
        workload = uniform_workload(num_requests=5, num_commodities=3, num_points=4, rng=0)
        data = instance_to_dict(workload.instance)
        clone = instance_from_dict(data)
        assert clone.commodities.name_of(1) == workload.instance.commodities.name_of(1)

    def test_file_round_trip(self, small_instance, tmp_path):
        path = save_instance(small_instance, tmp_path / "nested" / "instance.json")
        assert path.exists()
        clone = load_instance(path)
        assert clone.name == small_instance.name
        assert clone.num_requests == small_instance.num_requests
        # The file is plain JSON.
        parsed = json.loads(path.read_text())
        assert parsed["format_version"] == 1


class TestErrors:
    def test_unsupported_cost_function(self):
        metric = uniform_line_metric(3)
        cost = HierarchicalCost.balanced(4)
        instance = Instance(metric, cost, RequestSequence.from_tuples([(0, {0})]))
        with pytest.raises(InvalidInstanceError):
            instance_to_dict(instance)

    def test_unknown_format_version(self, small_instance):
        data = instance_to_dict(small_instance)
        data["format_version"] = 99
        with pytest.raises(InvalidInstanceError):
            instance_from_dict(data)

    def test_unknown_cost_kind(self, small_instance):
        data = instance_to_dict(small_instance)
        data["cost_function"] = {"kind": "mystery"}
        with pytest.raises(InvalidInstanceError):
            instance_from_dict(data)

    def test_unknown_metric_kind(self, small_instance):
        data = instance_to_dict(small_instance)
        data["metric"]["kind"] = "implicit"
        with pytest.raises(InvalidInstanceError):
            instance_from_dict(data)
