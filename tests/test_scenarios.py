"""The scenario-engine harness: determinism, composition, and wiring.

Pins the three load-bearing contracts of :mod:`repro.scenarios` for **every
registered scenario kind** over multiple seeds (the acceptance criteria of
the scenario subsystem):

* *batch-size invariance* — the emitted request sequence is exact-``==``
  regardless of how consumption is batched (hypothesis-driven);
* *stream == realize* — the eager materialization is bit-identical to the
  streamed path;
* *snapshot/resume* — a mid-stream ``state_dict`` round-tripped through
  strict JSON resumes bit-identically on a freshly opened stream.

Plus: strict kwarg/range validation (every bad parameter names its key),
combinator semantics, ScenarioSession streamed == batch equivalence,
RunSpec/run()/engine/service wiring, and the ``advance`` wire op.
"""

from __future__ import annotations

import json
from typing import List

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.base import run_online
from repro.api.run import run, run_grid
from repro.api.spec import RunSpec
from repro.engine import ExperimentPlan, ResultStore, run_plan
from repro.exceptions import (
    ExperimentError,
    ReproError,
    ScenarioError,
    ServiceError,
)
from repro.parallel.pool import ParallelConfig
from repro.scenarios import (
    EXAMPLE_SPECS,
    SCENARIOS,
    ScenarioSession,
    derive_session_seeds,
    scenario_from_dict,
)
from repro.scenarios.catalog import MODELS, catalog
from repro.service import SessionManager
from repro.service.protocol import ServiceProtocol
from repro.utils.rng import ensure_rng

SEEDS = [0, 1, 2]

ALL_KINDS = sorted(EXAMPLE_SPECS)


def _drain(stream, batch_size: int = 1_000_000) -> List:
    out = []
    while True:
        batch = stream.take(batch_size)
        if not batch:
            return out
        out.extend(batch)


# ---------------------------------------------------------------------------
# Registry and declarative round-trip
# ---------------------------------------------------------------------------
def test_every_registered_kind_has_an_example_and_model_text():
    assert sorted(SCENARIOS.names()) == ALL_KINDS
    assert sorted(MODELS) == ALL_KINDS


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_to_dict_round_trip_is_stable(kind):
    scenario = scenario_from_dict(EXAMPLE_SPECS[kind])
    data = scenario.to_dict()
    json.dumps(data)  # plain JSON
    again = scenario_from_dict(json.loads(json.dumps(data)))
    assert again.to_dict() == data


def test_catalog_covers_every_kind():
    rows = catalog()
    assert [row["kind"] for row in rows] == SCENARIOS.names()
    for row in rows:
        assert row["models"]
        assert row["summary"]


def test_scenario_from_dict_rejects_garbage():
    with pytest.raises(ScenarioError, match="'kind'"):
        scenario_from_dict({"num_requests": 5})
    with pytest.raises(ScenarioError, match="mappings"):
        scenario_from_dict(42)


# ---------------------------------------------------------------------------
# Determinism: batch invariance, stream == realize, snapshot/resume
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_stream_equals_realize_and_batch_invariance(kind, seed):
    scenario = scenario_from_dict(EXAMPLE_SPECS[kind])
    whole = _drain(scenario.open(seed))
    assert len(whole) == scenario.length
    # Batch-size invariance (two very different batchings).
    assert _drain(scenario.open(seed), batch_size=1) == whole
    assert _drain(scenario.open(seed), batch_size=7) == whole
    # Eager materialization is the same requests.
    workload = scenario.realize(seed)
    realized = [(r.point, r.commodities) for r in workload.instance.requests]
    assert realized == whole


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_snapshot_restore_mid_stream_is_bit_identical(kind, seed):
    scenario = scenario_from_dict(EXAMPLE_SPECS[kind])
    split = max(scenario.length // 3, 1)
    stream = scenario.open(seed)
    head = stream.take(split)
    state = json.loads(json.dumps(stream.state_dict()))  # strict-JSON trip
    tail_direct = _drain(stream)

    resumed = scenario.open(seed)
    resumed.load_state_dict(state)
    assert resumed.position == split
    tail_resumed = _drain(resumed)
    assert tail_resumed == tail_direct
    assert head + tail_direct == _drain(scenario.open(seed))


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    batch_size=st.integers(min_value=1, max_value=97),
    split=st.integers(min_value=1, max_value=47),
)
def test_property_nested_mixture_determinism(seed, batch_size, split):
    """Hypothesis sweep on a nested combinator: same seed ⇒ identical stream
    across batch sizes, and a mid-stream snapshot resumes bit-identically."""
    scenario = scenario_from_dict(
        {
            "kind": "mixture",
            "weights": [2.0, 1.0],
            "children": [
                {"kind": "burst", "num_requests": 32, "num_commodities": 5,
                 "num_points": 16, "num_hotspots": 2, "burst_size_mean": 4.0},
                {"kind": "commodity-overlay", "add": [0], "add_probability": 0.5,
                 "child": {"kind": "drift", "num_requests": 16,
                           "num_commodities": 5, "num_points": 16}},
            ],
        }
    )
    reference = _drain(scenario.open(seed))
    assert _drain(scenario.open(seed), batch_size=batch_size) == reference

    stream = scenario.open(seed)
    head = stream.take(split)
    state = json.loads(json.dumps(stream.state_dict()))
    resumed = scenario.open(seed)
    resumed.load_state_dict(state)
    assert head + _drain(resumed) == reference


def test_unbounded_scenario_streams_and_refuses_blind_realize():
    scenario = scenario_from_dict({"kind": "uniform", "num_commodities": 4})
    assert scenario.length is None
    stream = scenario.open(0)
    first = stream.take(100)
    assert len(first) == 100 and not stream.exhausted
    with pytest.raises(ScenarioError, match="unbounded"):
        scenario.realize(0)
    workload = scenario.realize(0, limit=50)
    assert [(r.point, r.commodities) for r in workload.instance.requests] == first[:50]


# ---------------------------------------------------------------------------
# Strict parameter validation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_unknown_scenario_parameter_names_the_key(kind):
    spec = dict(EXAMPLE_SPECS[kind])
    spec["definitely_not_a_parameter"] = 1
    with pytest.raises(ReproError, match="definitely_not_a_parameter"):
        scenario_from_dict(spec)


@pytest.mark.parametrize(
    "spec, key",
    [
        ({"kind": "zipf", "num_requests": 0, "num_commodities": 4}, "num_requests"),
        ({"kind": "zipf", "num_requests": 5, "num_commodities": 4, "zipf_alpha": -1}, "zipf_alpha"),
        ({"kind": "uniform", "num_requests": 5, "num_commodities": 4, "metric_kind": "moebius"}, "metric_kind"),
        ({"kind": "uniform", "num_requests": 5, "num_commodities": 4, "min_demand": 9}, "min_demand"),
        ({"kind": "burst", "num_requests": 5, "num_commodities": 4, "num_hotspots": 99}, "num_hotspots"),
        ({"kind": "burst", "num_requests": 5, "num_commodities": 4, "background_probability": 1.5}, "background_probability"),
        ({"kind": "single-point", "num_commodities": 4, "subset_size": 9}, "subset_size"),
        ({"kind": "drift", "num_requests": 5, "num_commodities": 4, "window": 40}, "window"),
        ({"kind": "mixture", "children": [EXAMPLE_SPECS["zipf"]], "weights": [1, 2]}, "weights"),
        ({"kind": "interleave", "children": [EXAMPLE_SPECS["zipf"]], "block_size": 0}, "block_size"),
        ({"kind": "commodity-overlay", "child": EXAMPLE_SPECS["zipf"], "add_probability": 7}, "add_probability"),
        ({"kind": "replay", "requests": [], "metric": {"kind": "uniform-line", "num_points": 4}, "cost": {"kind": "power", "num_commodities": 2, "exponent_x": 1.0}}, "requests"),
    ],
)
def test_out_of_range_scenario_parameters_name_the_key(spec, key):
    with pytest.raises(ReproError, match=key):
        scenario_from_dict(spec)


def test_unknown_workload_parameter_raises_repro_error_naming_key():
    spec = RunSpec.from_dict(
        {
            "algorithm": "pd-omflp",
            "workload": {"kind": "uniform", "num_requests": 5,
                         "num_commodities": 4, "num_comodities": 4},
            "seed": 0,
        }
    )
    with pytest.raises(ReproError, match="num_comodities"):
        spec.build_instance()


def test_permute_of_unbounded_child_is_rejected():
    with pytest.raises(ScenarioError, match="unbounded"):
        scenario_from_dict(
            {"kind": "permute", "child": {"kind": "uniform", "num_commodities": 4}}
        )


def test_concat_rejects_unbounded_non_final_child():
    with pytest.raises(ScenarioError, match="unbounded"):
        scenario_from_dict(
            {
                "kind": "concat",
                "children": [
                    {"kind": "uniform", "num_commodities": 4},
                    {"kind": "uniform", "num_requests": 5, "num_commodities": 4},
                ],
            }
        )


def test_mixture_rejects_statically_incompatible_children():
    with pytest.raises(ScenarioError, match="must agree"):
        scenario_from_dict(
            {
                "kind": "mixture",
                "children": [
                    {"kind": "zipf", "num_requests": 8, "num_commodities": 4},
                    {"kind": "single-point", "num_commodities": 4},
                ],
            }
        )


# ---------------------------------------------------------------------------
# Combinator semantics
# ---------------------------------------------------------------------------
def test_concat_emits_children_back_to_back():
    child_a = {"kind": "uniform", "num_requests": 10, "num_commodities": 4, "num_points": 12}
    child_b = {"kind": "zipf", "num_requests": 7, "num_commodities": 4, "num_points": 12}
    concat = scenario_from_dict({"kind": "concat", "children": [child_a, child_b]})
    items = _drain(concat.open(3))
    assert len(items) == 17
    # The first child's emissions are reproducible from its own child seed.
    from repro.utils.rng import spawn_child_seeds

    seeds = spawn_child_seeds(3, 3)
    first = _drain(scenario_from_dict(child_a).open(seeds[1]))
    assert items[:10] == first


def test_interleave_round_robin_blocks():
    child = {"kind": "uniform", "num_requests": 6, "num_commodities": 4, "num_points": 12}
    inter = scenario_from_dict(
        {"kind": "interleave", "block_size": 2, "children": [child, dict(child)]}
    )
    from repro.utils.rng import spawn_child_seeds

    seeds = spawn_child_seeds(5, 3)
    a = _drain(scenario_from_dict(child).open(seeds[1]))
    b = _drain(scenario_from_dict(child).open(seeds[2]))
    expected = a[0:2] + b[0:2] + a[2:4] + b[2:4] + a[4:6] + b[4:6]
    assert _drain(inter.open(5)) == expected


def test_mixture_weights_bias_the_blend():
    mixture = scenario_from_dict(
        {
            "kind": "mixture",
            "weights": [9.0, 1.0],
            "num_requests": 400,
            "children": [
                {"kind": "uniform", "num_commodities": 2, "num_points": 8},
                {"kind": "uniform", "num_commodities": 2, "num_points": 8},
            ],
        }
    )
    stream = mixture.open(0)
    _drain(stream)
    first, second = stream._children
    assert first.position + second.position == 400
    assert first.position > 300  # 9:1 weights
    assert second.position > 0


def test_mixture_exhausted_child_renormalizes():
    mixture = scenario_from_dict(
        {
            "kind": "mixture",
            "children": [
                {"kind": "uniform", "num_requests": 3, "num_commodities": 2, "num_points": 8},
                {"kind": "uniform", "num_requests": 30, "num_commodities": 2, "num_points": 8},
            ],
        }
    )
    items = _drain(mixture.open(1))
    assert len(items) == 33  # every child request is eventually emitted


def test_permute_is_a_permutation_of_the_child():
    child = {"kind": "clustered", "num_requests": 30, "num_commodities": 5, "num_clusters": 3}
    permuted = scenario_from_dict({"kind": "permute", "child": child})
    items = _drain(permuted.open(4))
    from repro.utils.rng import spawn_child_seeds

    child_items = _drain(scenario_from_dict(child).open(spawn_child_seeds(4, 2)[1]))
    assert sorted(items) == sorted(child_items)
    assert items != child_items  # overwhelmingly likely for n=30


def test_arrival_order_sparse_first_sorts_by_demand_size():
    child = {"kind": "uniform", "num_requests": 40, "num_commodities": 6,
             "num_points": 12, "max_demand": 6}
    ordered = scenario_from_dict(
        {"kind": "arrival-order", "order": "sparse-first", "child": child}
    )
    sizes = [len(commodities) for _, commodities in _drain(ordered.open(0))]
    assert sizes == sorted(sizes)
    reversed_child = scenario_from_dict(
        {"kind": "arrival-order", "order": "reversed", "child": child}
    )
    from repro.utils.rng import spawn_child_seeds

    base = _drain(scenario_from_dict(child).open(spawn_child_seeds(0, 2)[1]))
    assert _drain(reversed_child.open(0)) == base[::-1]


def test_commodity_overlay_adds_and_remaps():
    child = {"kind": "uniform", "num_requests": 60, "num_commodities": 6,
             "num_points": 12, "min_demand": 1, "max_demand": 2}
    overlay = scenario_from_dict(
        {"kind": "commodity-overlay", "child": child, "add": [5],
         "add_probability": 1.0, "remap": {"5": 4}}
    )
    items = _drain(overlay.open(0))
    assert all(5 in commodities for _, commodities in items)
    remap_only = scenario_from_dict(
        {"kind": "commodity-overlay", "child": child, "remap": {"5": 4}}
    )
    assert all(5 not in commodities for _, commodities in _drain(remap_only.open(0)))


def test_replay_loops_its_trace():
    replayed = scenario_from_dict(EXAMPLE_SPECS["replay"])
    items = _drain(replayed.open(0))
    period = len(items) // EXAMPLE_SPECS["replay"]["loop"]
    assert items[:period] * EXAMPLE_SPECS["replay"]["loop"] == items


def test_replay_from_record_round_trips_through_run():
    base = {
        "algorithm": "pd-omflp",
        "metric": {"kind": "uniform-line", "num_points": 8},
        "cost": {"kind": "power", "num_commodities": 4, "exponent_x": 1.0},
        "requests": [[1, [0, 1]], [6, [2]], [2, [0, 3]]],
        "seed": 0,
    }
    record = run(base)
    from repro.scenarios import ReplayScenario

    replayed = ReplayScenario.from_record(record)
    items = _drain(replayed.open(0))
    assert items == [(1, frozenset({0, 1})), (6, frozenset({2})), (2, frozenset({0, 3}))]
    # Replaying against the same algorithm reproduces the run's cost.
    rerun = run({"algorithm": "pd-omflp", "scenario": replayed.to_dict(), "seed": 0})
    assert rerun.total_cost == record.total_cost


# ---------------------------------------------------------------------------
# ScenarioSession: streamed == batch, feedback, durability
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["pd-omflp", "rand-omflp", "per-commodity-meyerson"])
@pytest.mark.parametrize("kind", ["mixture", "burst", "drift", "clustered"])
def test_streamed_session_matches_batch_run_on_realized_instance(kind, algorithm):
    seed = 13
    spec = {"algorithm": algorithm, "scenario": EXAMPLE_SPECS[kind], "seed": seed}
    streamed = ScenarioSession(spec).run()

    scenario = scenario_from_dict(EXAMPLE_SPECS[kind])
    scenario_seed, algorithm_seed = derive_session_seeds(seed)
    instance = scenario.realize(scenario_seed).instance
    batch_algorithm = RunSpec.from_dict(spec).build_algorithm()
    batch = run_online(batch_algorithm, instance, rng=ensure_rng(algorithm_seed))
    assert streamed.total_cost == batch.total_cost
    assert streamed.opening_cost == batch.opening_cost
    assert streamed.connection_cost == batch.connection_cost
    assert streamed.num_facilities == batch.solution.num_facilities()


@pytest.mark.parametrize("seed", SEEDS)
def test_scenario_session_snapshot_restore_continues_bit_identically(seed):
    spec = {"algorithm": "rand-omflp", "scenario": EXAMPLE_SPECS["burst"], "seed": seed}
    reference = ScenarioSession(spec)
    reference_events = reference.advance()
    reference_record = reference.finalize()

    session = ScenarioSession(spec)
    head = session.advance(17)
    snapshot_json = session.snapshot().to_json()
    restored = ScenarioSession.restore(snapshot_json)
    assert restored.position == 17
    tail = restored.advance()
    events = [e.to_dict() for e in head + tail]
    assert events == [e.to_dict() for e in reference_events]
    assert restored.finalize().total_cost == reference_record.total_cost


def test_adaptive_scenario_reacts_to_feedback():
    spec = {
        "kind": "adaptive",
        "num_requests": 120,
        "num_commodities": 3,
        "num_points": 24,
        "exploration": 0.1,
    }
    with_feedback = ScenarioSession(
        {"algorithm": "pd-omflp", "scenario": spec, "seed": 0}
    )
    with_feedback.advance()
    fed_points = [r.point for r in with_feedback.session.state.processed_requests]
    # Without feedback the same seed explores uniformly.
    bare = [point for point, _ in _drain(scenario_from_dict(spec).open(
        derive_session_seeds(0)[0]))]
    assert fed_points != bare
    # The adaptive stream concentrates: fewer distinct points than uniform.
    assert len(set(fed_points)) < len(set(bare))


def test_seedless_scenario_session_refuses_to_snapshot():
    """Without a root seed the environment is fresh entropy: a restore would
    silently continue on a *different* random environment, so snapshot()
    must refuse instead."""
    session = ScenarioSession(
        {"algorithm": "pd-omflp", "scenario": EXAMPLE_SPECS["burst"]}
    )
    session.advance(5)  # running without a seed is fine...
    with pytest.raises(ScenarioError, match="seed"):
        session.snapshot()  # ...capturing a restorable snapshot is not


def test_cli_sample_typo_gets_did_you_mean():
    from repro.experiments.cli import _load_scenario_argument
    from repro.exceptions import UnknownComponentError

    with pytest.raises(UnknownComponentError, match="zipf"):
        _load_scenario_argument("zipff")


def test_unbounded_session_run_requires_max_requests():
    spec = {"algorithm": "pd-omflp",
            "scenario": {"kind": "uniform", "num_commodities": 3}, "seed": 0}
    session = ScenarioSession(spec)
    with pytest.raises(ScenarioError, match="max_requests"):
        session.run()
    record = ScenarioSession(spec).run(max_requests=40)
    assert record.num_requests == 40


# ---------------------------------------------------------------------------
# RunSpec / run() wiring
# ---------------------------------------------------------------------------
def test_runspec_scenario_round_trip_and_exclusivity():
    data = {"algorithm": "pd-omflp", "scenario": EXAMPLE_SPECS["mixture"], "seed": 2}
    spec = RunSpec.from_dict(data)
    assert spec.to_dict()["scenario"]["kind"] == "mixture"
    assert RunSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()
    with pytest.raises(ExperimentError, match="not both"):
        RunSpec.from_dict(
            {"algorithm": "pd-omflp", "scenario": EXAMPLE_SPECS["mixture"],
             "workload": {"kind": "uniform", "num_requests": 5, "num_commodities": 4}}
        )
    with pytest.raises(ExperimentError, match="not both"):
        RunSpec.from_dict(
            {"algorithm": "pd-omflp", "scenario": EXAMPLE_SPECS["mixture"],
             "metric": {"kind": "uniform-line", "num_points": 4}}
        )


def test_run_streams_online_scenario_and_is_reproducible():
    spec = {"algorithm": "pd-omflp", "scenario": EXAMPLE_SPECS["concat"], "seed": 5}
    first = run(spec)
    second = run(spec)
    assert first.kind == "online"
    assert first.num_requests == 48
    assert first.total_cost == second.total_cost
    assert first.spec["scenario"]["kind"] == "concat"


def test_run_realizes_offline_scenario():
    record = run({"algorithm": "greedy", "scenario": EXAMPLE_SPECS["clustered"], "seed": 5})
    assert record.kind == "offline"
    assert record.num_requests == 48


def test_legacy_workload_kinds_resolve_as_scenarios():
    for kind in ("uniform", "clustered", "zipf", "service-network"):
        record = run(
            {"algorithm": "pd-omflp", "scenario": EXAMPLE_SPECS[kind], "seed": 0}
        )
        assert record.num_requests == EXAMPLE_SPECS[kind]["num_requests"]


def test_normalized_resolves_nested_scenarios_and_flags_typos():
    spec = RunSpec.from_dict(
        {"algorithm": "pd-omflp", "scenario": EXAMPLE_SPECS["mixture"], "seed": 1}
    )
    normalized = spec.normalized()
    # Defaults materialized on nested children.
    child = normalized["scenario"]["children"][0]
    assert child["min_demand"] == 1
    typo = RunSpec.from_dict(
        {"algorithm": "pd-omflp",
         "scenario": {"kind": "zipf", "num_requests": 5, "num_commodities": 4,
                      "zipf_alfa": 1.0}}
    )
    with pytest.raises(ReproError, match="zipf_alfa"):
        typo.normalized()
    bad_algorithm = RunSpec.from_dict(
        {"algorithm": {"kind": "pd-omflp", "not_a_param": 1},
         "scenario": EXAMPLE_SPECS["zipf"]}
    )
    with pytest.raises(ReproError, match="not_a_param"):
        bad_algorithm.normalized()


def test_run_grid_sweeps_scenario_axes():
    records = run_grid(
        {"algorithm": "pd-omflp",
         "scenario": {"kind": "zipf", "num_requests": 12, "num_commodities": 4,
                      "num_points": 12},
         "seed": 0},
        [{"scenario.zipf_alpha": alpha} for alpha in (0.5, 1.5)],
    )
    assert len(records) == 2
    assert [r.spec["scenario"]["zipf_alpha"] for r in records] == [0.5, 1.5]


# ---------------------------------------------------------------------------
# Engine wiring: scenarios as case axes
# ---------------------------------------------------------------------------
def test_engine_plan_over_scenario_specs_with_store_reuse(tmp_path):
    cases = [
        {"spec": {"algorithm": "pd-omflp",
                  "scenario": {"kind": "burst", "num_requests": 16,
                               "num_commodities": 4, "num_points": 12,
                               "burst_size_mean": 4.0},
                  "seed": seed}}
        for seed in SEEDS
    ]
    def comparable(rows):
        # Wall-clock timing is the one legitimately nondeterministic column.
        return [{k: v for k, v in row.items() if k != "runtime_seconds"} for row in rows]

    plan = ExperimentPlan("scenario-grid", "run-spec", cases, seed=0)
    serial = run_plan(plan)
    store = ResultStore(tmp_path / "store")
    stored = run_plan(plan, store=store)
    assert comparable(stored.rows) == comparable(serial.rows)
    warm = run_plan(plan, store=store)
    assert warm.reused_count == len(plan)
    assert comparable(warm.rows) == comparable(serial.rows)
    pooled = run_plan(plan, config=ParallelConfig(workers=2, min_items_for_parallel=1))
    assert comparable(pooled.rows) == comparable(serial.rows)


# ---------------------------------------------------------------------------
# Service wiring: scenario-backed sessions, advance op, evict/resume
# ---------------------------------------------------------------------------
def _service_spec(seed=11):
    return {"algorithm": "rand-omflp", "scenario": EXAMPLE_SPECS["drift"], "seed": seed}


def test_service_scenario_session_advances_and_rejects_submit():
    manager = SessionManager()
    manager.create("s", _service_spec())
    status = manager.status("s")
    assert status["scenario"]["kind"] == "drift"
    events, exhausted = manager.advance("s", 10)
    assert len(events) == 10 and not exhausted
    with pytest.raises(ServiceError, match="advance"):
        manager.submit("s", 0, [0])
    remaining, exhausted = manager.advance("s")
    assert exhausted
    assert manager.status("s")["scenario"]["remaining"] == 0
    record = manager.finalize("s")
    assert record.num_requests == 48


def test_service_plain_session_rejects_advance():
    manager = SessionManager()
    manager.create(
        "plain",
        {"algorithm": "pd-omflp",
         "metric": {"kind": "uniform-line", "num_points": 8},
         "cost": {"kind": "power", "num_commodities": 4, "exponent_x": 1.0},
         "requests": [], "seed": 0},
    )
    with pytest.raises(ServiceError, match="submit"):
        manager.advance("plain", 1)


def test_service_scenario_eviction_resumes_generator_bit_identically(tmp_path):
    reference = SessionManager()
    reference.create("ref", _service_spec())
    reference_events, _ = reference.advance("ref")
    reference_record = reference.finalize("ref")

    manager = SessionManager(snapshot_dir=tmp_path)
    manager.create("s", _service_spec())
    head, _ = manager.advance("s", 20)
    manager.evict("s")
    assert manager.status("s").get("evicted")
    tail, exhausted = manager.advance("s")  # transparent reload from disk
    assert exhausted
    assert [e.to_dict() for e in head + tail] == [
        e.to_dict() for e in reference_events
    ]
    assert manager.finalize("s").total_cost == reference_record.total_cost


def test_protocol_advance_op_round_trip():
    protocol = ServiceProtocol(SessionManager())
    created = protocol.handle(
        {"op": "create", "name": "a",
         "spec": {"algorithm": "pd-omflp", "scenario": EXAMPLE_SPECS["mixture"],
                  "seed": 0}}
    )
    assert created["ok"], created
    partial = protocol.handle({"op": "advance", "name": "a", "count": 10})
    assert partial["served"] == 10 and not partial["exhausted"]
    rest = protocol.handle({"op": "advance", "name": "a"})
    assert rest["exhausted"] and rest["served"] == 38
    finalized = protocol.handle({"op": "finalize", "name": "a"})
    assert finalized["ok"]
    # Plain sessions still reject the op with a useful error.
    bad = protocol.handle({"op": "advance", "name": "missing"})
    assert not bad["ok"]
