"""Tests for the synthetic workload generators and arrival-order models."""

import numpy as np
import pytest

from repro.algorithms.base import run_online
from repro.algorithms.online.pd_omflp import PDOMFLPAlgorithm
from repro.costs.count_based import LinearCost
from repro.exceptions import InvalidInstanceError
from repro.workloads import (
    adversarial_order,
    clustered_workload,
    random_order,
    service_network_workload,
    uniform_workload,
    zipf_workload,
)


class TestUniformWorkload:
    def test_dimensions(self):
        workload = uniform_workload(num_requests=20, num_commodities=5, num_points=10, rng=0)
        instance = workload.instance
        assert instance.num_requests == 20
        assert instance.num_commodities == 5
        assert instance.num_points == 10
        assert workload.planted_specs is None
        assert workload.planted_solver() is None
        assert workload.describe()["workload"] == "uniform"

    def test_demand_bounds_respected(self):
        workload = uniform_workload(
            num_requests=30, num_commodities=6, num_points=8, min_demand=2, max_demand=3, rng=1
        )
        sizes = {r.num_commodities for r in workload.instance.requests}
        assert sizes <= {2, 3}

    def test_line_metric_kind(self):
        workload = uniform_workload(
            num_requests=5, num_commodities=2, num_points=6, metric_kind="line", rng=2
        )
        assert type(workload.instance.metric).__name__ == "LineMetric"

    def test_custom_cost_function(self):
        cost = LinearCost(3)
        workload = uniform_workload(
            num_requests=5, num_commodities=3, num_points=4, cost_function=cost, rng=3
        )
        assert workload.instance.cost_function is cost

    def test_deterministic_by_seed(self):
        a = uniform_workload(num_requests=10, num_commodities=3, num_points=5, rng=7)
        b = uniform_workload(num_requests=10, num_commodities=3, num_points=5, rng=7)
        assert [r.point for r in a.instance.requests] == [r.point for r in b.instance.requests]
        assert [r.commodities for r in a.instance.requests] == [
            r.commodities for r in b.instance.requests
        ]

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            uniform_workload(num_requests=0, num_commodities=2, rng=0)
        with pytest.raises(InvalidInstanceError):
            uniform_workload(num_requests=5, num_commodities=2, min_demand=3, max_demand=2, rng=0)
        with pytest.raises(InvalidInstanceError):
            uniform_workload(num_requests=5, num_commodities=2, metric_kind="torus", rng=0)
        with pytest.raises(InvalidInstanceError):
            uniform_workload(
                num_requests=5, num_commodities=2, cost_function=LinearCost(3), rng=0
            )


class TestClusteredWorkload:
    def test_planted_solution_is_feasible_reference(self):
        workload = clustered_workload(num_requests=25, num_commodities=8, num_clusters=3, rng=0)
        assert workload.planted_specs is not None
        assert len(workload.planted_specs) == 3
        planted = workload.planted_solver().solve(workload.instance)
        planted.solution.validate(workload.instance.requests)
        assert planted.total_cost > 0

    def test_requests_demand_subsets_of_their_cluster_bundle(self):
        workload = clustered_workload(
            num_requests=30, num_commodities=10, num_clusters=4, bundle_size=3, rng=1
        )
        bundles = [frozenset(config) for _, config in workload.planted_specs]
        for request in workload.instance.requests:
            assert any(request.commodities <= bundle for bundle in bundles)

    def test_demand_size_override(self):
        workload = clustered_workload(
            num_requests=10, num_commodities=6, num_clusters=2, bundle_size=4, demand_size=2, rng=2
        )
        assert all(r.num_commodities == 2 for r in workload.instance.requests)

    def test_cluster_radius_controls_spread(self):
        tight = clustered_workload(
            num_requests=15, num_commodities=4, num_clusters=2, cluster_radius=0.0, rng=3
        )
        # Radius zero: all cluster points coincide with the center, so the
        # planted solution has zero connection cost.
        planted = tight.planted_solver().solve(tight.instance)
        assert planted.connection_cost == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            clustered_workload(num_requests=5, num_commodities=4, num_clusters=0, rng=0)
        with pytest.raises(InvalidInstanceError):
            clustered_workload(num_requests=5, num_commodities=4, bundle_size=9, rng=0)
        with pytest.raises(InvalidInstanceError):
            clustered_workload(num_requests=5, num_commodities=4, cluster_radius=-1.0, rng=0)


class TestZipfWorkload:
    def test_popular_commodities_dominate(self):
        workload = zipf_workload(
            num_requests=200, num_commodities=20, num_points=10, zipf_alpha=1.5, rng=0
        )
        counts = np.zeros(20)
        for request in workload.instance.requests:
            for commodity in request.commodities:
                counts[commodity] += 1
        assert counts[0] > counts[10]
        assert counts[:3].sum() > counts[10:].sum()

    def test_alpha_zero_is_roughly_uniform(self):
        workload = zipf_workload(
            num_requests=300, num_commodities=5, num_points=10, zipf_alpha=0.0, rng=1
        )
        counts = np.zeros(5)
        for request in workload.instance.requests:
            for commodity in request.commodities:
                counts[commodity] += 1
        assert counts.min() > 0.5 * counts.max()

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            zipf_workload(num_requests=5, num_commodities=3, zipf_alpha=-1.0, rng=0)


class TestServiceNetworkWorkload:
    def test_structure(self):
        workload = service_network_workload(
            num_requests=30, num_services=8, num_nodes=12, num_profiles=3, profile_size=2, rng=0
        )
        instance = workload.instance
        assert instance.num_requests == 30
        assert instance.num_commodities == 8
        assert instance.num_points == 12
        assert instance.commodities.name_of(0) == "service-0"
        assert workload.metadata["workload"] == "service-network"

    def test_runs_end_to_end_with_pd(self):
        workload = service_network_workload(
            num_requests=15, num_services=5, num_nodes=10, rng=1
        )
        result = run_online(PDOMFLPAlgorithm(), workload.instance)
        result.solution.validate(workload.instance.requests)

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            service_network_workload(num_requests=5, num_services=3, num_nodes=1, rng=0)
        with pytest.raises(InvalidInstanceError):
            service_network_workload(
                num_requests=5, num_services=3, num_nodes=5, profile_size=9, rng=0
            )


class TestArrivalOrders:
    def test_random_order_preserves_multiset(self, small_instance):
        shuffled = random_order(small_instance, rng=0)
        assert shuffled.num_requests == small_instance.num_requests
        original = sorted((r.point, tuple(sorted(r.commodities))) for r in small_instance.requests)
        permuted = sorted((r.point, tuple(sorted(r.commodities))) for r in shuffled.requests)
        assert original == permuted

    def test_adversarial_order_sorts_small_demands_first(self, small_instance):
        reordered = adversarial_order(small_instance)
        sizes = [r.num_commodities for r in reordered.requests]
        assert sizes == sorted(sizes)

    def test_orders_preserve_costs_of_offline_solutions(self, small_instance):
        """Reordering changes only the arrival order, not the offline optimum."""
        from repro.algorithms.offline.greedy import GreedyOfflineSolver

        base = GreedyOfflineSolver().solve(small_instance).total_cost
        shuffled = GreedyOfflineSolver().solve(random_order(small_instance, rng=1)).total_cost
        assert base == pytest.approx(shuffled)
