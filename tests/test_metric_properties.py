"""Property-based metric-axiom tests over *all* MetricSpace subclasses.

One parametrized fixture builds a randomly generated space of every concrete
subclass (euclidean, grid, line, tree, graph, matrix, single-point) from a
hypothesis-drawn ``(seed, size)``; every property then holds uniformly:

* the metric axioms (via :meth:`MetricSpace.validate`);
* consistency of every derived query (``distance``, ``distances_between``,
  ``nearest``, ``nearest_distance``, ``diameter``) with ``pairwise_matrix``;
* the :meth:`MetricSpace.distances_to` exactness contract the acceleration
  layer relies on: ``distances_to(p)[q]`` is bit-for-bit equal to
  ``distances_from(q)[p]``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidMetricError
from repro.metric.euclidean import EuclideanMetric
from repro.metric.factories import (
    random_graph_metric,
    random_tree_metric,
)
from repro.metric.grid import GridMetric
from repro.metric.line import LineMetric
from repro.metric.matrix import ExplicitMetric
from repro.metric.single_point import SinglePointMetric
from repro.utils.rng import ensure_rng


def _build_euclidean(seed: int, size: int):
    rng = ensure_rng(seed)
    return EuclideanMetric(rng.uniform(-2.0, 2.0, size=(size, 3)))


def _build_grid(seed: int, size: int):
    rng = ensure_rng(seed)
    return GridMetric(rng.integers(-6, 7, size=(size, 2)), spacing=0.5)


def _build_line(seed: int, size: int):
    rng = ensure_rng(seed)
    return LineMetric(rng.uniform(-10.0, 10.0, size=size))


def _build_tree(seed: int, size: int):
    return random_tree_metric(size, rng=seed)


def _build_graph(seed: int, size: int):
    return random_graph_metric(size, edge_probability=0.3, rng=seed)


def _build_matrix(seed: int, size: int):
    # A valid explicit metric: re-wrap a shortest-path matrix.
    return ExplicitMetric(random_graph_metric(size, rng=seed).pairwise_matrix())


def _build_single_point(seed: int, size: int):
    return SinglePointMetric()


BUILDERS = {
    "euclidean": _build_euclidean,
    "grid": _build_grid,
    "line": _build_line,
    "tree": _build_tree,
    "graph": _build_graph,
    "matrix": _build_matrix,
    "single_point": _build_single_point,
}


@pytest.fixture(params=sorted(BUILDERS))
def metric_builder(request):
    """One concrete MetricSpace subclass builder per parametrization."""
    return BUILDERS[request.param]


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(0, 2**31 - 1), size=st.integers(2, 24))
def test_metric_axioms_hold(metric_builder, seed, size):
    metric = metric_builder(seed, size)
    metric.validate(rng=seed)  # non-negativity, identity, symmetry, triangle


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(0, 2**31 - 1), size=st.integers(2, 24))
def test_derived_queries_match_pairwise_matrix(metric_builder, seed, size):
    metric = metric_builder(seed, size)
    matrix = metric.pairwise_matrix()
    n = metric.num_points
    assert matrix.shape == (n, n)
    assert len(metric) == n

    rng = ensure_rng(seed)
    for _ in range(5):
        p = int(rng.integers(0, n))
        q = int(rng.integers(0, n))
        assert metric.distance(p, q) == matrix[p, q]
        row = np.asarray(metric.distances_from(p))
        assert row.shape == (n,)
        np.testing.assert_array_equal(row, matrix[p])

        count = int(rng.integers(1, n + 1))
        targets = [int(t) for t in rng.integers(0, n, size=count)]
        sub = metric.distances_between(p, targets)
        np.testing.assert_array_equal(sub, matrix[p, targets])

        nearest_point, nearest_distance = metric.nearest(p, targets)
        best = int(np.argmin(matrix[p, targets]))
        assert nearest_point == targets[best]
        assert nearest_distance == matrix[p, targets[best]]
        assert metric.nearest_distance(p, targets) == matrix[p, targets].min()

    assert metric.nearest_distance(0, []) == float("inf")
    assert metric.diameter() == matrix.max()


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(0, 2**31 - 1), size=st.integers(2, 24))
def test_distances_to_is_exact_transpose(metric_builder, seed, size):
    """The accel-layer contract: distances_to(p)[q] == distances_from(q)[p],
    bit for bit, for every implementation — both before and after the
    pairwise matrix is cached."""
    metric = metric_builder(seed, size)
    n = metric.num_points
    for p in range(n):
        column = metric.distances_to(p)
        for q in range(n):
            assert column[q] == metric.distances_from(q)[p]
    metric.pairwise_matrix()  # force the cache, then re-check the sliced path
    for p in range(n):
        column = metric.distances_to(p)
        for q in range(n):
            assert column[q] == metric.distances_from(q)[p]


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(0, 2**31 - 1), size=st.integers(2, 24))
def test_empty_and_out_of_range_queries_raise(metric_builder, seed, size):
    metric = metric_builder(seed, size)
    with pytest.raises(InvalidMetricError):
        metric.nearest(0, [])
    with pytest.raises(InvalidMetricError):
        metric.distance(0, metric.num_points)
    with pytest.raises(InvalidMetricError):
        metric.distances_between(0, [metric.num_points])
    with pytest.raises(InvalidMetricError):
        metric.distances_to(metric.num_points)
