"""Unit and property-based tests for the metric-space substrate."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidMetricError
from repro.metric import (
    EuclideanMetric,
    ExplicitMetric,
    GraphMetric,
    GridMetric,
    LineMetric,
    SinglePointMetric,
    TreeMetric,
    random_euclidean_metric,
    random_graph_metric,
    random_line_metric,
    random_tree_metric,
    uniform_line_metric,
)
from repro.metric.factories import random_grid_metric
from repro.metric.nearest import NearestPointIndex


class TestLineMetric:
    def test_distances(self):
        metric = LineMetric([0.0, 1.0, 3.0])
        assert metric.distance(0, 2) == 3.0
        assert metric.distance(2, 1) == 2.0
        assert metric.distance(1, 1) == 0.0

    def test_distances_from_row(self):
        metric = LineMetric([0.0, 1.0, 3.0])
        np.testing.assert_allclose(metric.distances_from(1), [1.0, 0.0, 2.0])

    def test_leftmost_rightmost(self):
        metric = LineMetric([2.0, -1.0, 5.0])
        assert metric.leftmost() == 1
        assert metric.rightmost() == 2

    def test_duplicates_allowed(self):
        metric = LineMetric([1.0, 1.0])
        assert metric.distance(0, 1) == 0.0

    def test_axioms(self):
        random_line_metric(20, rng=0).validate()

    def test_rejects_empty_and_nonfinite(self):
        with pytest.raises(InvalidMetricError):
            LineMetric([])
        with pytest.raises(InvalidMetricError):
            LineMetric([0.0, float("nan")])

    def test_uniform_line_spacing(self):
        metric = uniform_line_metric(5, length=4.0)
        assert metric.distance(0, 4) == pytest.approx(4.0)
        assert metric.distance(0, 1) == pytest.approx(1.0)


class TestEuclideanMetric:
    def test_distances(self):
        metric = EuclideanMetric([[0.0, 0.0], [3.0, 4.0]])
        assert metric.distance(0, 1) == pytest.approx(5.0)

    def test_one_dimensional_input(self):
        metric = EuclideanMetric([0.0, 2.0, 5.0])
        assert metric.dimension == 1
        assert metric.distance(0, 2) == pytest.approx(5.0)

    def test_nearest_any_with_and_without_kdtree(self):
        points = np.random.default_rng(0).uniform(size=(40, 2))
        with_tree = EuclideanMetric(points, use_kdtree=True)
        without_tree = EuclideanMetric(points, use_kdtree=False)
        assert with_tree.nearest_any(3) == pytest.approx(without_tree.nearest_any(3))

    def test_nearest_any_single_point(self):
        metric = EuclideanMetric([[0.0, 0.0]])
        assert metric.nearest_any(0) == (0, 0.0)

    def test_axioms(self):
        random_euclidean_metric(25, rng=1).validate()

    def test_rejects_nonfinite(self):
        with pytest.raises(InvalidMetricError):
            EuclideanMetric([[0.0, float("inf")]])


class TestGridMetric:
    def test_l1_distance(self):
        metric = GridMetric([[0, 0], [2, 3]], spacing=1.0)
        assert metric.distance(0, 1) == 5.0

    def test_spacing(self):
        metric = GridMetric([[0, 0], [1, 1]], spacing=0.5)
        assert metric.distance(0, 1) == 1.0

    def test_full_grid_and_point_at(self):
        metric = GridMetric.full_grid(3, 2)
        assert metric.num_points == 6
        index = metric.point_at((2, 1))
        assert metric.distance(metric.point_at((0, 0)), index) == 3.0

    def test_point_at_missing(self):
        metric = GridMetric([[0, 0]])
        with pytest.raises(InvalidMetricError):
            metric.point_at((5, 5))

    def test_axioms(self):
        random_grid_metric(20, width=10, height=10, rng=2).validate()

    def test_invalid_spacing(self):
        with pytest.raises(InvalidMetricError):
            GridMetric([[0, 0]], spacing=0.0)


class TestGraphMetric:
    def test_shortest_path_distances(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", weight=1.0)
        graph.add_edge("b", "c", weight=2.0)
        graph.add_edge("a", "c", weight=10.0)
        metric = GraphMetric(graph)
        a, c = metric.point_of_node("a"), metric.point_of_node("c")
        assert metric.distance(a, c) == pytest.approx(3.0)

    def test_default_weight_is_one(self):
        graph = nx.path_graph(4)
        metric = GraphMetric(graph)
        assert metric.distance(0, 3) == pytest.approx(3.0)

    def test_disconnected_rejected(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        with pytest.raises(InvalidMetricError):
            GraphMetric(graph)

    def test_negative_weight_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=-1.0)
        with pytest.raises(InvalidMetricError):
            GraphMetric(graph)

    def test_unknown_node(self):
        metric = GraphMetric(nx.path_graph(3))
        with pytest.raises(InvalidMetricError):
            metric.point_of_node("nope")

    def test_axioms(self):
        random_graph_metric(15, rng=3).validate()


class TestTreeMetric:
    def test_requires_tree(self):
        with pytest.raises(InvalidMetricError):
            TreeMetric(nx.cycle_graph(4))

    def test_balanced_tree_distances(self):
        metric = TreeMetric.balanced(2, 2, edge_length=1.0)
        # Root to any leaf is depth 2.
        leaf = metric.num_points - 1
        assert metric.distance(0, leaf) == pytest.approx(2.0)

    def test_level_decay(self):
        metric = TreeMetric.balanced(2, 2, edge_length=1.0, level_decay=0.5)
        leaf = metric.num_points - 1
        assert metric.distance(0, leaf) == pytest.approx(1.5)

    def test_axioms(self):
        random_tree_metric(20, rng=4).validate()


class TestExplicitAndSinglePoint:
    def test_explicit_metric_round_trip(self, square_metric):
        square_metric.validate()
        assert square_metric.distance(0, 3) == 2.0
        assert square_metric.diameter() == 2.0

    def test_explicit_rejects_non_square(self):
        with pytest.raises(InvalidMetricError):
            ExplicitMetric([[0.0, 1.0]])

    def test_explicit_validation_catches_asymmetry(self):
        with pytest.raises(InvalidMetricError):
            ExplicitMetric([[0.0, 1.0], [2.0, 0.0]], validate=True)

    def test_explicit_validation_catches_triangle_violation(self):
        matrix = [[0.0, 1.0, 5.0], [1.0, 0.0, 1.0], [5.0, 1.0, 0.0]]
        with pytest.raises(InvalidMetricError):
            ExplicitMetric(matrix, validate=True)

    def test_from_points_and_metric(self):
        metric = ExplicitMetric.from_points_and_metric(3, lambda i, j: abs(i - j))
        assert metric.distance(0, 2) == 2.0

    def test_labels_length_checked(self):
        with pytest.raises(InvalidMetricError):
            ExplicitMetric([[0.0]], labels=["a", "b"])

    def test_single_point(self):
        metric = SinglePointMetric()
        metric.validate()
        assert metric.num_points == 1
        assert metric.distance(0, 0) == 0.0


class TestMetricQueries:
    def test_nearest_and_nearest_distance(self, line_metric):
        point, distance = line_metric.nearest(0, [2, 4])
        assert point == 2
        assert distance == pytest.approx(0.5)
        assert line_metric.nearest_distance(0, []) == float("inf")
        with pytest.raises(InvalidMetricError):
            line_metric.nearest(0, [])

    def test_distances_between_validates_targets(self, line_metric):
        with pytest.raises(InvalidMetricError):
            line_metric.distances_between(0, [99])
        assert line_metric.distances_between(0, []).size == 0

    def test_point_out_of_range(self, line_metric):
        with pytest.raises(InvalidMetricError):
            line_metric.distance(99, 0)

    def test_len_and_points(self, line_metric):
        assert len(line_metric) == 5
        assert list(line_metric.points()) == [0, 1, 2, 3, 4]


class TestNearestPointIndex:
    def test_empty_key(self, line_metric):
        index = NearestPointIndex(line_metric)
        assert index.nearest_distance("e", 0) == float("inf")
        assert index.nearest("e", 0) is None
        assert not index.has_any("e")

    def test_add_and_query(self, line_metric):
        index = NearestPointIndex(line_metric)
        index.add("e", 4)
        index.add("e", 1)
        point, distance = index.nearest("e", 0)
        assert point == 1
        assert distance == pytest.approx(0.25)
        assert index.nearest_distance("e", 0) == pytest.approx(0.25)
        assert sorted(index.points("e")) == [1, 4]

    def test_many_queries(self, line_metric):
        index = NearestPointIndex(line_metric)
        index.add("e", 2)
        distances = index.nearest_distances_many("e", [0, 2, 4])
        np.testing.assert_allclose(distances, [0.5, 0.0, 0.5])
        empty = index.nearest_distances_many("missing", [0, 1])
        assert np.all(np.isinf(empty))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), size=st.integers(min_value=2, max_value=30))
def test_random_metric_factories_satisfy_axioms(seed, size):
    """Property: every factory produces a valid metric space."""
    random_line_metric(size, rng=seed).validate()
    random_euclidean_metric(size, rng=seed).validate()
    random_graph_metric(size, rng=seed).validate()
    random_tree_metric(size, rng=seed).validate()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), size=st.integers(min_value=2, max_value=25))
def test_nearest_matches_bruteforce(seed, size):
    """Property: nearest() agrees with an explicit argmin over candidates."""
    metric = random_euclidean_metric(size, rng=seed)
    rng = np.random.default_rng(seed)
    candidates = rng.choice(size, size=min(size, 5), replace=False).tolist()
    query = int(rng.integers(0, size))
    point, distance = metric.nearest(query, candidates)
    brute = min(candidates, key=lambda c: metric.distance(query, c))
    assert distance == pytest.approx(metric.distance(query, brute))
    assert metric.distance(query, point) == pytest.approx(distance)
