"""Tests for the single-commodity OFL substrates and the greedy baselines."""

import numpy as np
import pytest

from repro.algorithms.base import run_online
from repro.algorithms.offline.brute_force import BruteForceSolver
from repro.algorithms.online.always_large import AlwaysLargeGreedy
from repro.algorithms.online.fotakis_ofl import FotakisOFLAlgorithm, SingleCommodityPrimalDual
from repro.algorithms.online.meyerson_ofl import MeyersonOFLAlgorithm, SingleCommodityMeyerson
from repro.algorithms.online.no_prediction import NoPredictionGreedy
from repro.algorithms.online.pd_omflp import PDOMFLPAlgorithm
from repro.algorithms.online.per_commodity import PerCommodityAlgorithm
from repro.core.instance import Instance
from repro.core.requests import RequestSequence
from repro.costs.count_based import AdversaryCost, ConstantCost, LinearCost
from repro.exceptions import AlgorithmError
from repro.metric.factories import uniform_line_metric
from repro.metric.single_point import SinglePointMetric
from repro.workloads.uniform import uniform_workload


def single_commodity_instance(num_requests: int = 10, seed: int = 0) -> Instance:
    return uniform_workload(
        num_requests=num_requests,
        num_commodities=1,
        num_points=16,
        metric_kind="line",
        max_demand=1,
        cost_exponent_x=0.0,
        cost_scale=0.3,
        rng=seed,
    ).instance


class TestSingleCommodityPrimalDualHelper:
    def test_opens_then_reuses(self):
        metric = uniform_line_metric(3)
        helper = SingleCommodityPrimalDual(metric, [1.0, 1.0, 1.0])
        kind, point, dual = helper.decide(0)
        assert kind == "open"
        assert dual == pytest.approx(1.0)
        kind2, slot, dual2 = helper.decide(0)
        assert kind2 == "connect"
        assert dual2 == pytest.approx(0.0)
        assert helper.facility_points == [0]
        assert helper.duals == [1.0, 0.0]

    def test_costs_shape_checked(self):
        metric = uniform_line_metric(3)
        with pytest.raises(AlgorithmError):
            SingleCommodityPrimalDual(metric, [1.0, 1.0])

    def test_prefers_cheap_remote_point(self):
        metric = uniform_line_metric(3)
        helper = SingleCommodityPrimalDual(metric, [10.0, 0.1, 10.0])
        kind, point, dual = helper.decide(0)
        assert kind == "open"
        assert point == 1
        assert dual == pytest.approx(0.6)  # distance 0.5 + cost 0.1


class TestSingleCommodityMeyersonHelper:
    def test_classes_and_budget(self):
        metric = uniform_line_metric(4)
        helper = SingleCommodityMeyerson(metric, [1.0, 2.0, 4.0, 8.0])
        assert helper.num_classes == 4
        assert helper.class_value(1) == 1.0
        assert helper.distance_to_class(4, 0) == 0.0
        # Budget before any facility: cheapest open option.
        assert helper.connection_budget(0) == pytest.approx(1.0)

    def test_decide_always_yields_a_facility(self):
        metric = uniform_line_metric(4)
        helper = SingleCommodityMeyerson(metric, [1.0, 1.0, 1.0, 1.0])
        rng = np.random.default_rng(0)
        opened, slot, distance = helper.decide(2, rng)
        assert helper.facility_points
        assert distance < float("inf")

    def test_costs_shape_checked(self):
        metric = uniform_line_metric(2)
        with pytest.raises(AlgorithmError):
            SingleCommodityMeyerson(metric, [1.0])


class TestOFLAlgorithms:
    def test_fotakis_requires_single_commodity(self, small_instance):
        with pytest.raises(AlgorithmError):
            run_online(FotakisOFLAlgorithm(), small_instance)

    def test_meyerson_requires_single_commodity(self, small_instance):
        with pytest.raises(AlgorithmError):
            run_online(MeyersonOFLAlgorithm(), small_instance, rng=0)

    def test_fotakis_reasonable_on_single_commodity(self):
        instance = single_commodity_instance(12, seed=1)
        result = run_online(FotakisOFLAlgorithm(), instance)
        result.solution.validate(instance.requests)
        opt = BruteForceSolver(max_combinations=200_000,
                               configurations=[{0}]).solve(instance).total_cost
        assert opt - 1e-9 <= result.total_cost <= 10 * opt

    def test_meyerson_reasonable_on_single_commodity(self):
        instance = single_commodity_instance(12, seed=2)
        costs = []
        for seed in range(6):
            result = run_online(MeyersonOFLAlgorithm(), instance, rng=seed)
            result.solution.validate(instance.requests)
            costs.append(result.total_cost)
        opt = BruteForceSolver(max_combinations=200_000,
                               configurations=[{0}]).solve(instance).total_cost
        assert np.mean(costs) <= 10 * opt

    def test_fotakis_matches_pd_on_single_commodity(self):
        """With |S| = 1, PD-OMFLP and the Fotakis substrate implement the same rule."""
        instance = single_commodity_instance(10, seed=3)
        fotakis = run_online(FotakisOFLAlgorithm(), instance)
        pd = run_online(PDOMFLPAlgorithm(), instance)
        assert fotakis.total_cost == pytest.approx(pd.total_cost, rel=1e-6)


class TestPerCommodityBaseline:
    def test_feasible_and_ignores_bundling(self, single_point_instance_constant):
        result = run_online(PerCommodityAlgorithm("fotakis"), single_point_instance_constant)
        result.solution.validate(single_point_instance_constant.requests)
        # One facility per commodity: pays |S| while OPT pays 1.
        assert result.total_cost == pytest.approx(6.0)
        assert result.solution.num_facilities() == 6

    def test_meyerson_base_feasible(self, small_instance):
        result = run_online(PerCommodityAlgorithm("meyerson"), small_instance, rng=0)
        result.solution.validate(small_instance.requests)

    def test_unknown_base_rejected(self):
        with pytest.raises(AlgorithmError):
            PerCommodityAlgorithm("unknown")

    def test_facilities_are_singletons(self, small_instance):
        result = run_online(PerCommodityAlgorithm("fotakis"), small_instance)
        for facility in result.solution.facilities:
            assert len(facility.configuration) == 1


class TestGreedyBaselines:
    def test_no_prediction_never_predicts(self, small_instance):
        result = run_online(NoPredictionGreedy(), small_instance)
        result.solution.validate(small_instance.requests)
        for facility in result.solution.facilities:
            assert len(facility.configuration) == 1

    def test_no_prediction_pays_s_on_constant_cost(self, single_point_instance_constant):
        result = run_online(NoPredictionGreedy(), single_point_instance_constant)
        assert result.total_cost == pytest.approx(6.0)

    def test_always_large_only_opens_full_configurations(self, small_instance):
        result = run_online(AlwaysLargeGreedy(), small_instance)
        result.solution.validate(small_instance.requests)
        for facility in result.solution.facilities:
            assert facility.configuration == small_instance.cost_function.full_set

    def test_always_large_pays_once_on_single_point(self, single_point_instance_constant):
        result = run_online(AlwaysLargeGreedy(), single_point_instance_constant)
        assert result.total_cost == pytest.approx(1.0)
        assert result.solution.num_facilities() == 1

    def test_always_large_wasteful_under_linear_costs(self):
        """Linear costs: opening all of S for a single-commodity request is |S|x too much."""
        metric = SinglePointMetric()
        instance = Instance(metric, LinearCost(8), RequestSequence.from_tuples([(0, {0})]))
        large = run_online(AlwaysLargeGreedy(), instance)
        pd = run_online(PDOMFLPAlgorithm(), instance)
        assert large.total_cost == pytest.approx(8.0)
        assert pd.total_cost == pytest.approx(1.0)
