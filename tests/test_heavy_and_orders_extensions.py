"""Tests for the closing-remarks heavy-commodity remedy and the arrival-order experiment."""

import numpy as np
import pytest

from repro.algorithms.base import run_online
from repro.algorithms.online.threshold import ThresholdPDAlgorithm
from repro.costs.count_based import PowerCost
from repro.costs.general import WeightedConcaveCost
from repro.costs.heavy import (
    condition_one_holds_without,
    detect_heavy_commodities,
    heavy_aware_pd,
)
from repro.exceptions import InvalidCostFunctionError
from repro.experiments import run_experiment
from repro.workloads.uniform import uniform_workload


class TestHeavyDetection:
    def test_no_heavy_commodities_under_condition_one(self):
        cost = PowerCost(6, 1.0)
        assert detect_heavy_commodities(cost, [0]) == frozenset()

    def test_detects_the_skewed_commodity(self):
        cost = WeightedConcaveCost([1.0, 1.0, 1.0, 100.0])
        heavy = detect_heavy_commodities(cost, [0])
        assert 3 in heavy
        assert len(heavy) <= 2

    def test_condition_one_holds_without_detected_set(self):
        cost = WeightedConcaveCost([1.0, 1.0, 1.0, 1.0, 400.0])
        heavy = detect_heavy_commodities(cost, [0])
        assert condition_one_holds_without(cost, heavy, [0])
        assert not condition_one_holds_without(cost, frozenset(), [0])

    def test_max_excluded_caps_the_search(self):
        cost = WeightedConcaveCost([1.0, 50.0, 60.0, 70.0])
        heavy = detect_heavy_commodities(cost, [0], max_excluded=1)
        assert len(heavy) <= 1

    def test_requires_points(self):
        with pytest.raises(InvalidCostFunctionError):
            detect_heavy_commodities(PowerCost(3, 1.0), [])

    def test_heavy_aware_pd_builds_restricted_algorithm(self):
        cost = WeightedConcaveCost([1.0, 1.0, 1.0, 200.0])
        algorithm, excluded = heavy_aware_pd(cost, [0])
        assert isinstance(algorithm, ThresholdPDAlgorithm)
        assert excluded == algorithm.excluded
        assert 3 in excluded

    def test_heavy_aware_pd_runs_feasibly(self):
        cost = WeightedConcaveCost([1.0, 1.0, 1.0, 200.0])
        workload = uniform_workload(
            num_requests=12, num_commodities=4, num_points=6, cost_function=cost, rng=0
        )
        algorithm, excluded = heavy_aware_pd(cost, list(range(6)))
        result = run_online(algorithm, workload.instance)
        result.solution.validate(workload.instance.requests)
        # Heavy commodities never appear in multi-commodity facilities.
        for facility in result.solution.facilities:
            if len(facility.configuration) > 1:
                assert not (facility.configuration & excluded)


class TestExtensionExperiments:
    def test_heavy_commodities_experiment(self):
        result = run_experiment("heavy-commodities", profile="quick", rng=0)
        assert result.rows
        algorithms = {row["algorithm"] for row in result.rows}
        assert {"pd-omflp", "pd-omflp-heavy-excluded", "per-commodity-fotakis"} <= algorithms
        for row in result.rows:
            assert row["cost"] > 0
            assert row["reference_cost"] > 0

    def test_arrival_order_experiment(self):
        result = run_experiment("arrival-order", profile="quick", rng=0)
        assert result.rows
        for row in result.rows:
            assert row["adversarial_order_cost"] > 0
            assert row["random_order_cost"] > 0
            assert row["adversarial_over_random"] > 0.3
        assert any("adversarial-order cost" in note for note in result.notes)

    def test_new_experiments_registered(self):
        from repro.experiments import list_experiments

        ids = set(list_experiments())
        assert "heavy-commodities" in ids
        assert "arrival-order" in ids
