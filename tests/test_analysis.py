"""Tests for the analysis harness: competitive ratios, fits, sweeps, tables, results."""

import json
import math

import numpy as np
import pytest

from repro.algorithms.offline.brute_force import BruteForceSolver
from repro.algorithms.online.pd_omflp import PDOMFLPAlgorithm
from repro.algorithms.online.rand_omflp import RandOMFLPAlgorithm
from repro.analysis import (
    ExperimentResult,
    ParameterGrid,
    fit_log_growth,
    fit_power_law,
    format_markdown_table,
    format_table,
    measure_competitive_ratio,
    reference_cost,
    run_sweep,
)
from repro.analysis.competitive import ReferenceCost
from repro.exceptions import ExperimentError
from repro.workloads.clustered import clustered_workload
from repro.workloads.uniform import uniform_workload


class TestReferenceCost:
    def test_known_opt_wins(self, tiny_instance):
        reference = reference_cost(tiny_instance, known_opt=3.25)
        assert reference.kind == "analytic"
        assert reference.value == 3.25

    def test_exact_for_tiny_instance(self, tiny_instance):
        reference = reference_cost(tiny_instance)
        exact = BruteForceSolver().solve(tiny_instance).total_cost
        assert reference.kind == "exact"
        assert reference.value == pytest.approx(exact)

    def test_upper_bound_for_larger_instance(self):
        workload = clustered_workload(num_requests=25, num_commodities=8, num_clusters=3, rng=0)
        reference = reference_cost(workload, local_search_iterations=2)
        assert reference.kind == "upper-bound"
        assert reference.value > 0

    def test_negative_reference_rejected(self):
        with pytest.raises(ExperimentError):
            ReferenceCost(value=-1.0, kind="exact", solver="x")


class TestCompetitiveMeasurement:
    def test_deterministic_algorithm_single_run(self, tiny_instance):
        measurement = measure_competitive_ratio(PDOMFLPAlgorithm(), tiny_instance, rng=0)
        assert len(measurement.costs) == 1
        assert measurement.ratio >= 1.0 - 1e-9
        row = measurement.as_row()
        assert row["algorithm"] == "pd-omflp"
        assert row["reference_kind"] == "exact"

    def test_randomized_algorithm_averages_runs(self, tiny_instance):
        measurement = measure_competitive_ratio(
            RandOMFLPAlgorithm(), tiny_instance, repeats=4, rng=1
        )
        assert len(measurement.costs) == 4
        assert measurement.std_cost >= 0.0

    def test_explicit_reference_is_used(self, tiny_instance):
        reference = ReferenceCost(value=100.0, kind="analytic", solver="known")
        measurement = measure_competitive_ratio(
            PDOMFLPAlgorithm(), tiny_instance, reference=reference
        )
        assert measurement.ratio < 1.0

    def test_invalid_repeats(self, tiny_instance):
        with pytest.raises(ExperimentError):
            measure_competitive_ratio(PDOMFLPAlgorithm(), tiny_instance, repeats=0)

    def test_ratio_with_zero_reference_is_infinite(self, tiny_instance):
        reference = ReferenceCost(value=0.0, kind="analytic", solver="known")
        measurement = measure_competitive_ratio(
            PDOMFLPAlgorithm(), tiny_instance, reference=reference
        )
        assert measurement.ratio == float("inf")


class TestRegression:
    def test_power_law_recovers_exponent(self):
        xs = [4, 16, 64, 256]
        ys = [2.0 * x**0.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)
        assert fit.prefactor == pytest.approx(2.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(100) == pytest.approx(20.0)

    def test_log_growth_recovers_slope(self):
        xs = [10, 100, 1000]
        ys = [1.0 + 2.0 * math.log(x) for x in xs]
        fit = fit_log_growth(xs, ys)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.predict(50) == pytest.approx(1.0 + 2.0 * math.log(50))

    def test_validation(self):
        with pytest.raises(ExperimentError):
            fit_power_law([1], [1])
        with pytest.raises(ExperimentError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ExperimentError):
            fit_log_growth([0, 1], [1, 2])
        with pytest.raises(ExperimentError):
            fit_log_growth([1, 2], [1, 2, 3])

    def test_constant_series_r_squared(self):
        fit = fit_log_growth([10, 100, 1000], [5.0, 5.0, 5.0])
        assert fit.slope == pytest.approx(0.0, abs=1e-12)
        assert fit.r_squared == pytest.approx(1.0)


class TestSweep:
    def test_grid_enumeration(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
        points = list(grid)
        assert len(points) == len(grid) == 6
        assert {"a": 1, "b": "x"} in points

    def test_grid_validation(self):
        with pytest.raises(ExperimentError):
            ParameterGrid({})
        with pytest.raises(ExperimentError):
            ParameterGrid({"a": []})

    def test_generator_valued_parameters_are_not_exhausted(self):
        # Regression: validation used to consume generator values, silently
        # yielding zero combinations on iteration.
        grid = ParameterGrid({"a": (x for x in (1, 2, 3)), "b": range(2)})
        assert len(grid) == 6
        points = list(grid)
        assert len(points) == 6
        assert list(grid) == points  # re-iterable

    def test_empty_generator_rejected(self):
        with pytest.raises(ExperimentError):
            ParameterGrid({"a": (x for x in ())})

    def test_run_sweep_serial(self):
        grid = ParameterGrid({"x": [1, 2, 3]})
        rows = run_sweep(lambda p: {"square": p["x"] ** 2}, grid)
        assert rows == [
            {"x": 1, "square": 1},
            {"x": 2, "square": 4},
            {"x": 3, "square": 9},
        ]

    def test_run_sweep_parallel_matches_serial(self):
        grid = ParameterGrid({"x": list(range(12))})
        serial = run_sweep(_sweep_worker, grid, workers=1)
        parallel = run_sweep(_sweep_worker, grid, workers=2)
        assert serial == parallel


def _sweep_worker(params):
    return {"double": params["x"] * 2}


class TestTables:
    def test_format_table_alignment_and_title(self):
        rows = [{"a": 1, "b": 2.34567}, {"a": 20, "b": 0.5}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_column_selection_and_missing(self):
        rows = [{"a": 1}, {"b": True}]
        text = format_table(rows, columns=["a", "b"])
        assert "yes" in text
        assert format_table([], columns=["x"]) == ""
        assert format_table([]) == ""

    def test_markdown_table(self):
        rows = [{"algorithm": "pd", "ratio": 1.2345}]
        text = format_markdown_table(rows)
        assert text.splitlines()[0] == "| algorithm | ratio |"
        assert "| pd | 1.234 |" in text or "| pd | 1.235 |" in text
        assert format_markdown_table([]) == ""


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            experiment_id="demo",
            title="Demo experiment",
            rows=[{"x": 1, "y": 2.0}],
            notes=["a note"],
            parameters={"profile": "quick"},
            extra_text="trace",
        )

    def test_to_table_and_markdown(self):
        result = self._result()
        table = result.to_table()
        assert "[demo] Demo experiment" in table
        assert "note: a note" in table
        assert "trace" in table
        markdown = result.to_markdown()
        assert markdown.startswith("### demo")
        assert "| x | y |" in markdown

    def test_json_round_trip_and_save(self, tmp_path):
        result = self._result()
        parsed = json.loads(result.to_json())
        assert parsed["experiment_id"] == "demo"
        path = result.save(tmp_path)
        assert path.exists()
        assert json.loads(path.read_text())["rows"] == [{"x": 1, "y": 2.0}]

    def test_require_rows(self):
        empty = ExperimentResult(experiment_id="e", title="t")
        with pytest.raises(ExperimentError):
            empty.require_rows()
