"""Fixture: ``det-id-hash-order`` positives and negatives."""


def positives(items):
    a = sorted(items, key=id)  # EXPECT: det-id-hash-order
    items.sort(key=hash)  # EXPECT: det-id-hash-order
    b = min(items, key=lambda item: hash(item))  # EXPECT: det-id-hash-order
    c = max(items, key=lambda item: id(item) % 7)  # EXPECT: det-id-hash-order
    return a, b, c


def negatives(items):
    a = sorted(items, key=len)
    b = sorted(items, key=lambda item: item.name)
    c = min(items, key=abs)
    items.sort()
    return a, b, c
