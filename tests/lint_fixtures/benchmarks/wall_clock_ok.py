"""Fixture: files under a ``benchmarks/`` directory are wall-clock exempt."""

import time


def timed_section():
    start = time.perf_counter()
    end = time.time()
    return end - start
