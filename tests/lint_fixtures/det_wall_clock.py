"""Fixture: ``det-wall-clock`` positives, negatives and a reasoned waiver."""

import datetime
import time
from time import perf_counter


def positives():
    a = time.time()  # EXPECT: det-wall-clock
    b = perf_counter()  # EXPECT: det-wall-clock
    c = datetime.datetime.now()  # EXPECT: det-wall-clock
    d = time.monotonic_ns()  # EXPECT: det-wall-clock
    return a, b, c, d


def waived():
    # A reasoned suppression keeps the line out of the active findings.
    return time.monotonic()  # repro: noqa[det-wall-clock] -- fixture: telemetry only


def negatives(request_index):
    logical_time = request_index + 1
    stamp = datetime.timedelta(seconds=3)
    return logical_time, stamp
