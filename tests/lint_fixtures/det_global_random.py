"""Fixture: ``det-global-random`` positives and negatives.

Lines carrying an EXPECT marker comment must be flagged; every other line
must stay clean (the fixture test compares the finding sets exactly).
"""

import random

import numpy as np
from numpy import random as npr


def positives():
    a = np.random.random()  # EXPECT: det-global-random
    np.random.seed(0)  # EXPECT: det-global-random
    b = npr.choice([1, 2, 3])  # EXPECT: det-global-random
    c = random.randint(0, 10)  # EXPECT: det-global-random
    random.shuffle([1, 2, 3])  # EXPECT: det-global-random
    return a, b, c


def negatives(seed):
    rng = np.random.default_rng(seed)
    first = rng.random()
    second = np.random.Generator(np.random.PCG64(seed)).random()
    third = random.Random(seed).random()
    return first, second, third
