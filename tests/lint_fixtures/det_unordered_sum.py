"""Fixture: ``det-unordered-sum`` positives and negatives."""

import math

import numpy as np


def positives(values, weights):
    a = sum({float(v) for v in values})  # EXPECT: det-unordered-sum
    b = sum(w for w in set(weights))  # EXPECT: det-unordered-sum
    c = math.fsum(set(values))  # EXPECT: det-unordered-sum
    d = np.sum(frozenset(weights))  # EXPECT: det-unordered-sum
    return a, b, c, d


def negatives(values, weights):
    a = sum(sorted(set(values)))
    b = sum([float(v) for v in values])
    c = math.fsum(sorted(weights))
    d = np.sum(np.asarray(values))
    return a, b, c, d
