"""Fixture: ``det-os-entropy`` positives and negatives."""

import os
import random
import secrets
import uuid


def positives():
    a = os.urandom(8)  # EXPECT: det-os-entropy
    b = uuid.uuid4()  # EXPECT: det-os-entropy
    c = uuid.uuid1()  # EXPECT: det-os-entropy
    d = secrets.token_hex(4)  # EXPECT: det-os-entropy
    e = random.SystemRandom()  # EXPECT: det-os-entropy
    return a, b, c, d, e


def negatives():
    stable = uuid.uuid5(uuid.NAMESPACE_DNS, "repro")
    path = os.urandom  # a bare reference is not a call
    return stable, path
