"""Fixture: ``det-set-iteration`` positives and negatives."""


def positive_loop_append(values):
    out = []
    for value in set(values):  # EXPECT: det-set-iteration
        out.append(value)
    return out


def positive_loop_augassign(a, b):
    total = ""
    for value in a.union(b):  # EXPECT: det-set-iteration
        total += str(value)
    return total


def positive_loop_yield(values):
    for value in frozenset(values):  # EXPECT: det-set-iteration
        yield value


def positive_comprehension(values):
    return [value + 1 for value in set(values)]  # EXPECT: det-set-iteration


def positive_dict_comprehension(values):
    return {value: 0 for value in {v for v in values}}  # EXPECT: det-set-iteration


def negatives(values, mapping):
    ordered = [value + 1 for value in sorted(set(values))]
    smallest = min(value for value in set(values))
    as_set = {value for value in values}
    by_key = [mapping[key] for key in mapping]
    for value in set(values):
        print(value)
    return ordered, smallest, as_set, by_key
