"""Fixture: ``det-unseeded-rng`` positives and negatives."""

import random

import numpy as np
from numpy.random import default_rng


def positives():
    a = np.random.default_rng()  # EXPECT: det-unseeded-rng
    b = default_rng(None)  # EXPECT: det-unseeded-rng
    c = random.Random()  # EXPECT: det-unseeded-rng
    d = np.random.SeedSequence()  # EXPECT: det-unseeded-rng
    return a, b, c, d


def negatives(seed):
    a = np.random.default_rng(0)
    b = default_rng(seed)
    c = random.Random(17)
    d = np.random.SeedSequence(entropy=seed)
    return a, b, c, d
