"""Cross-module integration and end-to-end property tests.

These tests exercise the public API the way a downstream user would: generate
a workload, run every online algorithm, compare against offline references,
and check the global invariants the paper's model imposes (feasibility, OPT
dominance, ratio >= 1, dual certificates).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    AlwaysLargeGreedy,
    BruteForceSolver,
    GreedyOfflineSolver,
    Instance,
    NoPredictionGreedy,
    PDOMFLPAlgorithm,
    PerCommodityAlgorithm,
    PowerCost,
    RandOMFLPAlgorithm,
    RequestSequence,
    run_online,
    uniform_line_metric,
)
from repro.analysis.competitive import measure_competitive_ratio, reference_cost
from repro.dual import check_dual_feasibility, paper_scaling_factor
from repro.utils.maths import harmonic_number
from repro.workloads import clustered_workload, service_network_workload, uniform_workload
from tests.conftest import random_small_instance

ALL_ONLINE_ALGORITHMS = [
    PDOMFLPAlgorithm,
    RandOMFLPAlgorithm,
    NoPredictionGreedy,
    AlwaysLargeGreedy,
    lambda: PerCommodityAlgorithm("fotakis"),
    lambda: PerCommodityAlgorithm("meyerson"),
]


class TestEveryAlgorithmOnEveryWorkload:
    @pytest.mark.parametrize("factory", ALL_ONLINE_ALGORITHMS)
    def test_feasible_on_uniform_workload(self, factory):
        workload = uniform_workload(
            num_requests=15, num_commodities=5, num_points=10, rng=0
        )
        result = run_online(factory(), workload.instance, rng=1)
        result.solution.validate(workload.instance.requests)
        assert result.total_cost > 0
        assert result.opening_cost + result.connection_cost == pytest.approx(result.total_cost)

    @pytest.mark.parametrize("factory", ALL_ONLINE_ALGORITHMS)
    def test_feasible_on_clustered_workload(self, factory):
        workload = clustered_workload(
            num_requests=15, num_commodities=6, num_clusters=2, rng=1
        )
        result = run_online(factory(), workload.instance, rng=2)
        result.solution.validate(workload.instance.requests)

    @pytest.mark.parametrize("factory", ALL_ONLINE_ALGORITHMS)
    def test_feasible_on_service_network(self, factory):
        workload = service_network_workload(
            num_requests=12, num_services=4, num_nodes=8, rng=2
        )
        result = run_online(factory(), workload.instance, rng=3)
        result.solution.validate(workload.instance.requests)


class TestCompetitiveRatios:
    @pytest.mark.parametrize("seed", range(3))
    def test_all_algorithms_at_least_opt_on_tiny_instances(self, seed):
        instance = random_small_instance(seed, num_requests=6, num_commodities=3, num_points=4)
        opt = BruteForceSolver().solve(instance).total_cost
        for factory in ALL_ONLINE_ALGORITHMS:
            result = run_online(factory(), instance, rng=seed)
            assert result.total_cost >= opt - 1e-9

    def test_pd_beats_per_commodity_on_bundled_demand(self):
        """Clustered demand with shared bundles: PD should not lose to the decomposition."""
        workload = clustered_workload(
            num_requests=40,
            num_commodities=8,
            num_clusters=2,
            cluster_radius=0.01,
            demand_size=4,
            cost_exponent_x=0.5,
            rng=3,
        )
        pd = run_online(PDOMFLPAlgorithm(), workload.instance)
        per_commodity = run_online(PerCommodityAlgorithm("fotakis"), workload.instance)
        assert pd.total_cost <= per_commodity.total_cost * 1.05

    def test_measured_ratio_via_reference_portfolio(self):
        workload = clustered_workload(num_requests=20, num_commodities=6, num_clusters=2, rng=4)
        reference = reference_cost(workload, local_search_iterations=2)
        measurement = measure_competitive_ratio(
            PDOMFLPAlgorithm(), workload, reference=reference
        )
        assert measurement.ratio >= 1.0 - 1e-6
        assert measurement.ratio <= 15.0


class TestPaperBoundsEndToEnd:
    def test_theorem4_bound_holds_against_exact_opt(self):
        for seed in range(3):
            instance = random_small_instance(
                seed, num_requests=8, num_commodities=4, num_points=4
            )
            result = run_online(PDOMFLPAlgorithm(), instance)
            opt = BruteForceSolver().solve(instance).total_cost
            bound = 15.0 * math.sqrt(instance.num_commodities) * harmonic_number(
                instance.num_requests
            )
            assert result.total_cost <= bound * opt + 1e-9

    def test_dual_certificate_pipeline(self):
        instance = random_small_instance(7, num_requests=10, num_commodities=4, num_points=6)
        result = run_online(PDOMFLPAlgorithm(), instance)
        gamma = paper_scaling_factor(instance.num_commodities, instance.num_requests)
        assert check_dual_feasibility(instance, result.duals, scale=gamma).feasible
        assert result.total_cost <= 3.0 * result.duals.total() + 1e-9

    def test_split_per_commodity_model_costs_more(self, small_instance):
        """The per-commodity connection-cost model (Section 1.1) never decreases cost."""
        split = small_instance.split_per_commodity()
        pd_joint = run_online(PDOMFLPAlgorithm(), small_instance)
        pd_split = run_online(PDOMFLPAlgorithm(), split)
        pd_split.solution.validate(split.requests)
        assert split.num_requests >= small_instance.num_requests
        assert pd_split.total_cost >= pd_joint.total_cost * 0.5  # sanity: same order of magnitude


class TestDocstringQuickstart:
    def test_readme_quickstart_snippet(self):
        metric = uniform_line_metric(8)
        cost = PowerCost(num_commodities=4, exponent_x=1.0)
        requests = RequestSequence.from_tuples([(1, {0, 1}), (6, {2}), (2, {0, 3})])
        instance = Instance(metric, cost, requests)
        result = run_online(PDOMFLPAlgorithm(), instance)
        result.solution.validate(instance.requests)
        assert result.total_cost > 0


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=3000),
    num_commodities=st.integers(min_value=2, max_value=4),
    num_requests=st.integers(min_value=3, max_value=8),
)
def test_opt_dominance_property(seed, num_commodities, num_requests):
    """Property: OPT <= greedy offline <= max(online algorithms); all feasible."""
    workload = uniform_workload(
        num_requests=num_requests,
        num_commodities=num_commodities,
        num_points=4,
        max_demand=num_commodities,
        rng=seed,
    )
    instance = workload.instance
    opt = BruteForceSolver().solve(instance).total_cost
    greedy = GreedyOfflineSolver().solve(instance).total_cost
    pd = run_online(PDOMFLPAlgorithm(), instance).total_cost
    rand = run_online(RandOMFLPAlgorithm(), instance, rng=seed).total_cost
    assert opt <= greedy + 1e-9
    assert opt <= pd + 1e-9
    assert opt <= rand + 1e-9
