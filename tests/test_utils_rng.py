"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import child_rngs, ensure_rng, spawn_child_seeds, spawn_seeds


class TestEnsureRng:
    def test_from_int_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1_000_000, size=5)
        b = ensure_rng(42).integers(0, 1_000_000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(7)
        assert isinstance(ensure_rng(sequence), np.random.Generator)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnChildSeeds:
    def test_spawn_seeds_is_an_alias(self):
        assert spawn_seeds(123, 8) == spawn_child_seeds(123, 8)

    def test_prefix_stable(self):
        # The engine relies on this: growing a case grid keeps the child
        # seeds (and store addresses) of all existing cases.
        assert spawn_child_seeds(9, 12)[:5] == spawn_child_seeds(9, 5)

    def test_distinct_roots_diverge(self):
        assert spawn_child_seeds(0, 6) != spawn_child_seeds(1, 6)

    def test_children_are_63_bit_ints(self):
        for seed in spawn_child_seeds(2, 32):
            assert isinstance(seed, int)
            assert 0 <= seed < 2**63 - 1


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(123, 5) == spawn_seeds(123, 5)

    def test_distinct(self):
        seeds = spawn_seeds(0, 20)
        assert len(set(seeds)) == 20

    def test_count_zero(self):
        assert spawn_seeds(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_from_generator(self):
        seeds = spawn_seeds(np.random.default_rng(3), 4)
        assert len(seeds) == 4

    def test_child_rngs_independent_streams(self):
        rngs = child_rngs(9, 3)
        values = [r.uniform() for r in rngs]
        assert len(set(values)) == 3
