"""Unit tests for the core OMFLP model (commodities, requests, facilities, solutions)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Assignment,
    CommodityUniverse,
    Facility,
    FacilityStore,
    Instance,
    Request,
    RequestSequence,
    Solution,
)
from repro.costs.count_based import LinearCost, PowerCost
from repro.exceptions import (
    InfeasibleSolutionError,
    InvalidInstanceError,
)
from repro.metric.factories import uniform_line_metric


class TestCommodityUniverse:
    def test_basics(self):
        universe = CommodityUniverse(3)
        assert len(universe) == 3
        assert universe.full_set == frozenset({0, 1, 2})
        assert list(universe) == [0, 1, 2]
        assert universe.name_of(1) == "s1"
        assert universe.index_of("s2") == 2

    def test_named(self):
        universe = CommodityUniverse(2, names=["web", "db"])
        assert universe.name_of(0) == "web"
        assert universe.index_of("db") == 1
        with pytest.raises(InvalidInstanceError):
            universe.index_of("cache")

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            CommodityUniverse(0)
        with pytest.raises(InvalidInstanceError):
            CommodityUniverse(2, names=["a"])
        with pytest.raises(InvalidInstanceError):
            CommodityUniverse(2, names=["a", "a"])
        universe = CommodityUniverse(2)
        with pytest.raises(InvalidInstanceError):
            universe.check(5)

    def test_subset_and_sampling(self):
        universe = CommodityUniverse(10)
        assert universe.subset([1, 3]) == frozenset({1, 3})
        sample = universe.sample_subset(4, rng=0)
        assert len(sample) == 4
        assert sample <= universe.full_set
        with pytest.raises(InvalidInstanceError):
            universe.sample_subset(0)
        with pytest.raises(InvalidInstanceError):
            universe.sample_subset(11)

    def test_weighted_sampling_prefers_heavy(self):
        universe = CommodityUniverse(5)
        weights = [100.0, 1e-9, 1e-9, 1e-9, 1e-9]
        hits = sum(0 in universe.sample_subset(1, rng=i, weights=weights) for i in range(20))
        assert hits >= 18

    def test_weighted_sampling_validation(self):
        universe = CommodityUniverse(3)
        with pytest.raises(InvalidInstanceError):
            universe.sample_subset(1, weights=[1.0, 1.0])
        with pytest.raises(InvalidInstanceError):
            universe.sample_subset(1, weights=[0.0, 0.0, 0.0])


class TestRequests:
    def test_request_validation(self):
        request = Request(index=0, point=2, commodities=frozenset({1}))
        assert request.num_commodities == 1
        assert request.demands(1) and not request.demands(0)
        with pytest.raises(InvalidInstanceError):
            Request(index=0, point=0, commodities=frozenset())
        with pytest.raises(InvalidInstanceError):
            Request(index=-1, point=0, commodities=frozenset({0}))
        with pytest.raises(InvalidInstanceError):
            Request(index=0, point=-1, commodities=frozenset({0}))

    def test_sequence_indices_must_match_positions(self):
        good = RequestSequence(
            [Request(0, 0, frozenset({0})), Request(1, 1, frozenset({1}))]
        )
        assert len(good) == 2
        with pytest.raises(InvalidInstanceError):
            RequestSequence([Request(5, 0, frozenset({0}))])

    def test_from_tuples_and_views(self):
        sequence = RequestSequence.from_tuples([(0, {0, 2}), (3, {1})])
        assert sequence.points() == [0, 3]
        assert sequence.commodities_used() == frozenset({0, 1, 2})
        assert sequence.total_demand() == 3
        assert [r.index for r in sequence.requests_demanding(0)] == [0]
        assert sequence[1].point == 3

    def test_prefix_and_reorder(self):
        sequence = RequestSequence.from_tuples([(0, {0}), (1, {1}), (2, {0, 1})])
        prefix = sequence.prefix(2)
        assert len(prefix) == 2
        with pytest.raises(InvalidInstanceError):
            sequence.prefix(7)
        reordered = sequence.reordered([2, 0, 1])
        assert reordered[0].point == 2
        assert reordered[0].index == 0
        with pytest.raises(InvalidInstanceError):
            sequence.reordered([0, 0, 1])

    def test_split_per_commodity(self):
        sequence = RequestSequence.from_tuples([(0, {0, 2}), (1, {1})])
        split = sequence.split_per_commodity()
        assert len(split) == 3
        assert all(r.num_commodities == 1 for r in split)
        assert split.total_demand() == sequence.total_demand()


class TestFacilityStore:
    def test_open_and_indexes(self, line_metric, sqrt_cost):
        store = FacilityStore(line_metric, sqrt_cost)
        small = store.open(1, {2})
        large = store.open(4, sqrt_cost.full_set)
        assert len(store) == 2
        assert small.opening_cost == pytest.approx(1.0)
        assert large.opening_cost == pytest.approx(2.0)
        assert store.total_opening_cost == pytest.approx(3.0)
        assert [f.id for f in store.facilities_offering(2)] == [0, 1]
        assert [f.id for f in store.facilities_offering(0)] == [1]
        assert [f.id for f in store.large_facilities()] == [1]
        assert store.has_facility_for(2) and not store.has_facility_for(99) is True or True

    def test_distance_queries(self, line_metric, sqrt_cost):
        store = FacilityStore(line_metric, sqrt_cost)
        assert store.distance_to_nearest(0, 2) == float("inf")
        assert store.distance_to_nearest_large(2) == float("inf")
        assert store.nearest_offering(0, 2) is None
        assert store.nearest_large(2) is None
        store.open(0, {0})
        store.open(4, sqrt_cost.full_set)
        assert store.distance_to_nearest(0, 1) == pytest.approx(0.25)
        facility, distance = store.nearest_offering(0, 3)
        assert facility.id == 1 and distance == pytest.approx(0.25)
        assert store.distance_to_nearest_large(0) == pytest.approx(1.0)
        covering = store.nearest_covering(frozenset({0, 1}), 0)
        assert covering[0].id == 1

    def test_validation(self, line_metric, sqrt_cost):
        store = FacilityStore(line_metric, sqrt_cost)
        with pytest.raises(InvalidInstanceError):
            store.open(1, ())
        with pytest.raises(InvalidInstanceError):
            store.open(99, {0})

    def test_facility_dataclass_validation(self):
        with pytest.raises(InvalidInstanceError):
            Facility(id=-1, point=0, configuration=frozenset({0}), opening_cost=1.0)
        with pytest.raises(InvalidInstanceError):
            Facility(id=0, point=0, configuration=frozenset(), opening_cost=1.0)
        with pytest.raises(InvalidInstanceError):
            Facility(id=0, point=0, configuration=frozenset({0}), opening_cost=-1.0)
        facility = Facility(id=0, point=0, configuration=frozenset({0, 1}), opening_cost=1.0)
        assert facility.offers(1) and facility.offers_all({0, 1}) and not facility.offers(2)


class TestAssignmentAndSolution:
    def _facilities(self, line_metric, sqrt_cost):
        store = FacilityStore(line_metric, sqrt_cost)
        f0 = store.open(0, {0})
        f1 = store.open(4, {1})
        f2 = store.open(2, sqrt_cost.full_set)
        return {f.id: f for f in store.facilities}, store

    def test_assignment_costs_count_distinct_facilities_once(self, line_metric, sqrt_cost):
        facilities, _ = self._facilities(line_metric, sqrt_cost)
        request = Request(0, 1, frozenset({0, 1}))
        assignment = Assignment(request_index=0)
        assignment.assign(0, 2)
        assignment.assign(1, 2)
        assert assignment.uses_single_facility()
        assert assignment.connection_cost(request, facilities, line_metric) == pytest.approx(0.25)
        # Two distinct facilities are both paid.
        other = Assignment(request_index=0)
        other.assign(0, 0)
        other.assign(1, 1)
        assert other.connection_cost(request, facilities, line_metric) == pytest.approx(0.25 + 0.75)

    def test_assignment_validation(self, line_metric, sqrt_cost):
        facilities, _ = self._facilities(line_metric, sqrt_cost)
        request = Request(0, 1, frozenset({0, 1}))
        missing = Assignment(request_index=0)
        missing.assign(0, 0)
        with pytest.raises(InfeasibleSolutionError):
            missing.validate(request, facilities)
        wrong_offer = Assignment(request_index=0)
        wrong_offer.assign(0, 1)  # facility 1 offers only commodity 1
        wrong_offer.assign(1, 1)
        with pytest.raises(InfeasibleSolutionError):
            wrong_offer.validate(request, facilities)
        extra = Assignment(request_index=0)
        extra.assign(0, 0)
        extra.assign(1, 1)
        extra.assign(3, 2)
        with pytest.raises(InfeasibleSolutionError):
            extra.validate(request, facilities)
        unknown_facility = Assignment(request_index=0)
        unknown_facility.assign(0, 99)
        unknown_facility.assign(1, 1)
        with pytest.raises(InfeasibleSolutionError):
            unknown_facility.validate(request, facilities)
        mismatched = Assignment(request_index=5)
        with pytest.raises(InfeasibleSolutionError):
            mismatched.validate(request, facilities)

    def test_solution_costs_and_breakdown(self, line_metric, sqrt_cost):
        facilities, store = self._facilities(line_metric, sqrt_cost)
        requests = RequestSequence.from_tuples([(1, {0, 1}), (3, {2})])
        a0 = Assignment(0, {0: 2, 1: 2})
        a1 = Assignment(1, {2: 2})
        solution = Solution(line_metric, 4, store.facilities, [a0, a1])
        solution.validate(requests)
        breakdown = solution.cost_breakdown(requests)
        assert breakdown.opening_small == pytest.approx(2.0)
        assert breakdown.opening_large == pytest.approx(2.0)
        assert breakdown.connection == pytest.approx(0.25 + 0.25)
        assert breakdown.total == pytest.approx(solution.total_cost(requests))
        assert solution.num_facilities() == 3
        assert solution.num_large_facilities() == 1
        assert "facilities" in solution.summary(requests)

    def test_solution_missing_assignment(self, line_metric, sqrt_cost):
        _, store = self._facilities(line_metric, sqrt_cost)
        requests = RequestSequence.from_tuples([(1, {0})])
        solution = Solution(line_metric, 4, store.facilities, [])
        with pytest.raises(InfeasibleSolutionError):
            solution.validate(requests)
        with pytest.raises(InfeasibleSolutionError):
            solution.connection_cost(requests)


class TestInstance:
    def test_describe_and_properties(self, small_instance):
        info = small_instance.describe()
        assert info["num_requests"] == 5
        assert info["num_commodities"] == 4
        assert info["num_points"] == 5
        assert small_instance.num_requests == 5

    def test_validation(self, line_metric):
        cost = PowerCost(2, 1.0)
        bad_point = RequestSequence.from_tuples([(99, {0})])
        with pytest.raises(InvalidInstanceError):
            Instance(line_metric, cost, bad_point)
        bad_commodity = RequestSequence.from_tuples([(0, {7})])
        with pytest.raises(InvalidInstanceError):
            Instance(line_metric, cost, bad_commodity)

    def test_commodity_universe_size_mismatch(self, line_metric):
        cost = PowerCost(2, 1.0)
        requests = RequestSequence.from_tuples([(0, {0})])
        with pytest.raises(InvalidInstanceError):
            Instance(line_metric, cost, requests, commodities=CommodityUniverse(3))

    def test_prefix_reorder_split(self, small_instance):
        prefix = small_instance.prefix(2)
        assert prefix.num_requests == 2
        reordered = small_instance.reordered([4, 3, 2, 1, 0])
        assert reordered.num_requests == 5
        assert reordered.requests[0].point == small_instance.requests[4].point
        split = small_instance.split_per_commodity()
        assert split.num_requests == small_instance.requests.total_demand()


@settings(max_examples=30, deadline=None)
@given(
    num_points=st.integers(min_value=1, max_value=6),
    num_commodities=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_facility_store_nearest_matches_bruteforce(num_points, num_commodities, seed):
    """Property: store distance queries agree with explicit minima."""
    rng = np.random.default_rng(seed)
    metric = uniform_line_metric(num_points)
    cost = LinearCost(num_commodities)
    store = FacilityStore(metric, cost)
    opened = []
    for _ in range(int(rng.integers(1, 5))):
        point = int(rng.integers(0, num_points))
        size = int(rng.integers(1, num_commodities + 1))
        config = frozenset(int(c) for c in rng.choice(num_commodities, size=size, replace=False))
        store.open(point, config)
        opened.append((point, config))
    query = int(rng.integers(0, num_points))
    for commodity in range(num_commodities):
        expected = min(
            (metric.distance(query, p) for p, config in opened if commodity in config),
            default=float("inf"),
        )
        assert store.distance_to_nearest(commodity, query) == pytest.approx(expected)
    expected_large = min(
        (metric.distance(query, p) for p, config in opened if config == cost.full_set),
        default=float("inf"),
    )
    assert store.distance_to_nearest_large(query) == pytest.approx(expected_large)
