"""Shared fixtures and helpers for the OMFLP reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.requests import Request, RequestSequence
from repro.costs.count_based import AdversaryCost, ConstantCost, LinearCost, PowerCost
from repro.metric.line import LineMetric
from repro.metric.matrix import ExplicitMetric
from repro.metric.single_point import SinglePointMetric
from repro.metric.factories import uniform_line_metric
from repro.workloads.uniform import uniform_workload


@pytest.fixture
def line_metric() -> LineMetric:
    """Five equally spaced points on [0, 1]."""
    return uniform_line_metric(5)


@pytest.fixture
def square_metric() -> ExplicitMetric:
    """A 4-point metric given explicitly (unit square under L1)."""
    matrix = [
        [0.0, 1.0, 1.0, 2.0],
        [1.0, 0.0, 2.0, 1.0],
        [1.0, 2.0, 0.0, 1.0],
        [2.0, 1.0, 1.0, 0.0],
    ]
    return ExplicitMetric(matrix)


@pytest.fixture
def sqrt_cost() -> PowerCost:
    """Class-C cost with x = 1 (square root) over 4 commodities."""
    return PowerCost(num_commodities=4, exponent_x=1.0)


@pytest.fixture
def small_instance(line_metric, sqrt_cost) -> Instance:
    """A 5-request instance over 4 commodities on the line."""
    requests = RequestSequence.from_tuples(
        [
            (0, {0, 1}),
            (4, {2}),
            (2, {0, 3}),
            (1, {0, 1, 2, 3}),
            (3, {1}),
        ]
    )
    return Instance(line_metric, sqrt_cost, requests, name="small-line")


@pytest.fixture
def tiny_instance() -> Instance:
    """A 4-request, 3-commodity, 4-point instance small enough for brute force."""
    metric = uniform_line_metric(4)
    cost = PowerCost(num_commodities=3, exponent_x=1.0)
    requests = RequestSequence.from_tuples(
        [(1, {0, 1}), (3, {2}), (2, {0, 2}), (1, {0, 1, 2})]
    )
    return Instance(metric, cost, requests, name="tiny-line")


@pytest.fixture
def single_point_instance_constant() -> Instance:
    """All 6 commodities requested one at a time at a single point, constant cost."""
    requests = RequestSequence.from_tuples([(0, {e}) for e in range(6)])
    return Instance(SinglePointMetric(), ConstantCost(6), requests, name="single-point-constant")


def random_small_instance(seed: int, *, num_requests: int = 10, num_commodities: int = 3,
                          num_points: int = 5) -> Instance:
    """Deterministic small random instance for cross-algorithm comparisons."""
    return uniform_workload(
        num_requests=num_requests,
        num_commodities=num_commodities,
        num_points=num_points,
        max_demand=min(num_commodities, 3),
        rng=seed,
    ).instance
