"""Bit-identical equivalence of snapshot→restore→continue vs uninterrupted runs.

The durable-session layer (:mod:`repro.service.snapshot`) claims that a
session snapshotted after ``k`` requests and restored in a fresh
process-like context — new algorithm object, freshly rebuilt metric/cost,
snapshot round-tripped through its strict-JSON codec — continues the stream
**bit-identically** to the uninterrupted run: the same remaining-stream
events, the same final costs, the same facility-opening sequence and the
same assignment trace.

This harness pins that claim for every registered online algorithm over a
grid of metric/cost scenarios, seeds and both hot paths
(``use_accel=True``/``False``), mirroring the accel-equivalence harness of
``tests/test_accel_equivalence.py``.  Equality is asserted with ``==`` on
floats throughout — "close" is not good enough; resume is exact or broken.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import pytest

from repro.algorithms.base import OnlineAlgorithm, OnlineResult
from repro.algorithms.online.always_large import AlwaysLargeGreedy
from repro.algorithms.online.fotakis_ofl import FotakisOFLAlgorithm
from repro.algorithms.online.meyerson_ofl import MeyersonOFLAlgorithm
from repro.algorithms.online.no_prediction import NoPredictionGreedy
from repro.algorithms.online.pd_omflp import PDOMFLPAlgorithm
from repro.algorithms.online.per_commodity import PerCommodityAlgorithm
from repro.algorithms.online.rand_omflp import RandOMFLPAlgorithm
from repro.algorithms.online.threshold import ThresholdPDAlgorithm
from repro.api.session import OnlineSession
from repro.core.commodities import CommodityUniverse
from repro.core.instance import Instance
from repro.core.requests import Request, RequestSequence
from repro.costs.count_based import PowerCost
from repro.costs.general import PerPointScaledCost
from repro.exceptions import SnapshotError
from repro.metric.factories import random_euclidean_metric, random_line_metric
from repro.metric.grid import GridMetric
from repro.service.snapshot import SessionSnapshot
from repro.utils.rng import ensure_rng
from repro.workloads.clustered import clustered_workload

SEEDS = [0, 1, 2]

#: Requests served before the snapshot is taken.
SPLIT = 7


# ---------------------------------------------------------------------------
# Scenario grid: (name, num_commodities, instance builder)
# ---------------------------------------------------------------------------
def _random_requests(metric, num_commodities: int, num_requests: int, rng) -> RequestSequence:
    requests = []
    for index in range(num_requests):
        point = int(rng.integers(0, metric.num_points))
        size = int(rng.integers(1, num_commodities + 1))
        commodities = rng.choice(num_commodities, size=size, replace=False)
        requests.append(
            Request(index=index, point=point, commodities=frozenset(int(e) for e in commodities))
        )
    return RequestSequence(requests)


def _instance_on(metric, num_commodities: int, seed: int, *, scaled_costs: bool = False):
    rng = ensure_rng(seed)
    cost = PowerCost(num_commodities, 1.0, scale=0.5)
    if scaled_costs:
        scales = rng.uniform(0.5, 8.0, size=metric.num_points)
        cost = PerPointScaledCost(cost, scales)
    requests = _random_requests(metric, num_commodities, 18, rng)
    return Instance(metric, cost, requests, commodities=CommodityUniverse(num_commodities))


def _line_single(seed: int) -> Instance:
    return _instance_on(random_line_metric(24, rng=seed), 1, seed, scaled_costs=True)


def _euclidean_single(seed: int) -> Instance:
    return _instance_on(random_euclidean_metric(30, rng=seed), 1, seed, scaled_costs=True)


def _clustered_multi(seed: int) -> Instance:
    return clustered_workload(
        num_requests=18, num_commodities=5, num_clusters=3, rng=seed
    ).instance


def _grid_multi(seed: int) -> Instance:
    return _instance_on(GridMetric.full_grid(5, 5), 4, seed, scaled_costs=True)


SCENARIOS: List[Tuple[str, int, Callable[[int], Instance]]] = [
    ("line-single", 1, _line_single),
    ("euclidean-single", 1, _euclidean_single),
    ("clustered-euclidean", 5, _clustered_multi),
    ("grid-l1", 4, _grid_multi),
]

#: name -> (factory taking (num_commodities, use_accel), single_commodity_only)
ALGORITHMS: Dict[str, Tuple[Callable[[int, bool], OnlineAlgorithm], bool]] = {
    "meyerson-ofl": (lambda c, ua: MeyersonOFLAlgorithm(use_accel=ua), True),
    "fotakis-ofl": (lambda c, ua: FotakisOFLAlgorithm(use_accel=ua), True),
    "pd-omflp": (lambda c, ua: PDOMFLPAlgorithm(use_accel=ua), False),
    "rand-omflp": (lambda c, ua: RandOMFLPAlgorithm(use_accel=ua), False),
    "threshold-pd": (
        lambda c, ua: ThresholdPDAlgorithm(c, excluded=(0,), use_accel=ua),
        False,
    ),
    "per-commodity-fotakis": (
        lambda c, ua: PerCommodityAlgorithm("fotakis", use_accel=ua),
        False,
    ),
    "per-commodity-meyerson": (
        lambda c, ua: PerCommodityAlgorithm("meyerson", use_accel=ua),
        False,
    ),
    "no-prediction-greedy": (lambda c, ua: NoPredictionGreedy(), False),
    "always-large-greedy": (lambda c, ua: AlwaysLargeGreedy(), False),
}

CASES = [
    pytest.param(
        algorithm_name,
        scenario_name,
        seed,
        use_accel,
        id=f"{algorithm_name}-{scenario_name}-s{seed}-{'accel' if use_accel else 'ref'}",
    )
    for algorithm_name, (_, single_only) in ALGORITHMS.items()
    for scenario_name, num_commodities, _ in SCENARIOS
    if single_only == (num_commodities == 1)
    for seed in SEEDS
    for use_accel in (True, False)
]


# ---------------------------------------------------------------------------
# Fingerprinting one run
# ---------------------------------------------------------------------------
def _facility_sequence(result: OnlineResult) -> List[Tuple[int, int, Tuple[int, ...], float]]:
    return [
        (f.id, f.point, tuple(sorted(f.configuration)), f.opening_cost)
        for f in result.solution.facilities
    ]


def _assignment_trace(result: OnlineResult) -> List[Tuple[int, Tuple[Tuple[int, int], ...]]]:
    return [
        (a.request_index, tuple(sorted(a.facility_of_commodity.items())))
        for a in result.solution.assignments
    ]


def _session_for(algorithm_name: str, scenario_name: str, seed: int, use_accel: bool):
    """A fresh (session, instance) pair — components rebuilt from scratch."""
    factory, _ = ALGORITHMS[algorithm_name]
    builder = next(b for name, _, b in SCENARIOS if name == scenario_name)
    num_commodities = next(c for name, c, _ in SCENARIOS if name == scenario_name)
    instance = builder(seed)
    session = OnlineSession(
        factory(num_commodities, use_accel),
        instance.metric,
        instance.cost_function,
        commodities=instance.commodities,
        rng=seed,
        trace=True,
        use_accel=use_accel,
    )
    return session, instance


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("algorithm_name,scenario_name,seed,use_accel", CASES)
def test_resume_is_bit_identical_to_uninterrupted(
    algorithm_name, scenario_name, seed, use_accel
):
    # Uninterrupted reference run.
    full, instance = _session_for(algorithm_name, scenario_name, seed, use_accel)
    full_events = [full.submit(r.point, r.commodities) for r in instance.requests]
    full_record = full.finalize()

    # Interrupted run: serve SPLIT requests, snapshot, round-trip the codec.
    partial, instance2 = _session_for(algorithm_name, scenario_name, seed, use_accel)
    partial_events = [
        partial.submit(r.point, r.commodities) for r in instance2.requests[:SPLIT]
    ]
    snapshot = SessionSnapshot.from_json(partial.snapshot().to_json())

    # Restore against freshly rebuilt components (a fresh-process stand-in;
    # the partial session is never touched again).
    factory, _ = ALGORITHMS[algorithm_name]
    num_commodities = next(c for name, c, _ in SCENARIOS if name == scenario_name)
    builder = next(b for name, _, b in SCENARIOS if name == scenario_name)
    instance3 = builder(seed)
    resumed = OnlineSession.restore(
        snapshot,
        algorithm=factory(num_commodities, use_accel),
        metric=instance3.metric,
        cost=instance3.cost_function,
        commodities=instance3.commodities,
    )
    assert resumed.num_requests == SPLIT
    assert resumed.total_cost == partial.total_cost

    resumed_events = [
        resumed.submit(r.point, r.commodities) for r in instance3.requests[SPLIT:]
    ]
    resumed_record = resumed.finalize()

    # The pre-snapshot prefix and the post-restore remainder must both equal
    # the uninterrupted stream, event for event (exact float equality —
    # AssignmentEvent equality compares every cost field).
    assert partial_events == full_events[:SPLIT]
    assert resumed_events == full_events[SPLIT:]

    # Exact cost equality on the finalized records.
    assert resumed_record.total_cost == full_record.total_cost
    assert resumed_record.opening_cost == full_record.opening_cost
    assert resumed_record.connection_cost == full_record.connection_cost

    # Identical facility-opening sequences and assignment traces.
    assert _facility_sequence(resumed_record.source) == _facility_sequence(full_record.source)
    assert _assignment_trace(resumed_record.source) == _assignment_trace(full_record.source)

    # Identical trace transcripts (openings, assignments, coin flips, duals).
    assert [e.to_dict() for e in resumed_record.trace.events] == [
        e.to_dict() for e in full_record.trace.events
    ]


def test_snapshot_restores_from_embedded_spec():
    """A spec-embedded snapshot restores without re-supplying components."""
    spec = {
        "algorithm": "rand-omflp",
        "workload": {
            "kind": "uniform",
            "num_requests": 12,
            "num_commodities": 4,
            "num_points": 10,
        },
        "seed": 5,
    }
    from repro.service.snapshot import components_from_spec

    algorithm, instance, generator = components_from_spec(spec)
    session = OnlineSession(
        algorithm,
        instance.metric,
        instance.cost_function,
        commodities=instance.commodities,
        rng=generator,
    )
    for request in instance.requests[:5]:
        session.submit(request.point, request.commodities)
    snapshot = SessionSnapshot.from_json(session.snapshot(spec=spec).to_json())

    resumed = OnlineSession.restore(snapshot)
    for request in instance.requests[5:]:
        session.submit(request.point, request.commodities)
        resumed.submit(request.point, request.commodities)
    assert resumed.finalize().total_cost == session.finalize().total_cost


def test_restore_rejects_mismatched_codec_versions():
    session, _ = _session_for("pd-omflp", "grid-l1", 0, True)
    data = session.snapshot().to_dict()
    data["version"] = 999
    with pytest.raises(SnapshotError, match="version"):
        SessionSnapshot.from_dict(data)
    data["version"] = 1
    data["format"] = "something-else"
    with pytest.raises(SnapshotError, match="format"):
        SessionSnapshot.from_dict(data)


def test_restore_requires_components_or_spec():
    session, _ = _session_for("pd-omflp", "grid-l1", 0, True)
    snapshot = session.snapshot()
    with pytest.raises(SnapshotError, match="embedded spec"):
        OnlineSession.restore(snapshot)


def test_snapshot_refuses_finalized_sessions():
    session, instance = _session_for("no-prediction-greedy", "grid-l1", 0, True)
    session.submit(instance.requests[0].point, instance.requests[0].commodities)
    session.finalize()
    with pytest.raises(SnapshotError, match="finalized"):
        session.snapshot()


def test_streaming_scenario_session_resumes_bit_identically():
    """A scenario-backed session snapshot resumes stream *and* algorithm.

    The scenario engine case of this harness: a nested combinator stream
    (mixture of burst + zipf) feeding rand-omflp is snapshotted mid-stream,
    round-tripped through the strict-JSON codec, and the restored
    ScenarioSession must replay the remaining arrivals and costs exactly.
    """
    from repro.scenarios import ScenarioSession

    spec = {
        "algorithm": "rand-omflp",
        "scenario": {
            "kind": "mixture",
            "weights": [2.0, 1.0],
            "children": [
                {"kind": "burst", "num_requests": 24, "num_commodities": 5,
                 "num_points": 16, "num_hotspots": 2, "burst_size_mean": 4.0},
                {"kind": "zipf", "num_requests": 12, "num_commodities": 5,
                 "num_points": 16},
            ],
        },
        "seed": 9,
    }
    reference = ScenarioSession(spec)
    reference_events = reference.advance()
    reference_record = reference.finalize()

    session = ScenarioSession(spec)
    head = session.advance(SPLIT)
    snapshot = SessionSnapshot.from_json(session.snapshot().to_json())
    resumed = ScenarioSession.restore(snapshot)
    assert resumed.position == SPLIT
    tail = resumed.advance()
    assert head + tail == reference_events
    record = resumed.finalize()
    assert record.total_cost == reference_record.total_cost
    assert record.opening_cost == reference_record.opening_cost
    assert record.connection_cost == reference_record.connection_cost
    assert _facility_sequence(record.source) == _facility_sequence(
        reference_record.source
    )
    assert _assignment_trace(record.source) == _assignment_trace(
        reference_record.source
    )


def test_pd_snapshot_refuses_cross_accel_restore():
    """A PD snapshot records which hot path produced it and rejects the other."""
    session, instance = _session_for("pd-omflp", "clustered-euclidean", 0, True)
    for request in instance.requests[:4]:
        session.submit(request.point, request.commodities)
    snapshot = session.snapshot()
    algorithm = PDOMFLPAlgorithm(use_accel=False)
    instance2 = _clustered_multi(0)
    algorithm.prepare(instance2, None, None)
    with pytest.raises(SnapshotError, match="hot path"):
        algorithm.load_state_dict(snapshot.algorithm_state)
