"""Tests for the unified ``repro.api`` facade.

Covers the component registries (lookup, unknown-name errors, extension),
``RunSpec`` round-tripping and validation, the ``run``/``run_many``/``run_grid``
entry points, ``RunRecord`` serialization, streaming ``OnlineSession``
equivalence with batch ``run_online``, and the ``repro spec`` CLI command.
"""

import json

import pytest

from repro.algorithms.base import run_online
from repro.algorithms.online.pd_omflp import PDOMFLPAlgorithm
from repro.algorithms.online.rand_omflp import RandOMFLPAlgorithm
from repro.api import (
    ALGORITHMS,
    COSTS,
    METRICS,
    SOLVERS,
    WORKLOADS,
    OnlineSession,
    Registry,
    RunRecord,
    RunSpec,
    records_to_csv,
    run,
    run_grid,
    run_many,
)
from repro.analysis.runner import ExperimentResult
from repro.analysis.sweep import ParameterGrid
from repro.costs.count_based import PowerCost
from repro.exceptions import (
    AlgorithmError,
    ExperimentError,
    ReproError,
    UnknownComponentError,
)
from repro.experiments.cli import main
from repro.metric.factories import uniform_line_metric
from repro.workloads.uniform import uniform_workload

DICT_SPEC = {
    "algorithm": "pd-omflp",
    "metric": {"kind": "uniform-line", "num_points": 8},
    "cost": {"kind": "power", "num_commodities": 4, "exponent_x": 1.0},
    "requests": [[1, [0, 1]], [6, [2]], [2, [0, 3]]],
    "seed": 0,
}


class TestRegistry:
    def test_stock_registries_are_populated(self):
        assert "uniform-line" in METRICS
        assert "power" in COSTS
        assert "uniform" in WORKLOADS
        assert "pd-omflp" in ALGORITHMS
        assert "local-search" in SOLVERS

    def test_build_by_name(self):
        metric = METRICS.build("uniform-line", num_points=5)
        assert metric.num_points == 5
        algorithm = ALGORITHMS.build("pd-omflp")
        assert algorithm.name == "pd-omflp"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(UnknownComponentError, match="pd-omflp"):
            ALGORITHMS.get("not-an-algorithm")

    def test_unknown_near_miss_gets_did_you_mean(self):
        with pytest.raises(UnknownComponentError, match="did you mean 'pd-omflp'"):
            ALGORITHMS.get("pd-omfpl")
        with pytest.raises(UnknownComponentError, match="did you mean 'uniform-line'"):
            METRICS.get("uniform_line")
        # Distant names get no suggestion, just the registered list.
        with pytest.raises(UnknownComponentError) as excinfo:
            COSTS.get("zzzzzz")
        assert "did you mean" not in str(excinfo.value)

    def test_decorator_registration_and_duplicate_rejection(self):
        registry = Registry("widget")

        @registry.register("w")
        def build_widget(size=1):
            return ("widget", size)

        assert registry.build("w", size=3) == ("widget", 3)
        assert registry.names() == ["w"]
        with pytest.raises(ReproError, match="already registered"):
            registry.add("w", build_widget)

    def test_accepts_detects_rng_parameter(self):
        assert METRICS.accepts("random-euclidean", "rng")
        assert not METRICS.accepts("uniform-line", "rng")


class TestRunSpec:
    def test_from_dict_to_dict_round_trip(self):
        spec = RunSpec.from_dict(DICT_SPEC)
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.to_dict() == spec.to_dict()

    def test_workload_spec_round_trip(self):
        data = {
            "algorithm": "rand-omflp",
            "workload": {"kind": "uniform", "num_requests": 10, "num_commodities": 4},
            "seed": 7,
            "trace": True,
        }
        spec = RunSpec.from_dict(data)
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_string_algorithm_normalizes(self):
        spec = RunSpec.from_dict(dict(DICT_SPEC, algorithm="pd-omflp"))
        assert spec.algorithm == {"kind": "pd-omflp"}

    def test_workload_excludes_explicit_parts(self):
        with pytest.raises(ExperimentError, match="not both"):
            RunSpec.from_dict(
                dict(DICT_SPEC, workload={"kind": "uniform", "num_requests": 5})
            )

    def test_missing_parts_rejected(self):
        with pytest.raises(ExperimentError, match="missing: requests"):
            RunSpec(algorithm="pd-omflp", metric="single-point", cost={"kind": "power",
                    "num_commodities": 2, "exponent_x": 1.0})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ExperimentError, match="unknown RunSpec keys"):
            RunSpec.from_dict(dict(DICT_SPEC, banana=1))

    def test_unknown_algorithm_reported_with_both_registries(self):
        spec = RunSpec.from_dict(dict(DICT_SPEC, algorithm="nope"))
        with pytest.raises(UnknownComponentError, match="offline solvers"):
            spec.mode()

    def test_live_objects_run_but_do_not_serialize(self):
        spec = RunSpec(
            algorithm=PDOMFLPAlgorithm(),
            metric=uniform_line_metric(8),
            cost=PowerCost(4, 1.0),
            requests=[(1, (0, 1)), (6, (2,))],
        )
        record = run(spec)
        assert record.total_cost > 0
        assert not spec.is_declarative()
        with pytest.raises(ExperimentError, match="live"):
            spec.to_dict()

    def test_mode_resolution(self):
        assert RunSpec.from_dict(DICT_SPEC).mode() == "online"
        assert RunSpec.from_dict(dict(DICT_SPEC, algorithm="greedy")).mode() == "offline"


class TestRun:
    def test_dict_scenario_runs_end_to_end(self):
        record = run(RunSpec.from_dict(DICT_SPEC))
        assert record.kind == "online"
        assert record.algorithm == "pd-omflp"
        assert record.num_requests == 3
        assert record.total_cost == pytest.approx(
            record.opening_cost + record.connection_cost
        )
        assert record.spec == RunSpec.from_dict(DICT_SPEC).to_dict()

    def test_plain_dict_accepted(self):
        assert run(DICT_SPEC).total_cost == run(RunSpec.from_dict(DICT_SPEC)).total_cost

    def test_matches_legacy_run_online(self, small_instance):
        legacy = run_online(PDOMFLPAlgorithm(), small_instance)
        spec = RunSpec(
            algorithm=PDOMFLPAlgorithm(),
            metric=small_instance.metric,
            cost=small_instance.cost_function,
            requests=[(r.point, tuple(r.commodities)) for r in small_instance.requests],
        )
        assert run(spec).total_cost == pytest.approx(legacy.total_cost)

    def test_offline_solver_spec(self):
        record = run(
            {
                "algorithm": "greedy",
                "workload": {"kind": "uniform", "num_requests": 12, "num_commodities": 4},
                "seed": 2,
            }
        )
        assert record.kind == "offline"
        assert record.num_facilities >= 1

    def test_workload_generation_is_seeded(self):
        spec = {
            "algorithm": "rand-omflp",
            "workload": {"kind": "clustered", "num_requests": 20, "num_commodities": 6},
            "seed": 9,
        }
        assert run(spec).total_cost == run(spec).total_cost

    def test_run_many_matches_serial(self):
        specs = [dict(DICT_SPEC, seed=s) for s in range(3)]
        records = run_many(specs)
        assert [r.total_cost for r in records] == [run(s).total_cost for s in specs]

    def test_run_grid_expands_dotted_keys(self):
        base = {
            "algorithm": "pd-omflp",
            "workload": {"kind": "uniform", "num_requests": 8, "num_commodities": 4},
            "seed": 0,
        }
        records = run_grid(
            base, ParameterGrid({"workload.num_commodities": [2, 4], "seed": [0, 1]})
        )
        assert len(records) == 4
        sizes = {r.spec["workload"]["num_commodities"] for r in records}
        assert sizes == {2, 4}


class TestRunRecord:
    def test_row_and_json_forms(self):
        record = run(DICT_SPEC)
        row = record.to_row()
        assert set(RunRecord.ROW_FIELDS) == set(row)
        parsed = json.loads(record.to_json())
        assert parsed["algorithm"] == "pd-omflp"
        assert parsed["spec"]["algorithm"] == {"kind": "pd-omflp"}

    def test_solution_and_trace_reachable(self):
        record = run(dict(DICT_SPEC, trace=True))
        assert record.solution is not None
        assert record.trace is not None and len(record.trace.events) > 0

    def test_records_to_csv(self, tmp_path):
        records = run_many([dict(DICT_SPEC, seed=s) for s in range(2)])
        path = records_to_csv(records, tmp_path / "sub" / "rows.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert lines[0].startswith("kind,algorithm,instance,total_cost")

    def test_experiment_result_from_records(self):
        records = run_many([dict(DICT_SPEC, seed=s) for s in range(2)])
        result = ExperimentResult.from_records("api-batch", "API batch", records)
        assert len(result.rows) == 2
        assert "total_cost" in result.rows[0]


class TestOnlineSession:
    @pytest.mark.parametrize("algorithm_cls", [PDOMFLPAlgorithm, RandOMFLPAlgorithm])
    def test_streaming_equals_batch(self, algorithm_cls):
        workload = uniform_workload(
            num_requests=25, num_commodities=6, num_points=16, rng=5
        )
        instance = workload.instance
        batch = run_online(algorithm_cls(), instance, rng=11)
        session = OnlineSession(
            algorithm_cls(), instance.metric, instance.cost_function, rng=11
        )
        for request in instance.requests:
            session.submit(request.point, request.commodities)
        record = session.finalize()
        # Bit-identical, not approximately equal: one shared code path.
        assert record.total_cost == batch.total_cost
        assert record.opening_cost == batch.opening_cost
        assert record.connection_cost == batch.connection_cost

    def test_incremental_totals_match_final_record(self):
        session = OnlineSession(
            PDOMFLPAlgorithm(), uniform_line_metric(8), PowerCost(4, 1.0)
        )
        events = session.submit_many([(1, {0, 1}), (6, {2}), (2, {0, 3})])
        assert events[-1].total_cost_so_far == pytest.approx(session.total_cost)
        record = session.finalize()
        assert record.total_cost == pytest.approx(events[-1].total_cost_so_far)
        assert record.num_requests == 3

    def test_events_report_incremental_costs(self):
        session = OnlineSession(
            PDOMFLPAlgorithm(), uniform_line_metric(8), PowerCost(4, 1.0)
        )
        first = session.submit(1, {0, 1})
        assert first.request_index == 0
        assert first.opening_cost_delta > 0  # must build something for request 0
        assert first.facility_ids
        assert first.cost_delta == pytest.approx(first.total_cost_so_far)
        second = session.submit(1, {0, 1})  # identical request: reuse is free-ish
        assert second.total_cost_so_far >= first.total_cost_so_far

    def test_unknown_point_and_commodity_rejected(self):
        session = OnlineSession(
            PDOMFLPAlgorithm(), uniform_line_metric(4), PowerCost(2, 1.0)
        )
        with pytest.raises(Exception, match="unknown point"):
            session.submit(99, {0})
        with pytest.raises(Exception):
            session.submit(0, {5})

    def test_submit_after_finalize_rejected(self):
        session = OnlineSession(
            PDOMFLPAlgorithm(), uniform_line_metric(4), PowerCost(2, 1.0)
        )
        session.submit(0, {0})
        record = session.finalize()
        assert session.finalize() is record  # idempotent
        with pytest.raises(AlgorithmError, match="finalized"):
            session.submit(1, {1})

    def test_empty_session_finalizes(self):
        session = OnlineSession(
            PDOMFLPAlgorithm(), uniform_line_metric(4), PowerCost(2, 1.0)
        )
        record = session.finalize()
        assert record.total_cost == 0.0
        assert record.num_requests == 0

    def test_numpy_integer_seed_recorded(self):
        import numpy as np

        session = OnlineSession(
            PDOMFLPAlgorithm(),
            uniform_line_metric(4),
            PowerCost(2, 1.0),
            rng=np.int64(5),
        )
        session.submit(0, {0})
        assert session.finalize().seed == 5

    def test_generator_rng_keeps_provenance_via_rng_state(self):
        # Regression: a session started from a live generator used to lose
        # all seed provenance; the record now carries the serialized
        # bit-generator state, and replaying from it is bit-identical.
        import numpy as np

        from repro.utils.rng import rng_from_state

        generator = np.random.default_rng(123)
        generator.uniform(size=7)  # advance: not equivalent to seed 123
        session = OnlineSession(
            RandOMFLPAlgorithm(), uniform_line_metric(8), PowerCost(4, 1.0), rng=generator
        )
        events = session.submit_many([(1, {0, 1}), (6, {2}), (2, {0, 3})])
        record = session.finalize()
        assert record.seed is None
        assert record.rng_state is not None
        assert "rng_state" in record.to_dict()
        json.dumps(record.to_dict())  # JSON-compatible provenance

        replay = OnlineSession(
            RandOMFLPAlgorithm(),
            uniform_line_metric(8),
            PowerCost(4, 1.0),
            rng=rng_from_state(record.rng_state),
        )
        replayed = replay.submit_many([(1, {0, 1}), (6, {2}), (2, {0, 3})])
        assert replayed == events
        assert replay.finalize().total_cost == record.total_cost

    def test_int_seeded_record_also_carries_rng_state(self):
        session = OnlineSession(
            PDOMFLPAlgorithm(), uniform_line_metric(4), PowerCost(2, 1.0), rng=7
        )
        session.submit(0, {0})
        record = session.finalize()
        assert record.seed == 7
        assert record.rng_state is not None

    def test_assignment_event_dict_round_trip(self):
        session = OnlineSession(
            PDOMFLPAlgorithm(), uniform_line_metric(8), PowerCost(4, 1.0)
        )
        for event in session.submit_many([(1, {0, 1}), (6, {2}), (2, {0, 3})]):
            data = event.to_dict()
            # Wire-protocol-ready: strict JSON, frozensets as sorted lists.
            assert data["commodities"] == sorted(event.commodities)
            assert isinstance(data["facility_ids"], list)
            rebuilt = type(event).from_dict(json.loads(json.dumps(data)))
            assert rebuilt == event

    def test_legacy_run_online_passes_full_instance_to_prepare(self, small_instance):
        # Regression: the batch shim must hand algorithms the caller's real
        # instance, not the session's requestless one (known-horizon
        # algorithms read instance.requests in prepare()).
        seen = {}

        class HorizonProbe(PDOMFLPAlgorithm):
            def prepare(self, instance, state, rng):
                seen["n"] = instance.num_requests
                super().prepare(instance, state, rng)

        run_online(HorizonProbe(), small_instance)
        assert seen["n"] == small_instance.num_requests


class TestCLISpec:
    def test_spec_command_smoke(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(DICT_SPEC))
        csv_path = tmp_path / "rows.csv"
        assert main(["spec", str(path), "--csv", str(csv_path)]) == 0
        output = capsys.readouterr().out
        assert '"algorithm": "pd-omflp"' in output
        assert csv_path.exists()

    def test_spec_command_seed_override(self, tmp_path, capsys):
        data = {
            "algorithm": "rand-omflp",
            "workload": {"kind": "uniform", "num_requests": 10, "num_commodities": 4},
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(data))
        assert main(["spec", str(path), "--seed", "4"]) == 0
        assert '"seed": 4' in capsys.readouterr().out
