"""Tests for the deterministic primal-dual algorithm PD-OMFLP (Algorithm 1)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.base import run_online
from repro.algorithms.offline.brute_force import BruteForceSolver
from repro.algorithms.online.pd_omflp import PDOMFLPAlgorithm
from repro.algorithms.online.threshold import ThresholdPDAlgorithm, tuned_pd_for_power_cost
from repro.core.instance import Instance
from repro.core.requests import RequestSequence
from repro.costs.count_based import AdversaryCost, ConstantCost, LinearCost, PowerCost
from repro.dual import check_dual_feasibility, paper_scaling_factor
from repro.exceptions import AlgorithmError
from repro.metric.factories import uniform_line_metric
from repro.metric.single_point import SinglePointMetric
from repro.workloads.uniform import uniform_workload
from tests.conftest import random_small_instance


class TestPDOnMicroInstances:
    def test_single_request_opens_cheapest_small_facility(self):
        """One request, one commodity: PD pays exactly the cheapest opening option."""
        metric = uniform_line_metric(3)
        cost = ConstantCost(1, point_scales=[5.0, 1.0, 5.0])
        requests = RequestSequence.from_tuples([(0, {0})])
        instance = Instance(metric, cost, requests)
        result = run_online(PDOMFLPAlgorithm(), instance)
        # Cheapest option: open at point 1 (cost 1) and connect over distance 0.5,
        # rather than opening at point 0 for cost 5.
        assert result.total_cost == pytest.approx(1.5)
        assert result.solution.facilities[0].point == 1

    def test_second_request_at_same_point_connects_for_free(self):
        metric = SinglePointMetric()
        cost = ConstantCost(2)
        requests = RequestSequence.from_tuples([(0, {0}), (0, {0})])
        instance = Instance(metric, cost, requests)
        result = run_online(PDOMFLPAlgorithm(), instance)
        assert result.total_cost == pytest.approx(1.0)
        assert result.solution.num_facilities() == 1

    def test_switches_to_large_facility_under_constant_cost(
        self, single_point_instance_constant
    ):
        """With f(sigma) = 1, PD opens one small facility then one large facility."""
        result = run_online(PDOMFLPAlgorithm(), single_point_instance_constant)
        assert result.total_cost == pytest.approx(2.0)
        assert result.solution.num_large_facilities() == 1
        assert result.solution.num_facilities() == 2

    def test_adversary_cost_pays_about_sqrt_s(self):
        """On the Theorem-2 instance PD pays Θ(sqrt(|S|)) while OPT pays 1."""
        num_commodities = 25
        cost = AdversaryCost(num_commodities)
        requests = RequestSequence.from_tuples([(0, {e}) for e in range(5)])
        instance = Instance(SinglePointMetric(), cost, requests)
        result = run_online(PDOMFLPAlgorithm(), instance)
        assert result.total_cost == pytest.approx(5.0)  # sqrt(25) singleton facilities

    def test_far_requests_get_their_own_facilities(self):
        metric = uniform_line_metric(2, length=100.0)
        cost = ConstantCost(1)
        requests = RequestSequence.from_tuples([(0, {0}), (1, {0})])
        instance = Instance(metric, cost, requests)
        result = run_online(PDOMFLPAlgorithm(), instance)
        assert result.solution.num_facilities() == 2
        assert result.connection_cost == pytest.approx(0.0)

    def test_matches_optimum_on_tiny_instance(self, tiny_instance):
        result = run_online(PDOMFLPAlgorithm(), tiny_instance)
        opt = BruteForceSolver().solve(tiny_instance).total_cost
        assert result.total_cost >= opt - 1e-9
        assert result.total_cost <= 3 * math.sqrt(3) * opt  # far below the worst-case bound


class TestPDInvariants:
    @pytest.mark.parametrize("seed", range(6))
    def test_feasible_and_corollary8_on_random_instances(self, seed):
        instance = random_small_instance(seed, num_requests=12, num_commodities=4, num_points=6)
        algorithm = PDOMFLPAlgorithm()
        result = run_online(algorithm, instance)
        result.solution.validate(instance.requests)
        duals = result.duals
        # Corollary 8: primal cost <= 3 * sum of duals.
        assert result.total_cost <= 3.0 * duals.total() + 1e-9
        # Every request has one dual value per demanded commodity.
        for request in instance.requests:
            for commodity in request.commodities:
                assert duals.get(request.index, commodity) >= 0.0

    @pytest.mark.parametrize("seed", range(4))
    def test_corollary17_gamma_feasibility(self, seed):
        instance = random_small_instance(seed, num_requests=10, num_commodities=3, num_points=5)
        result = run_online(PDOMFLPAlgorithm(), instance)
        gamma = paper_scaling_factor(instance.num_commodities, instance.num_requests)
        report = check_dual_feasibility(instance, result.duals, scale=gamma)
        assert report.feasible

    def test_deterministic_across_runs(self, small_instance):
        first = run_online(PDOMFLPAlgorithm(), small_instance)
        second = run_online(PDOMFLPAlgorithm(), small_instance)
        assert first.total_cost == pytest.approx(second.total_cost)
        assert [f.point for f in first.solution.facilities] == [
            f.point for f in second.solution.facilities
        ]

    def test_theorem4_bound_on_random_instances(self):
        """Cost <= 15 sqrt(|S|) H_n * OPT (Theorem 4), checked against exact OPT."""
        from repro.utils.maths import harmonic_number

        for seed in range(4):
            instance = random_small_instance(seed, num_requests=8, num_commodities=3, num_points=4)
            result = run_online(PDOMFLPAlgorithm(), instance)
            opt = BruteForceSolver().solve(instance).total_cost
            bound = 15.0 * math.sqrt(instance.num_commodities) * harmonic_number(
                instance.num_requests
            )
            assert result.total_cost <= bound * opt + 1e-9
            assert result.total_cost >= opt - 1e-9

    def test_trace_contains_dual_freezes(self, small_instance):
        result = run_online(PDOMFLPAlgorithm(), small_instance, trace=True)
        reasons = [e.reason for e in result.trace.events if hasattr(e, "reason")]
        assert any("constraint" in reason for reason in reasons)


class TestRestrictedLargeConfiguration:
    def test_excluded_commodities_never_in_large_facilities(self):
        requests = RequestSequence.from_tuples([(0, {e}) for e in range(6)] * 2)
        instance = Instance(SinglePointMetric(), ConstantCost(6), requests)
        algorithm = ThresholdPDAlgorithm(6, excluded=[5])
        result = run_online(algorithm, instance)
        result.solution.validate(instance.requests)
        for facility in result.solution.facilities:
            if len(facility.configuration) > 1:
                assert 5 not in facility.configuration

    def test_excluded_everything_rejected(self):
        with pytest.raises(AlgorithmError):
            ThresholdPDAlgorithm(2, excluded=[0, 1])

    def test_out_of_range_excluded_rejected(self):
        with pytest.raises(AlgorithmError):
            ThresholdPDAlgorithm(2, excluded=[5])

    def test_invalid_large_configuration_rejected_at_prepare(self, small_instance):
        algorithm = PDOMFLPAlgorithm(large_configuration=[99])
        with pytest.raises(AlgorithmError):
            run_online(algorithm, small_instance)

    def test_empty_large_configuration_rejected_at_prepare(self, small_instance):
        algorithm = PDOMFLPAlgorithm(large_configuration=[])
        with pytest.raises(AlgorithmError):
            run_online(algorithm, small_instance)

    def test_no_exclusions_matches_plain_pd(self, small_instance):
        plain = run_online(PDOMFLPAlgorithm(), small_instance)
        threshold = run_online(ThresholdPDAlgorithm(4, excluded=[]), small_instance)
        assert plain.total_cost == pytest.approx(threshold.total_cost)

    def test_tuned_pd_annotations(self):
        cost = PowerCost(16, 1.0)
        algorithm = tuned_pd_for_power_cost(cost)
        assert algorithm.tuned_threshold == pytest.approx(4.0)
        assert algorithm.predicted_upper_exponent == pytest.approx(0.5)
        assert algorithm.predicted_lower_exponent == pytest.approx(0.5)
        assert "x=1" in algorithm.name


class TestPDErrorHandling:
    def test_process_before_prepare_raises(self, small_instance):
        algorithm = PDOMFLPAlgorithm()
        with pytest.raises(AlgorithmError):
            algorithm.process(small_instance.requests[0], None, None)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_pd_feasibility_and_duality_property(seed):
    """Property: on random instances PD is feasible and primal <= 3 * duals."""
    workload = uniform_workload(
        num_requests=8, num_commodities=3, num_points=5, max_demand=3, rng=seed
    )
    result = run_online(PDOMFLPAlgorithm(), workload.instance)
    result.solution.validate(workload.instance.requests)
    assert result.total_cost <= 3.0 * result.duals.total() + 1e-9
