"""Determinism rules: AST passes flagging nondeterminism hazards.

Every guarantee this library makes — accel/reference bit-equivalence,
snapshot/resume bit-equivalence, any-worker-count reproducibility — assumes
that all randomness flows through seeded :class:`numpy.random.Generator`
streams (:mod:`repro.utils.rng`) and that no result depends on memory
addresses, wall clocks, or hash-table iteration order.  These rules flag the
code shapes that silently break that assumption:

``det-global-random``
    Module-level RNG calls (``np.random.random(...)``, ``random.choice(...)``,
    ``np.random.seed(...)``): they draw from hidden global state shared across
    the whole process, so results change with call interleaving, worker count
    and import order.  Generator-bound methods (``rng.random()``) resolve to a
    local object and are never flagged — they are the blessed API.

``det-unseeded-rng``
    ``np.random.default_rng()`` / ``SeedSequence()`` / ``random.Random()``
    with no seed (or a literal ``None``): fresh OS entropy at the call site.
    Route "fresh entropy" through :func:`repro.utils.rng.ensure_rng` /
    ``spawn_child_seeds`` so it is normalized to one recorded root seed.

``det-wall-clock``
    ``time.time`` / ``perf_counter`` / ``datetime.now`` in non-benchmark code.
    Files under a ``benchmarks/`` directory are exempt; elsewhere wall-clock
    reads need an explained suppression (runtime *telemetry* is legitimate —
    anything feeding a decision or a stored result is not).

``det-os-entropy``
    ``os.urandom``, ``secrets.*``, ``uuid.uuid1``/``uuid4``,
    ``random.SystemRandom``: unseedable entropy sources.

``det-id-hash-order``
    ``id()`` / ``hash()`` feeding an ordering (the ``key=`` of ``sorted`` /
    ``min`` / ``max`` / ``.sort``): ``id`` is a memory address and ``str``
    hashes are salted per process (``PYTHONHASHSEED``), so the order differs
    between runs.

``det-set-iteration``
    Accumulating iteration over a syntactically evident ``set`` (set
    literal/comprehension, ``set(...)``/``frozenset(...)``, set-algebra method
    calls): set iteration order follows the salted hash, so anything built
    from it inherits a per-process order.  Plain ``dict`` iteration is *not*
    flagged — dicts are insertion-ordered.

``det-unordered-sum``
    Float reduction (``sum`` / ``math.fsum`` / ``np.sum``) over an unordered
    iterable: float addition is not associative, so the same multiset of
    addends in a different order gives a different last bit — which is a
    different content hash and a failed bit-equivalence gate.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.rules import module_rule
from repro.lint.source import SourceFile

__all__: list = []

#: numpy.random attributes that are classes/constructors, not the legacy
#: global-state functions (calling these does not touch the global stream).
_NP_RANDOM_NON_GLOBAL = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "BitGenerator",
    "MT19937",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
}

_UNSEEDED_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "numpy.random.RandomState",
    "random.Random",
}

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

_OS_ENTROPY = {"os.urandom", "uuid.uuid1", "uuid.uuid4", "random.SystemRandom"}

#: Methods whose receiver is, in idiomatic code, a set — calling them on a
#: non-set is rare enough that flagging is worth it.
_SET_ALGEBRA_METHODS = {"union", "intersection", "difference", "symmetric_difference"}

#: Accumulator method calls that make a loop over an unordered iterable
#: order-sensitive.
_ACCUMULATOR_METHODS = {"append", "extend", "add", "insert", "update", "write"}

#: Consumers for which the order of a generator argument cannot matter (or is
#: covered by ``det-unordered-sum`` instead).
_ORDER_INSENSITIVE_CONSUMERS = {
    "sorted",
    "set",
    "frozenset",
    "min",
    "max",
    "any",
    "all",
    "len",
    "sum",
}


def _finding(rule_id: str, mod: SourceFile, node: ast.AST, message: str, hint: str) -> Finding:
    return Finding(
        rule_id=rule_id,
        path=mod.path,
        line=getattr(node, "lineno", 1),
        column=getattr(node, "col_offset", 0) + 1,
        message=message,
        hint=hint,
    )


def _call_name(mod: SourceFile, call: ast.Call) -> Optional[str]:
    return mod.resolve(call.func)


# ----------------------------------------------------------------------
# Global / unseeded randomness
# ----------------------------------------------------------------------
@module_rule(
    "det-global-random",
    summary="module-level RNG call (np.random.*, random.*) using hidden global state",
    threat="global streams shift with call interleaving, import order and worker count",
    hint="draw from a seeded numpy Generator threaded in via repro.utils.rng.ensure_rng",
)
def check_global_random(mod: SourceFile) -> Iterator[Finding]:
    for call in mod.calls():
        dotted = _call_name(mod, call)
        if dotted is None:
            continue
        if dotted.startswith("numpy.random."):
            attr = dotted.rsplit(".", 1)[1]
            if attr not in _NP_RANDOM_NON_GLOBAL:
                yield _finding(
                    "det-global-random",
                    mod,
                    call,
                    f"call to global numpy RNG function {dotted}()",
                    "use a seeded Generator: rng = ensure_rng(seed); rng.%s(...)" % attr,
                )
        elif dotted.startswith("random."):
            attr = dotted.rsplit(".", 1)[1]
            if attr not in {"Random", "SystemRandom"}:
                yield _finding(
                    "det-global-random",
                    mod,
                    call,
                    f"call to stdlib global RNG function {dotted}()",
                    "use a seeded numpy Generator from repro.utils.rng.ensure_rng",
                )


@module_rule(
    "det-unseeded-rng",
    summary="RNG constructed without a seed (fresh OS entropy at the call site)",
    threat="every run draws a different stream, so no result can be replayed",
    hint="pass an explicit seed, or normalize None through repro.utils.rng.ensure_rng",
)
def check_unseeded_rng(mod: SourceFile) -> Iterator[Finding]:
    for call in mod.calls():
        dotted = _call_name(mod, call)
        if dotted not in _UNSEEDED_CONSTRUCTORS:
            continue
        unseeded = not call.args and not call.keywords
        if call.args and isinstance(call.args[0], ast.Constant) and call.args[0].value is None:
            unseeded = True
        if unseeded:
            yield _finding(
                "det-unseeded-rng",
                mod,
                call,
                f"{dotted}() constructed without a seed",
                "thread the run's RandomState through ensure_rng/spawn_child_seeds",
            )


# ----------------------------------------------------------------------
# Wall clocks and OS entropy
# ----------------------------------------------------------------------
@module_rule(
    "det-wall-clock",
    summary="wall-clock read (time.time/perf_counter, datetime.now) outside benchmarks/",
    threat="time-dependent values leak into results and differ on every run and host",
    hint="derive logical time from the request index; telemetry-only reads get a "
    "noqa with a reason",
)
def check_wall_clock(mod: SourceFile) -> Iterator[Finding]:
    if "benchmarks" in Path(mod.path).parts:
        return
    for call in mod.calls():
        dotted = _call_name(mod, call)
        if dotted in _WALL_CLOCK:
            yield _finding(
                "det-wall-clock",
                mod,
                call,
                f"wall-clock read {dotted}() in non-benchmark code",
                "keep clocks out of decision paths; explain telemetry uses in a noqa",
            )


@module_rule(
    "det-os-entropy",
    summary="unseedable OS entropy source (os.urandom, secrets, uuid1/uuid4)",
    threat="values cannot be reproduced from any seed",
    hint="derive identifiers/bytes from the run's seeded Generator",
)
def check_os_entropy(mod: SourceFile) -> Iterator[Finding]:
    for call in mod.calls():
        dotted = _call_name(mod, call)
        if dotted is None:
            continue
        if dotted in _OS_ENTROPY or dotted.startswith("secrets."):
            yield _finding(
                "det-os-entropy",
                mod,
                call,
                f"unseedable entropy source {dotted}()",
                "derive the value from a seeded Generator instead",
            )


# ----------------------------------------------------------------------
# id()/hash() feeding an ordering
# ----------------------------------------------------------------------
def _uses_id_or_hash(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id in {"id", "hash"}
        ):
            return True
    return False


@module_rule(
    "det-id-hash-order",
    summary="id()/hash() used as a sort key",
    threat="id() is a memory address and str hashes are salted per process "
    "(PYTHONHASHSEED), so the order differs between runs",
    hint="sort by a stable attribute of the object (name, index, value)",
)
def check_id_hash_order(mod: SourceFile) -> Iterator[Finding]:
    for call in mod.calls():
        is_sorter = (
            isinstance(call.func, ast.Name) and call.func.id in {"sorted", "min", "max"}
        ) or (isinstance(call.func, ast.Attribute) and call.func.attr == "sort")
        if not is_sorter:
            continue
        for keyword in call.keywords:
            if keyword.arg != "key":
                continue
            value = keyword.value
            direct = isinstance(value, ast.Name) and value.id in {"id", "hash"}
            if direct or (isinstance(value, ast.Lambda) and _uses_id_or_hash(value.body)):
                yield _finding(
                    "det-id-hash-order",
                    mod,
                    call,
                    "sort key depends on id()/hash()",
                    "key on a stable, serializable attribute instead",
                )


# ----------------------------------------------------------------------
# Unordered (set) iteration and float reduction
# ----------------------------------------------------------------------
def _is_unordered(mod: SourceFile, node: ast.AST) -> bool:
    """Whether ``node`` is a syntactically evident unordered iterable (a set)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in {"set", "frozenset"}:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in _SET_ALGEBRA_METHODS:
            return True
    return False


def _accumulates(body: list) -> bool:
    """Whether a loop body builds up order-sensitive state."""
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.AugAssign, ast.Yield, ast.YieldFrom)):
                return True
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _ACCUMULATOR_METHODS
            ):
                return True
    return False


def _generator_consumer(mod: SourceFile, gen: ast.GeneratorExp) -> Optional[str]:
    """The builtin consuming ``gen`` as a direct call argument, if any."""
    parent = mod.parent(gen)
    if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
        if gen in parent.args:
            return parent.func.id
    return None


@module_rule(
    "det-set-iteration",
    summary="accumulating iteration over a set (hash order)",
    threat="set iteration follows the per-process salted hash order, so every "
    "structure built from it inherits a run-dependent order",
    hint="iterate sorted(the_set) (or keep an explicit ordered list alongside)",
)
def check_set_iteration(mod: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.For) and _is_unordered(mod, node.iter):
            if _accumulates(node.body):
                yield _finding(
                    "det-set-iteration",
                    mod,
                    node.iter,
                    "loop accumulates results while iterating a set in hash order",
                    "iterate sorted(...) over the set",
                )
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            if isinstance(node, ast.GeneratorExp):
                consumer = _generator_consumer(mod, node)
                if consumer in _ORDER_INSENSITIVE_CONSUMERS:
                    continue  # sorted()/set() neutralize order; sum() has its own rule
            for comp in node.generators:
                if _is_unordered(mod, comp.iter):
                    yield _finding(
                        "det-set-iteration",
                        mod,
                        comp.iter,
                        "comprehension draws from a set in hash order",
                        "wrap the source in sorted(...)",
                    )


@module_rule(
    "det-unordered-sum",
    summary="float reduction (sum/fsum/np.sum) over an unordered iterable",
    threat="float addition is not associative: a different addend order gives a "
    "different last bit, which breaks bit-identical equivalence gates",
    hint="sum over sorted(...) so the reduction order is pinned",
)
def check_unordered_sum(mod: SourceFile) -> Iterator[Finding]:
    for call in mod.calls():
        is_sum = isinstance(call.func, ast.Name) and call.func.id == "sum"
        if not is_sum:
            dotted = _call_name(mod, call)
            is_sum = dotted in {"math.fsum", "numpy.sum", "numpy.mean"}
        if not is_sum or not call.args:
            continue
        arg = call.args[0]
        hazard = _is_unordered(mod, arg)
        if not hazard and isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            hazard = any(_is_unordered(mod, comp.iter) for comp in arg.generators)
        if hazard:
            yield _finding(
                "det-unordered-sum",
                mod,
                call,
                "reduction over a set-ordered iterable",
                "reduce over sorted(...) to pin the addend order",
            )
