"""The rule framework and the string-keyed :data:`RULES` registry.

Rules mirror the library's component registries
(:class:`repro.api.registry.Registry`): each rule id maps to a zero-argument
builder returning a :class:`Rule`.  Third-party checks plug in the same way
algorithms or scenarios do::

    from repro.lint import RULES, Rule

    @RULES.register("my-rule")
    def _build():
        return Rule(id="my-rule", family="determinism", ..., check_module=my_check)

Two rule shapes exist:

* **module rules** (``check_module``) — pure AST passes over one
  :class:`~repro.lint.source.SourceFile` at a time; the determinism family
  (:mod:`repro.lint.determinism`) lives here;
* **project rules** (``check_project``) — registry-introspection passes over
  the live component registries; the contract family
  (:mod:`repro.lint.contracts`) lives here and anchors findings to the
  *defining* source line of the offending class via :mod:`inspect`.

``family="meta"`` rules (parse errors, malformed suppressions) are emitted by
the runner itself and exist in the registry only so the catalog and JSON
schema can describe them; they cannot be suppressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional

from repro.api.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.lint.contracts import ContractContext
    from repro.lint.findings import Finding
    from repro.lint.source import SourceFile

__all__ = [
    "Rule",
    "RULES",
    "module_rule",
    "project_rule",
    "meta_rule",
    "all_rules",
    "rule_catalog",
]

ModuleCheck = Callable[["SourceFile"], Iterable["Finding"]]
ProjectCheck = Callable[["ContractContext"], Iterable["Finding"]]


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, documentation, and its check callable."""

    #: Stable kebab-case id (``det-*`` determinism, ``con-*`` contract).
    id: str
    #: ``"determinism"``, ``"contract"`` or ``"meta"``.
    family: str
    #: One line: what the rule catches.
    summary: str
    #: One line: why the hazard threatens reproducibility.
    threat: str
    #: One line: how to fix a true positive.
    hint: str
    check_module: Optional[ModuleCheck] = field(default=None, compare=False)
    check_project: Optional[ProjectCheck] = field(default=None, compare=False)

    def describe(self) -> Dict[str, str]:
        """Catalog row (``repro lint --list-rules`` and the README table)."""
        return {
            "id": self.id,
            "family": self.family,
            "summary": self.summary,
            "threat": self.threat,
            "hint": self.hint,
        }


#: The rule registry; importing :mod:`repro.lint` registers the stock rules.
RULES = Registry("lint rule")


def module_rule(
    rule_id: str, *, family: str = "determinism", summary: str, threat: str, hint: str
) -> Callable[[ModuleCheck], ModuleCheck]:
    """Decorator: register ``fn`` as the AST check of a per-module rule."""

    def decorator(fn: ModuleCheck) -> ModuleCheck:
        RULES.add(
            rule_id,
            lambda: Rule(
                id=rule_id,
                family=family,
                summary=summary,
                threat=threat,
                hint=hint,
                check_module=fn,
            ),
        )
        return fn

    return decorator


def project_rule(
    rule_id: str, *, family: str = "contract", summary: str, threat: str, hint: str
) -> Callable[[ProjectCheck], ProjectCheck]:
    """Decorator: register ``fn`` as a registry-introspection project rule."""

    def decorator(fn: ProjectCheck) -> ProjectCheck:
        RULES.add(
            rule_id,
            lambda: Rule(
                id=rule_id,
                family=family,
                summary=summary,
                threat=threat,
                hint=hint,
                check_project=fn,
            ),
        )
        return fn

    return decorator


def meta_rule(rule_id: str, *, summary: str, threat: str, hint: str) -> None:
    """Register a runner-emitted rule that has no check callable of its own."""
    RULES.add(
        rule_id,
        lambda: Rule(id=rule_id, family="meta", summary=summary, threat=threat, hint=hint),
    )


def all_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """Build every registered rule (or the ``select`` subset), in id order.

    Unknown ids in ``select`` raise the registry's
    :class:`~repro.exceptions.UnknownComponentError` with a did-you-mean
    suggestion, exactly like any other component lookup.
    """
    names = list(select) if select is not None else RULES.names()
    return [RULES.build(name) for name in names]


def rule_catalog() -> List[Dict[str, str]]:
    """Catalog rows for every registered rule, in registration order."""
    return [RULES.build(name).describe() for name in RULES.names()]
