"""The lint runner: collect files, run rules, enforce suppressions.

:func:`lint_paths` is the single entry point behind both the ``repro lint``
CLI and the meta-tests: it walks the given files/directories, runs every
module rule over each parsed file, runs the project (contract) rules once,
and then applies the suppression protocol:

* a finding whose line carries ``# repro: noqa[its-rule-id] -- reason``
  becomes *suppressed* (kept in the report, excluded from the exit status);
* a matching noqa **without** a reason does *not* suppress — the hazard stays
  active and the comment itself is reported as ``noqa-missing-reason``;
* a noqa naming an unregistered rule id is reported as ``noqa-unknown-rule``
  (typo'd suppressions must not silently stop suppressing after a rename);
* a file that does not parse is reported as ``parse-error``.

Meta findings (the three above) can never be suppressed: they are findings
*about* the suppression mechanism itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.exceptions import ReproError
from repro.lint.findings import Finding
from repro.lint.rules import Rule, all_rules, meta_rule
from repro.lint.source import SourceFile

__all__ = ["LintResult", "lint_paths", "lint_source", "collect_files"]

meta_rule(
    "parse-error",
    summary="file could not be parsed as Python",
    threat="unparseable code cannot be checked at all",
    hint="fix the syntax error",
)
meta_rule(
    "noqa-missing-reason",
    summary="repro: noqa[...] without a '-- reason'",
    threat="an unexplained waiver hides whether the hazard was ever assessed",
    hint="append '-- <why this hazard is acceptable here>'",
)
meta_rule(
    "noqa-unknown-rule",
    summary="repro: noqa[...] naming an unregistered rule id",
    threat="a typo'd id suppresses nothing and rots silently",
    hint="use an id from 'repro lint --list-rules'",
)

#: Meta rule ids; emitted by the runner and exempt from suppression.
_META_RULES = ("parse-error", "noqa-missing-reason", "noqa-unknown-rule")


@dataclass
class LintResult:
    """Outcome of one lint pass."""

    #: Active findings (these fail the gate), in path/line order.
    findings: List[Finding] = field(default_factory=list)
    #: Findings waived by a reasoned suppression.
    suppressed: List[Finding] = field(default_factory=list)
    #: Files scanned by the AST rules.
    files: List[str] = field(default_factory=list)
    #: Ids of the rules that ran.
    rule_ids: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        """Active finding count per rule id (only rules that fired)."""
        totals: Dict[str, int] = {}
        for finding in self.findings:
            totals[finding.rule_id] = totals.get(finding.rule_id, 0) + 1
        return dict(sorted(totals.items()))

    def to_dict(self) -> Dict[str, Any]:
        """The ``repro lint --format json`` document."""
        return {
            "version": 1,
            "ok": self.ok,
            "files_scanned": len(self.files),
            "rules": list(self.rule_ids),
            "counts": self.counts(),
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
        }


def collect_files(paths: Sequence[Any]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(str(item) for item in sorted(path.rglob("*.py")))
        elif path.suffix == ".py" and path.exists():
            files.append(str(path))
        elif not path.exists():
            raise ReproError(f"lint target {str(path)!r} does not exist")
    return files


def _run_module_rules(rules: Iterable[Rule], module: SourceFile) -> List[Finding]:
    found: List[Finding] = []
    for rule in rules:
        if rule.check_module is not None:
            found.extend(rule.check_module(module))
    return found


def _noqa_findings(module: SourceFile, known_ids: Iterable[str]) -> List[Finding]:
    known = set(known_ids)
    found: List[Finding] = []
    for suppression in module.suppressions.values():
        if suppression.reason is None:
            found.append(
                Finding(
                    rule_id="noqa-missing-reason",
                    path=module.path,
                    line=suppression.line,
                    column=1,
                    message="suppression has no written reason (and therefore "
                    "suppresses nothing)",
                    hint="append '-- <why this hazard is acceptable here>'",
                )
            )
        for rule_id in suppression.rule_ids:
            if rule_id not in known:
                found.append(
                    Finding(
                        rule_id="noqa-unknown-rule",
                        path=module.path,
                        line=suppression.line,
                        column=1,
                        message=f"suppression names unknown rule id {rule_id!r}",
                        hint="use an id from 'repro lint --list-rules'",
                    )
                )
    return found


def _apply_suppressions(
    findings: List[Finding],
    modules: Dict[str, SourceFile],
    result: LintResult,
) -> None:
    """Route each finding to active/suppressed per its line's noqa comment."""
    for finding in findings:
        module = modules.get(finding.path)
        if module is None and finding.rule_id not in _META_RULES:
            # Contract findings may anchor outside the scanned set; load the
            # anchor file lazily so its suppressions still apply.
            try:
                module = SourceFile.from_path(finding.path)
                modules[finding.path] = module
            except (OSError, SyntaxError, ValueError):
                module = None
        suppression = module.suppression_at(finding.line) if module else None
        if (
            finding.rule_id not in _META_RULES
            and suppression is not None
            and suppression.covers(finding.rule_id)
            and suppression.reason
        ):
            finding.suppressed = True
            finding.suppression_reason = suppression.reason
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)


def lint_paths(
    paths: Sequence[Any],
    *,
    select: Optional[Sequence[str]] = None,
    contracts: bool = True,
    contract_context: Optional[Any] = None,
) -> LintResult:
    """Lint files/directories (module rules) plus the registries (contracts).

    ``select`` restricts the pass to the named rule ids; ``contracts=False``
    skips the registry-introspection rules (pure-AST mode, no library
    imports — right for linting third-party user code).
    """
    rules = all_rules(select)
    result = LintResult(rule_ids=[rule.id for rule in rules])
    modules: Dict[str, SourceFile] = {}
    raw: List[Finding] = []

    for path in collect_files(paths):
        result.files.append(path)
        try:
            module = SourceFile.from_path(path)
        except SyntaxError as error:
            raw.append(
                Finding(
                    rule_id="parse-error",
                    path=path,
                    line=error.lineno or 1,
                    column=(error.offset or 0) + 1,
                    message=f"file does not parse: {error.msg}",
                    hint="fix the syntax error",
                )
            )
            continue
        modules[path] = module
        raw.extend(_run_module_rules(rules, module))
        raw.extend(_noqa_findings(module, (r.id for r in rules)))

    if contracts:
        from repro.lint.contracts import ContractContext

        ctx = contract_context if contract_context is not None else ContractContext()
        for rule in rules:
            if rule.check_project is not None:
                raw.extend(rule.check_project(ctx))

    raw.sort(key=lambda f: (f.path, f.line, f.column, f.rule_id))
    _apply_suppressions(raw, modules, result)
    return result


def lint_source(
    text: str, path: str = "<string>", *, select: Optional[Sequence[str]] = None
) -> LintResult:
    """Lint one in-memory source string with the module rules only."""
    rules = all_rules(select)
    result = LintResult(rule_ids=[rule.id for rule in rules])
    try:
        module = SourceFile(path, text)
    except SyntaxError as error:
        result.findings.append(
            Finding(
                rule_id="parse-error",
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 0) + 1,
                message=f"source does not parse: {error.msg}",
                hint="fix the syntax error",
            )
        )
        return result
    result.files.append(path)
    raw = _run_module_rules(rules, module)
    raw.extend(_noqa_findings(module, (r.id for r in rules)))
    raw.sort(key=lambda f: (f.path, f.line, f.column, f.rule_id))
    _apply_suppressions(raw, {path: module}, result)
    return result
