"""Static analysis for determinism & contracts — the ``repro lint`` gate.

The library's guarantees (accel/reference bit-equivalence, bit-identical
snapshot/resume, any-worker-count reproducibility, strict-JSON state) are
enforced dynamically by the test suite — which can only see a hazard a seed
happens to hit.  This package is the *static* half: an AST pass over source
plus an introspection pass over the live component registries, catching the
hazard classes at review time.

Two rule families ship (see :mod:`repro.lint.determinism` and
:mod:`repro.lint.contracts`), registered on the string-keyed :data:`RULES`
registry exactly like algorithms or scenarios — third-party checks plug in
with ``@RULES.register("my-rule")``.

Suppressions are per-line and must explain themselves::

    self._runtime += time.perf_counter() - start  # repro: noqa[det-wall-clock] -- telemetry only

Usage::

    repro lint src/                 # the CI gate: exit 1 on any finding
    repro lint --list-rules         # the rule catalog

or programmatically::

    >>> from repro.lint import lint_source
    >>> result = lint_source("import numpy as np\\nx = np.random.random()\\n")
    >>> [(f.rule_id, f.line) for f in result.findings]
    [('det-global-random', 2)]
"""

# Import order fixes the RULES registration (and catalog) order:
# determinism rules, then contract rules, then the runner's meta rules.
from repro.lint.findings import Finding
from repro.lint.rules import RULES, Rule, all_rules, module_rule, project_rule, rule_catalog
from repro.lint.source import NOQA_PATTERN, SourceFile, Suppression
from repro.lint import determinism as _determinism  # noqa: F401
from repro.lint.contracts import ContractContext
from repro.lint.runner import LintResult, collect_files, lint_paths, lint_source
from repro.lint.report import render_json, render_rule_table, render_text

__all__ = [
    "RULES",
    "Rule",
    "Finding",
    "LintResult",
    "SourceFile",
    "Suppression",
    "ContractContext",
    "NOQA_PATTERN",
    "all_rules",
    "module_rule",
    "project_rule",
    "rule_catalog",
    "lint_paths",
    "lint_source",
    "collect_files",
    "render_text",
    "render_json",
    "render_rule_table",
]
