"""Parsed source files: AST, import-alias resolution, and noqa suppressions.

:class:`SourceFile` is the unit every AST rule operates on.  Beyond the parse
tree it precomputes the two things rules keep needing:

* **dotted-name resolution** — an import table mapping local aliases back to
  canonical module paths, so ``np.random.random(...)``,
  ``from numpy import random as npr; npr.random(...)`` and
  ``from time import perf_counter; perf_counter()`` all resolve to the same
  canonical names (``numpy.random.random``, ``time.perf_counter``) no matter
  how the module spelled its imports;
* **parent links** — ``parent(node)`` lets a rule ask what consumes an
  expression (e.g. a generator over a ``set`` is harmless inside
  ``sorted(...)`` but a hazard inside ``list(...)``).

Suppression comments use the form::

    hazardous_call()  # repro: noqa[rule-id] -- reason the hazard is acceptable

Multiple rule ids are comma-separated inside the brackets.  The reason after
``--`` is mandatory; a bare ``noqa[rule-id]`` does **not** suppress and is
reported as ``noqa-missing-reason`` (see :mod:`repro.lint.suppressions`).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["SourceFile", "Suppression", "NOQA_PATTERN"]

#: Matches ``repro: noqa`` comments: comma-separated rule ids in brackets,
#: then an optional ``-- reason`` (its absence is enforced as a finding by
#: the runner, not as a parse error here).
NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One ``# repro: noqa[...]`` comment."""

    line: int
    rule_ids: Tuple[str, ...]
    reason: Optional[str]

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.rule_ids


class SourceFile:
    """One parsed Python source file plus the lint-relevant derived maps."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: ast.Module = ast.parse(text, filename=path)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._aliases = self._build_alias_table()
        self.suppressions: Dict[int, Suppression] = self._scan_suppressions()

    @classmethod
    def from_path(cls, path: str) -> "SourceFile":
        with open(path, "r", encoding="utf-8") as handle:
            return cls(path, handle.read())

    # ------------------------------------------------------------------
    # Import-alias resolution
    # ------------------------------------------------------------------
    def _build_alias_table(self) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    local = name.asname or name.name.split(".")[0]
                    # ``import a.b`` binds the *top* package name ``a``.
                    target = name.name if name.asname else name.name.split(".")[0]
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports cannot name stdlib hazards
                for name in node.names:
                    if name.name == "*":
                        continue
                    local = name.asname or name.name
                    aliases[local] = f"{node.module}.{name.name}"
        return aliases

    def resolve(self, node: ast.AST) -> Optional[str]:
        """The canonical dotted name of an attribute/name chain, if importable.

        ``None`` when the chain does not bottom out in an imported module
        alias (e.g. method calls on local objects — ``rng.shuffle(...)`` stays
        unresolved, which is exactly right: generator-bound methods are the
        *seeded* API).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (``None`` for the module)."""
        return self._parents.get(node)

    def calls(self) -> Iterator[ast.Call]:
        """All call expressions in the module, in document order."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                yield node

    # ------------------------------------------------------------------
    # Suppressions
    # ------------------------------------------------------------------
    def _scan_suppressions(self) -> Dict[int, Suppression]:
        # Real COMMENT tokens only: a noqa-shaped string inside a docstring or
        # string literal (e.g. documentation *about* the mechanism) is text,
        # not a suppression.
        found: Dict[int, Suppression] = {}
        reader = io.StringIO(self.text).readline
        for token in tokenize.generate_tokens(reader):
            if token.type != tokenize.COMMENT:
                continue
            match = NOQA_PATTERN.search(token.string)
            if match is None:
                continue
            line = token.start[0]
            rule_ids = tuple(
                part.strip() for part in match.group("rules").split(",") if part.strip()
            )
            found[line] = Suppression(
                line=line, rule_ids=rule_ids, reason=match.group("reason")
            )
        return found

    def suppression_at(self, line: int) -> Optional[Suppression]:
        return self.suppressions.get(line)
