"""Contract rules: registry introspection over the live component catalog.

Where the determinism rules read *source*, these rules read the *registries*:
they import the real component catalog (ALGORITHMS, SCENARIOS, WORKLOADS, …)
and verify that every registered component honors the cross-cutting contracts
the rest of the system is built on:

``con-state-dict-pair``
    Every online algorithm must define ``state_dict``/``load_state_dict`` as
    a *pair* (inheriting both stateless defaults is fine; overriding one
    without the other silently breaks snapshot/resume — a snapshot captured
    by the inherited half cannot restore the overridden half).

``con-scenario-hooks``
    Every scenario must expose the streaming surface
    (:meth:`~repro.scenarios.base.Scenario.shape`, ``to_dict``, an ``open``-ed
    stream with ``take``/``observe``/``state_dict``/``load_state_dict``, and
    an ``observe`` hook accepting one feedback event) — the combinator,
    session and service layers call all of these unconditionally.

``con-strict-params``
    Registries that promise strict kwarg validation must be able to deliver
    it: ``strict_params`` must be on, and no registered builder may hide its
    signature behind ``**kwargs`` (which would turn a typo'd spec key into a
    silent no-op instead of a named error).

``con-strict-json``
    Everything that serializes — scenario ``to_dict``/stream ``state_dict``,
    and each online algorithm's ``state_dict`` after a short smoke run — must
    emit only strict-JSON literal types.  NumPy scalars compare equal to
    Python floats but serialize differently (or not at all), so one leaked
    ``np.float64`` means a snapshot that either crashes ``json.dumps`` or
    changes a content hash.

Findings anchor at the defining source line of the offending class (via
:mod:`inspect`), so a ``# repro: noqa[...] -- reason`` on the ``class``
statement can waive them like any AST finding.
"""

from __future__ import annotations

import inspect
import os
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.api.registry import Registry
from repro.lint.findings import Finding
from repro.lint.rules import project_rule

__all__ = ["ContractContext"]

#: JSON literal types, matched *exactly* (``np.float64`` subclasses ``float``
#: and ``bool`` subclasses ``int``, so ``isinstance`` checks would let NumPy
#: scalars through).
_JSON_SCALARS = (str, int, float, bool, type(None))


def _strict_json_violations(value: Any, where: str = "$") -> Iterator[str]:
    """Paths inside ``value`` holding non-strict-JSON types."""
    if type(value) in (dict,):
        for key, entry in value.items():
            if type(key) is not str:
                yield f"{where}: non-string key {key!r} ({type(key).__name__})"
            yield from _strict_json_violations(entry, f"{where}.{key}")
    elif type(value) in (list,):
        for index, entry in enumerate(value):
            yield from _strict_json_violations(entry, f"{where}[{index}]")
    elif type(value) not in _JSON_SCALARS:
        yield f"{where}: {type(value).__name__} is not a strict-JSON literal"


class ContractContext:
    """The registries a contract pass introspects.

    Defaults to the library's real catalog (imported lazily, so pure-AST lint
    runs never pay the import); tests inject small fake registries to pin
    each rule's positive and negative cases.
    """

    def __init__(
        self,
        *,
        algorithms: Optional[Registry] = None,
        scenarios: Optional[Registry] = None,
        scenario_examples: Optional[Mapping[str, Mapping[str, Any]]] = None,
        strict_registries: Optional[Mapping[str, Registry]] = None,
        param_registries: Optional[Mapping[str, Registry]] = None,
        smoke_run: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self._algorithms = algorithms
        self._scenarios = scenarios
        self._scenario_examples = scenario_examples
        self._strict_registries = strict_registries
        self._param_registries = param_registries
        self._smoke_run = smoke_run

    # ------------------------------------------------------------------
    # Lazy catalog access
    # ------------------------------------------------------------------
    @property
    def algorithms(self) -> Registry:
        if self._algorithms is None:
            from repro.api.components import ALGORITHMS

            self._algorithms = ALGORITHMS
        return self._algorithms

    @property
    def scenarios(self) -> Registry:
        if self._scenarios is None:
            from repro.scenarios import SCENARIOS

            self._scenarios = SCENARIOS
        return self._scenarios

    @property
    def scenario_examples(self) -> Mapping[str, Mapping[str, Any]]:
        if self._scenario_examples is None:
            from repro.scenarios import EXAMPLE_SPECS

            self._scenario_examples = EXAMPLE_SPECS
        return self._scenario_examples

    @property
    def strict_registries(self) -> Mapping[str, Registry]:
        """Registries that *must* enforce strict kwarg validation."""
        if self._strict_registries is None:
            from repro.api.components import WORKLOADS
            from repro.scenarios import SCENARIOS

            self._strict_registries = {"workload": WORKLOADS, "scenario": SCENARIOS}
        return self._strict_registries

    @property
    def param_registries(self) -> Mapping[str, Registry]:
        """Registries whose builders must expose introspectable signatures."""
        if self._param_registries is None:
            from repro.api.components import ALGORITHMS, COSTS, METRICS, SOLVERS, WORKLOADS
            from repro.engine.tasks import TASKS
            from repro.scenarios import SCENARIOS

            self._param_registries = {
                "metric": METRICS,
                "cost": COSTS,
                "workload": WORKLOADS,
                "algorithm": ALGORITHMS,
                "solver": SOLVERS,
                "scenario": SCENARIOS,
                "engine-task": TASKS,
            }
        return self._param_registries

    # ------------------------------------------------------------------
    def build_algorithm(self, name: str) -> Any:
        """Instantiate a registered algorithm for the dynamic checks.

        Builders whose constructor requires parameters (e.g. ``threshold-pd``
        needs ``num_commodities``) get them filled from the smoke
        environment's dimensions, the same values a RunSpec would pass.
        """
        builder = self.algorithms.get(name)
        accepted = self.algorithms.accepted_params(name) or []
        params = {key: value for key, value in _SMOKE_PARAMS.items() if key in accepted}
        try:
            return builder(**params)
        except TypeError:
            return builder()

    def smoke_run(self, algorithm: Any) -> None:
        """Drive ``algorithm`` through a tiny deterministic instance.

        Tries the multi-commodity environment first, then a single-commodity
        one, so ``|S| = 1`` substrates (Meyerson/Fotakis OFL) pass their
        precondition while the OMFLP algorithms see a real commodity mix.
        """
        if self._smoke_run is not None:
            self._smoke_run(algorithm)
            return
        from repro.algorithms.base import run_online
        from repro.core.instance import Instance
        from repro.core.requests import RequestSequence
        from repro.costs.count_based import PowerCost
        from repro.metric.factories import uniform_line_metric

        candidates = [
            (_SMOKE_PARAMS["num_commodities"], [(0, {0}), (2, {1}), (4, {2}), (1, {1})]),
            (1, [(0, {0}), (2, {0}), (4, {0}), (1, {0})]),
        ]
        last_error: Optional[Exception] = None
        for num_commodities, tuples in candidates:
            instance = Instance(
                uniform_line_metric(_SMOKE_PARAMS["num_points"]),
                PowerCost(num_commodities=num_commodities, exponent_x=1.0),
                RequestSequence.from_tuples(tuples),
                name="lint-smoke",
            )
            try:
                run_online(algorithm, instance, rng=0)
                return
            except Exception as error:
                last_error = error
        assert last_error is not None
        raise last_error


#: Environment dimensions of the contract smoke run; doubles as the pool of
#: constructor parameters for algorithms whose builders require them.
_SMOKE_PARAMS: Dict[str, int] = {"num_points": 5, "num_commodities": 3}


# ----------------------------------------------------------------------
# Anchoring
# ----------------------------------------------------------------------
def _anchor(obj: Any) -> Tuple[str, int]:
    """``(path, line)`` of the definition of ``obj`` (class preferred).

    Paths are relativized to the working directory when possible so contract
    findings format like AST findings (``src/repro/...``) and line up with
    the suppression maps the runner loads by path.
    """
    target = obj if inspect.isclass(obj) or inspect.isfunction(obj) else type(obj)
    try:
        path = inspect.getsourcefile(target) or "<unknown>"
        line = inspect.getsourcelines(target)[1]
    except (OSError, TypeError):
        return "<unknown>", 1
    try:
        relative = os.path.relpath(path)
        if not relative.startswith(".."):
            path = relative
    except ValueError:  # different drive on win32
        pass
    return path, line


def _contract_finding(rule_id: str, obj: Any, message: str, hint: str) -> Finding:
    path, line = _anchor(obj)
    return Finding(
        rule_id=rule_id, path=path, line=line, column=1, message=message, hint=hint
    )


def _definers(cls: type, method: str, stop: Optional[type]) -> List[type]:
    """Classes in ``cls``'s MRO (strictly below ``stop``) defining ``method``."""
    below: List[type] = []
    for klass in cls.__mro__:
        if klass is stop or klass is object:
            break
        if method in vars(klass):
            below.append(klass)
    return below


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
@project_rule(
    "con-state-dict-pair",
    summary="online algorithm overrides state_dict xor load_state_dict",
    threat="a snapshot captured by one half cannot be restored by the inherited "
    "other half, so resume silently diverges from the uninterrupted run",
    hint="override both hooks (or neither, for stateless algorithms)",
)
def check_state_dict_pair(ctx: ContractContext) -> Iterator[Finding]:
    from repro.algorithms.base import OnlineAlgorithm

    for name in ctx.algorithms.names():
        builder = ctx.algorithms.get(name)
        if inspect.isclass(builder):
            cls = builder
        else:
            try:
                cls = type(ctx.build_algorithm(name))
            except Exception as error:  # registry misuse is itself a finding
                yield _contract_finding(
                    "con-state-dict-pair",
                    builder,
                    f"algorithm {name!r} could not be instantiated for contract "
                    f"checks: {error}",
                    "ALGORITHMS factories must work from smoke-run parameters",
                )
                continue
        if not (isinstance(cls, type) and issubclass(cls, OnlineAlgorithm)):
            continue
        has_state = bool(_definers(cls, "state_dict", OnlineAlgorithm))
        has_load = bool(_definers(cls, "load_state_dict", OnlineAlgorithm))
        if has_state != has_load:
            defined, missing = (
                ("state_dict", "load_state_dict")
                if has_state
                else ("load_state_dict", "state_dict")
            )
            yield _contract_finding(
                "con-state-dict-pair",
                cls,
                f"algorithm {name!r} ({cls.__name__}) overrides {defined} "
                f"without {missing}",
                f"implement {missing} so snapshot and restore stay paired",
            )


@project_rule(
    "con-scenario-hooks",
    summary="scenario missing part of the streaming surface",
    threat="combinators, sessions and the service layer call shape/to_dict/"
    "take/observe/state_dict unconditionally; a missing hook fails only at "
    "stream time, deep inside a run",
    hint="subclass repro.scenarios.base.Scenario/ScenarioStream rather than "
    "duck-typing the surface",
)
def check_scenario_hooks(ctx: ContractContext) -> Iterator[Finding]:
    for kind in ctx.scenarios.names():
        example = ctx.scenario_examples.get(kind)
        if example is None:
            continue  # third-party kind without a catalog example
        try:
            scenario = ctx.scenarios.build(kind, **{
                key: value for key, value in example.items() if key != "kind"
            })
        except Exception as error:
            yield _contract_finding(
                "con-scenario-hooks",
                ctx.scenarios.get(kind),
                f"scenario {kind!r} could not be built from its catalog "
                f"example: {error}",
                "keep EXAMPLE_SPECS in sync with the scenario's parameters",
            )
            continue
        for method in ("shape", "to_dict", "open"):
            if not callable(getattr(scenario, method, None)):
                yield _contract_finding(
                    "con-scenario-hooks",
                    scenario,
                    f"scenario {kind!r} has no callable {method}()",
                    "inherit the hook from repro.scenarios.base.Scenario",
                )
                break
        else:
            shape = scenario.shape()
            if shape is not None and (
                not isinstance(shape, tuple)
                or len(shape) != 2
                or not all(type(item) is int for item in shape)
            ):
                yield _contract_finding(
                    "con-scenario-hooks",
                    scenario,
                    f"scenario {kind!r} shape() returned {shape!r}; the contract "
                    "is None or a (num_points, num_commodities) int pair",
                    "return None when the shape is unknown before opening",
                )
            try:
                stream = scenario.open(0)
            except Exception as error:
                yield _contract_finding(
                    "con-scenario-hooks",
                    scenario,
                    f"scenario {kind!r} failed to open a stream: {error}",
                    "open(seed) must bind any valid scenario to a stream",
                )
                continue
            for method in ("take", "observe", "state_dict", "load_state_dict"):
                if not callable(getattr(stream, method, None)):
                    yield _contract_finding(
                        "con-scenario-hooks",
                        scenario,
                        f"stream of scenario {kind!r} has no callable {method}()",
                        "inherit from repro.scenarios.base.ScenarioStream",
                    )
            observe = getattr(stream, "observe", None)
            if callable(observe):
                try:
                    inspect.signature(observe).bind(object())
                except TypeError:
                    yield _contract_finding(
                        "con-scenario-hooks",
                        scenario,
                        f"stream of scenario {kind!r} has an observe() that does "
                        "not accept one feedback event",
                        "match the ScenarioStream.observe(event) signature",
                    )


@project_rule(
    "con-strict-params",
    summary="registry cannot enforce strict kwarg validation",
    threat="a typo'd spec key silently becomes a default-valued run instead of "
    "a named error, so two differently spelled specs collide on one result",
    hint="enable strict_params on the registry and avoid **kwargs builders",
)
def check_strict_params(ctx: ContractContext) -> Iterator[Finding]:
    for kind, registry in ctx.strict_registries.items():
        if not registry.strict_params:
            yield _contract_finding(
                "con-strict-params",
                type(registry),
                f"{kind} registry does not enforce strict_params",
                f'construct it as Registry("{kind}", strict_params=True)',
            )
    for kind, registry in ctx.param_registries.items():
        for name in registry.names():
            if registry.accepted_params(name) is None:
                yield _contract_finding(
                    "con-strict-params",
                    registry.get(name),
                    f"{kind} {name!r} hides its parameters behind **kwargs, so "
                    "spec keys cannot be validated against it",
                    "declare explicit keyword parameters on the builder",
                )


@project_rule(
    "con-strict-json",
    summary="to_dict/state_dict leaks non-strict-JSON types (NumPy scalars, tuples)",
    threat="a leaked np.float64 either crashes json.dumps or changes the "
    "serialized form, breaking snapshots and content-addressed store keys",
    hint="convert with int()/float()/list() at the serialization boundary",
)
def check_strict_json(ctx: ContractContext) -> Iterator[Finding]:
    from repro.algorithms.base import OnlineAlgorithm

    # Scenario declarative forms and stream snapshots.
    for kind in ctx.scenarios.names():
        example = ctx.scenario_examples.get(kind)
        if example is None:
            continue
        try:
            scenario = ctx.scenarios.build(kind, **{
                key: value for key, value in example.items() if key != "kind"
            })
            declared = scenario.to_dict()
        except Exception:
            continue  # con-scenario-hooks already reports build failures
        for violation in _strict_json_violations(declared):
            yield _contract_finding(
                "con-strict-json",
                scenario,
                f"scenario {kind!r} to_dict() leaks a non-JSON type ({violation})",
                "normalize params to str/int/float/bool/None/list/dict",
            )
        try:
            stream = scenario.open(0)
            stream.take(3)
            state = stream.state_dict()
        except Exception:
            continue
        for violation in _strict_json_violations(state):
            yield _contract_finding(
                "con-strict-json",
                scenario,
                f"stream state_dict() of scenario {kind!r} leaks a non-JSON "
                f"type ({violation})",
                "encode arrays/scalars like repro.utils.rng.rng_state does",
            )

    # Algorithm snapshots after a short real run.
    for name in ctx.algorithms.names():
        try:
            algorithm = ctx.build_algorithm(name)
        except Exception:
            continue  # con-state-dict-pair already reports this
        if not isinstance(algorithm, OnlineAlgorithm):
            continue
        try:
            ctx.smoke_run(algorithm)
            state = algorithm.state_dict()
        except Exception as error:
            yield _contract_finding(
                "con-strict-json",
                type(algorithm),
                f"algorithm {name!r} failed the state_dict smoke run: {error}",
                "state_dict() must be callable after any prefix of a run",
            )
            continue
        for violation in _strict_json_violations(state):
            yield _contract_finding(
                "con-strict-json",
                type(algorithm),
                f"algorithm {name!r} state_dict() leaks a non-JSON type "
                f"({violation})",
                "convert NumPy scalars with int()/float() before returning",
            )
