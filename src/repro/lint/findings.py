"""The :class:`Finding` model — one diagnostic emitted by a lint rule.

Findings are plain data: a rule id, a ``file:line:col`` anchor, a message
describing the hazard at that site, and a fix hint.  A finding that a
``# repro: noqa[rule-id] -- reason`` comment silenced is still carried (with
``suppressed=True`` and the written reason) so reports can show what was
waived and why — an unexplained suppression is itself a finding
(:mod:`repro.lint.suppressions`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = ["Finding"]


@dataclass
class Finding:
    """One diagnostic: a rule violation anchored to a source location."""

    rule_id: str
    path: str
    line: int
    column: int
    message: str
    hint: str = ""
    suppressed: bool = False
    suppression_reason: Optional[str] = None

    def location(self) -> str:
        """``path:line:col`` — the clickable anchor of the finding."""
        return f"{self.path}:{self.line}:{self.column}"

    def format(self) -> str:
        """One-line human-readable rendering (the text report row)."""
        text = f"{self.location()}: {self.rule_id}: {self.message}"
        if self.hint:
            text += f"  [fix: {self.hint}]"
        if self.suppressed:
            text += f"  (suppressed: {self.suppression_reason})"
        return text

    def to_dict(self) -> Dict[str, Any]:
        """Strict-JSON form used by ``repro lint --format json``."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "hint": self.hint,
            "suppressed": self.suppressed,
            "suppression_reason": self.suppression_reason,
        }
