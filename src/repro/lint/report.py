"""Rendering lint results: text for humans, JSON for machines."""

from __future__ import annotations

import json

from repro.lint.rules import rule_catalog
from repro.lint.runner import LintResult

__all__ = ["render_text", "render_json", "render_rule_table"]


def render_text(result: LintResult, *, show_suppressed: bool = False) -> str:
    """The ``repro lint`` text report: one line per finding plus a summary."""
    lines = [finding.format() for finding in result.findings]
    if show_suppressed and result.suppressed:
        lines.append("")
        lines.append(f"suppressed ({len(result.suppressed)}):")
        lines.extend(f"  {finding.format()}" for finding in result.suppressed)
    lines.append("")
    counts = result.counts()
    breakdown = ", ".join(f"{rule_id} x{count}" for rule_id, count in counts.items())
    lines.append(
        f"{len(result.files)} file(s) scanned: "
        + (
            f"{len(result.findings)} finding(s) ({breakdown}), "
            if result.findings
            else "no findings, "
        )
        + f"{len(result.suppressed)} suppressed with reasons"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The ``repro lint --format json`` document (one stable top-level dict)."""
    return json.dumps(result.to_dict(), indent=2, sort_keys=False)


def render_rule_table() -> str:
    """The ``repro lint --list-rules`` catalog."""
    rows = rule_catalog()
    width = max(len(row["id"]) for row in rows)
    lines = [f"{'rule':{width}s}  family       what it catches", "-" * (width + 40)]
    for row in rows:
        lines.append(f"{row['id']:{width}s}  {row['family']:11s}  {row['summary']}")
    return "\n".join(lines)
