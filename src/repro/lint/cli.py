"""The ``repro lint`` subcommand.

Examples
--------
Gate the library itself (this is the CI invocation; exit status 1 on any
unsuppressed finding)::

    repro lint src/

Machine-readable output, determinism rules only (no library imports — safe
on third-party user code)::

    repro lint mycode/ --format json --no-contracts

The rule catalog, and a single-rule pass::

    repro lint --list-rules
    repro lint src/ --select det-set-iteration
"""

from __future__ import annotations

import argparse
from typing import List

from repro.lint.report import render_json, render_rule_table, render_text
from repro.lint.runner import lint_paths

__all__ = ["configure_parser", "run"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="path",
        help="files or directories to lint (e.g. src/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE_ID",
        default=None,
        help="run only this rule id (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--no-contracts",
        action="store_true",
        help="skip the registry-introspection contract rules (pure AST pass)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings waived by reasoned noqa comments",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(render_rule_table())
        return 0
    paths: List[str] = args.paths
    if not paths:
        print("repro lint: no paths given (try 'repro lint src/')")
        return 2
    result = lint_paths(
        paths,
        select=args.select,
        contracts=not args.no_contracts,
    )
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    return 0 if result.ok else 1
