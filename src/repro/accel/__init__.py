"""Incremental distance-cache acceleration for the online hot paths.

Every online algorithm in this reproduction repeatedly answers the same two
families of distance queries per arriving request:

* ``d(r, F)`` against a *growing* facility set (and per-commodity /
  large-facility subsets of it) — accelerated by
  :class:`~repro.accel.tracker.NearestSetTracker`: O(n) fold per facility
  opening, O(1) per query, instead of a fresh O(|F|)-point scan per query;
* ``d(C_i, r)`` against the *static* facility cost classes — accelerated by
  :class:`~repro.accel.classes.ClassDistanceIndex`: one precomputed
  ``(classes, n)`` table, O(1) per query, instead of an O(n) scan per class
  per request.

The primal–dual algorithms additionally rebuild O(h x n) bid sums over their
request history each arrival;
:class:`~repro.accel.history.BidHistoryBuffer` keeps those operands in
preallocated buffers updated in place.

All three structures are **bit-identical** to the reference scans they
replace (same floats, same tie-breaks, same numpy reduction orders); the
equivalence harness ``tests/test_accel_equivalence.py`` pins this for every
algorithm x metric x workload x seed combination, and every consumer keeps
the reference path reachable via ``use_accel=False``.
"""

from repro.accel.classes import ClassDistanceIndex
from repro.accel.history import BidHistoryBuffer
from repro.accel.tracker import NearestSetTracker

__all__ = ["NearestSetTracker", "ClassDistanceIndex", "BidHistoryBuffer"]
