"""Incremental nearest-set distance tracking.

:class:`NearestSetTracker` maintains the running minimum distance from every
metric point to a *growing* set of tagged points (open facility locations):

* ``add(point, tag)`` folds one new point in with a single vectorized
  ``minimum`` over the metric column — O(n);
* ``distance(q)`` / ``nearest(q)`` answer ``d(q, F)`` and "which member is
  closest" in O(1), replacing the reference implementation's per-query scan
  over the whole member list.

Bit-identicality with the reference scan is guaranteed by two invariants:

1. Updates use :meth:`repro.metric.base.MetricSpace.distances_to`, whose
   contract is ``distances_to(p)[q] == distances_from(q)[p]`` bit-for-bit, so
   the tracked minima are minima over exactly the floats the reference reads.
2. Ties are broken towards the earliest-added member (strict ``<`` update),
   which is what ``np.argmin`` over members in insertion order returns.

Trackers are deliberately *not* serialized by the session snapshot codec
(:mod:`repro.service.snapshot`): their arrays are a pure fold over the member
sequence, so restoring a snapshot replays the same ``add`` calls in the same
order and reproduces ``_dmin``/``_tags`` bit-for-bit.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.metric.base import MetricSpace

__all__ = ["NearestSetTracker"]


class NearestSetTracker:
    """Running ``d(·, F)`` over a growing tagged point set.

    Parameters
    ----------
    metric:
        The underlying metric space.  Arrays are allocated lazily on the
        first :meth:`add`, so constructing trackers for point sets that stay
        empty is free.
    """

    def __init__(self, metric: MetricSpace) -> None:
        self._metric = metric
        self._dmin: Optional[np.ndarray] = None
        self._tags: Optional[np.ndarray] = None
        self._num_added = 0

    # ------------------------------------------------------------------
    def add(self, point: int, tag: Optional[int] = None) -> None:
        """Fold ``point`` into the tracked set under ``tag`` (O(n)).

        ``tag`` defaults to the insertion index; it is what :meth:`nearest`
        reports for queries whose closest member this point becomes.
        """
        column = self._metric.distances_to(point)
        tag_value = self._num_added if tag is None else int(tag)
        if self._dmin is None:
            self._dmin = np.array(column, dtype=np.float64)
            self._tags = np.full(self._metric.num_points, tag_value, dtype=np.int64)
        else:
            closer = column < self._dmin
            self._tags[closer] = tag_value
            np.minimum(self._dmin, column, out=self._dmin)
        self._num_added += 1

    # ------------------------------------------------------------------
    def distance(self, point: int) -> float:
        """``d(point, F)`` — ``inf`` while the set is empty (O(1))."""
        if self._dmin is None:
            return float("inf")
        return float(self._dmin[point])

    def nearest(self, point: int) -> Optional[Tuple[int, float]]:
        """``(tag, distance)`` of the closest member, or ``None`` when empty."""
        if self._dmin is None:
            return None
        return int(self._tags[point]), float(self._dmin[point])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NearestSetTracker(members={self._num_added})"
