"""Cached per-class distance columns for power-of-two cost classes.

The Meyerson-family algorithms (Meyerson OFL, RAND-OMFLP, the per-commodity
Meyerson baseline) evaluate, for *every* arriving request, the distances
``d(C_i, r)`` to the nearest point of every facility cost class ``i`` plus the
derived "cheapest opening option" ``min_i (C_i + d(C_i, r))``.  The reference
helpers rescan the class point sets per class per request — O(classes x n)
per request, with one metric-row gather per class.

:class:`ClassDistanceIndex` computes, on the *first* query from a point, the
whole distance column ``[d(C_1, r), ..., d(C_k, r)]`` from a single metric
row: the row is gathered once in class-major point order, reduced to
per-class minima with one ``np.minimum.reduceat`` pass, and turned into the
cumulative-class convention with ``np.minimum.accumulate``.  The column is
memoized (facility costs are static, so it never changes), making repeat
queries O(1) and the total work O(n) per distinct query point — instead of
O(classes x n) per request.  No O(n^2) precomputation and no pairwise matrix
are ever needed.

The *nearest point* of a class is needed only when a coin flip succeeds or a
feasibility fallback fires — a handful of times per run — so it is resolved
lazily with exactly the reference's scan (``metric.nearest`` over the
caller's cumulative point array, in the caller's order) and memoized.  This
keeps tie-breaking trivially bit-identical: different callers enumerate their
cumulative sets in different orders (ascending point index for the Meyerson
helper, class-concatenation for :class:`~repro.costs.classes.CostClassIndex`)
and ``np.argmin`` resolves equal distances by that order.

Bit-identicality of the columns holds because every entry is a minimum over
exactly the floats the reference reads (entries of ``distances_from(r)``),
and a minimum is order-independent; ``cheapest_open_option`` keeps the first
class attaining its minimum — the reference's strict ``<`` scan order.

The index holds no run-dependent state — columns and nearest-point entries
are memoized pure functions of the static metric and cost classes — so the
session snapshot codec (:mod:`repro.service.snapshot`) never serializes it; a
restored session simply repopulates the memos on demand with identical
values.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.costs.classes import CostClassIndex
from repro.exceptions import AlgorithmError
from repro.metric.base import MetricSpace

__all__ = ["ClassDistanceIndex"]


class ClassDistanceIndex:
    """Memoized ``d(·, C_i)`` columns under the cumulative class convention.

    Parameters
    ----------
    metric:
        The underlying metric space.
    class_values:
        The rounded (power-of-two) cost values ``C_1 < C_2 < ... < C_k``.
    exact_point_sets:
        For each class, the point indices whose rounded cost equals that
        class value exactly (order irrelevant — only minima are taken).
    cumulative_point_sets:
        For each class, the points of rounded cost at most that class value,
        **in the caller's reference enumeration order** — used verbatim for
        the lazy nearest-point scans so ties break exactly as in the caller's
        reference path.
    """

    def __init__(
        self,
        metric: MetricSpace,
        class_values: Sequence[float],
        exact_point_sets: Sequence[Sequence[int]],
        cumulative_point_sets: Sequence[Sequence[int]],
    ) -> None:
        if not class_values or not (
            len(class_values) == len(exact_point_sets) == len(cumulative_point_sets)
        ):
            raise AlgorithmError(
                "class_values, exact_point_sets and cumulative_point_sets must be "
                "equally long and non-empty"
            )
        self._metric = metric
        self._values = np.asarray(class_values, dtype=np.float64)
        self._cumulative: List[np.ndarray] = [
            np.asarray(points, dtype=np.intp) for points in cumulative_point_sets
        ]
        sets = [np.asarray(points, dtype=np.intp) for points in exact_point_sets]
        if any(points.size == 0 for points in sets):
            raise AlgorithmError("every cost class must contain at least one point")
        # Class-major point order plus segment offsets for one reduceat pass.
        self._order = np.concatenate(sets)
        self._offsets = np.concatenate(
            ([0], np.cumsum([points.size for points in sets])[:-1])
        )
        self._columns: Dict[int, np.ndarray] = {}
        self._nearest_cache: Dict[Tuple[int, int], Tuple[int, float]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_cost_index(cls, metric: MetricSpace, index: CostClassIndex) -> "ClassDistanceIndex":
        """Build the index for an existing :class:`CostClassIndex`."""
        return cls(
            metric,
            [c.value for c in index.classes],
            [c.points for c in index.classes],
            [c.cumulative_points for c in index.classes],
        )

    # ------------------------------------------------------------------
    def _column(self, point: int) -> np.ndarray:
        """``[d(C_1, point), ..., d(C_k, point)]`` — computed once per point."""
        column = self._columns.get(point)
        if column is None:
            row = np.asarray(self._metric.distances_from(point), dtype=np.float64)
            per_class = np.minimum.reduceat(row[self._order], self._offsets)
            column = np.minimum.accumulate(per_class)
            self._columns[point] = column
        return column

    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        return int(self._values.size)

    def class_value(self, index: int) -> float:
        """``C_i`` for the 1-based class index."""
        return float(self._values[index - 1])

    def class_distances(self, point: int) -> np.ndarray:
        """Vector ``[d(C_1, point), ..., d(C_k, point)]`` (a fresh copy)."""
        return self._column(point).copy()

    def distance_to_class(self, index: int, point: int) -> float:
        """``d(C_i, point)`` for the 1-based class index (O(1) after first query)."""
        return float(self._column(point)[index - 1])

    def nearest_point_of_class(self, index: int, point: int) -> Tuple[int, float]:
        """Closest point of rounded cost at most ``C_i`` and its distance.

        Resolved with the reference's own scan over the caller's cumulative
        point order (memoized) — see the module docstring.
        """
        key = (index, point)
        cached = self._nearest_cache.get(key)
        if cached is None:
            nearest, distance = self._metric.nearest(point, self._cumulative[index - 1])
            cached = (int(nearest), float(distance))
            self._nearest_cache[key] = cached
        return cached

    def cheapest_open_option(self, point: int) -> Tuple[int, float]:
        """``(argmin_i, min_i { C_i + d(C_i, point) })`` with 1-based index.

        ``np.argmin`` keeps the first class attaining the minimum, matching
        the reference's strict ``<`` scan over ascending class indices.
        """
        options = self._values + self._column(point)
        best = int(np.argmin(options))
        return best + 1, float(options[best])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClassDistanceIndex(classes={self.num_classes}, "
            f"num_points={self._metric.num_points})"
        )
