"""Preallocated bid-history buffers for the primal–dual algorithms.

The primal–dual algorithms (Fotakis OFL, PD-OMFLP) evaluate, per request, the
bid sum of all earlier demands towards every candidate point:

    base(m) = sum_j ( min{a_j, d(F, j)} - d(m, j) )_+

The reference implementations rebuild this from scratch each time — a Python
list comprehension over the history for the bids plus an O(h x n) ``vstack``
copy of the history distance rows.  :class:`BidHistoryBuffer` keeps the rows
in one preallocated, geometrically-grown ``(capacity, n)`` array and the
per-entry duals / nearest-facility distances in flat arrays updated in place,
so each ``base()`` call is a single fused numpy expression with no Python
loop and no row copying.

The ``base()`` result is bit-for-bit identical to the reference: the operands
are the same floats, the buffer slice has the same contiguous ``(h, n)``
layout as the reference's ``vstack``, and numpy's pairwise-summation
reduction order depends only on that layout.

Memory: each buffer keeps its rows resident — O(entries x n) floats — where
the reference only peaked at one transient ``vstack`` of the same size per
request.  Keeping the block contiguous is deliberate: a deduplicated shared
row store was tried and its per-``base()`` gather cost as much as the
reference's ``vstack``, erasing the speedup.  PD-OMFLP's per-commodity
buffers hold only the requests demanding that commodity, so the total across
buffers is O(sum of demand sizes x n); for memory-constrained runs the
``use_accel=False`` reference path remains available.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.exceptions import SnapshotError
from repro.metric.base import MetricSpace
from repro.utils.encoding import decode_floats, encode_floats

__all__ = ["BidHistoryBuffer"]

_INITIAL_CAPACITY = 8


class BidHistoryBuffer:
    """History of ``(point, dual, nearest-facility distance)`` bid entries."""

    def __init__(self, metric: MetricSpace) -> None:
        self._metric = metric
        n = metric.num_points
        self._rows = np.empty((_INITIAL_CAPACITY, n), dtype=np.float64)
        self._points = np.empty(_INITIAL_CAPACITY, dtype=np.intp)
        self._duals = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._nearest = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    def _grow(self) -> None:
        capacity = self._points.shape[0] * 2
        rows = np.empty((capacity, self._metric.num_points), dtype=np.float64)
        rows[: self._size] = self._rows[: self._size]
        self._rows = rows
        for name in ("_points", "_duals", "_nearest"):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=old.dtype)
            new[: self._size] = old[: self._size]
            setattr(self, name, new)

    def append(
        self, point: int, dual: float, nearest: float, *, row: Optional[np.ndarray] = None
    ) -> None:
        """Record a processed demand (its dual is frozen and never changes).

        ``row`` may pass the caller's cached ``distances_from(point)`` to
        avoid recomputing it; otherwise it is fetched from the metric.
        """
        if self._size == self._points.shape[0]:
            self._grow()
        h = self._size
        self._rows[h] = self._metric.distances_from(point) if row is None else row
        self._points[h] = int(point)
        self._duals[h] = float(dual)
        self._nearest[h] = float(nearest)
        self._size = h + 1

    def update_nearest(self, opened_row: np.ndarray) -> None:
        """Fold a newly opened facility into every entry's nearest distance.

        ``opened_row`` is ``distances_from(opened_point)``; entry ``j``'s
        nearest distance becomes ``min(old, opened_row[point_j])`` — exactly
        the reference's per-entry update, vectorized.
        """
        h = self._size
        if h:
            np.minimum(
                self._nearest[:h], opened_row[self._points[:h]], out=self._nearest[:h]
            )

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """JSON-compatible snapshot: per-entry point, dual and nearest distance.

        The O(entries x n) distance rows are *not* stored — they are pure
        metric rows, refetched bit-identically by :meth:`load_state_dict`.
        Nearest distances may be ``inf`` and are string-encoded for strict
        JSON (see :mod:`repro.utils.encoding`).
        """
        h = self._size
        return {
            "points": [int(p) for p in self._points[:h]],
            "duals": [float(d) for d in self._duals[:h]],
            "nearest": encode_floats(self._nearest[:h]),
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Rebuild the buffer by replaying ``append`` (requires a fresh buffer)."""
        if self._size:
            raise SnapshotError(
                f"BidHistoryBuffer.load_state_dict requires an empty buffer; "
                f"this one already holds {self._size} entries"
            )
        nearest = decode_floats(state["nearest"])
        for point, dual, near in zip(state["points"], state["duals"], nearest):
            self.append(int(point), float(dual), near)

    # ------------------------------------------------------------------
    def base(self) -> np.ndarray:
        """``sum_j (min{dual_j, nearest_j} - d(m, j))_+`` over all points ``m``."""
        h = self._size
        if h == 0:
            return np.zeros(self._metric.num_points, dtype=np.float64)
        bids = np.minimum(self._duals[:h], self._nearest[:h])
        return np.maximum(bids[:, None] - self._rows[:h], 0.0).sum(axis=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BidHistoryBuffer(entries={self._size})"
