"""repro — reproduction of *The Online Multi-Commodity Facility Location Problem*.

Castenow, Feldkord, Knollmann, Malatyali, Meyer auf der Heide (SPAA 2020,
arXiv:2005.08391).

The package implements the Online Multi-Commodity Facility Location Problem
(OMFLP) — metric spaces, facility cost functions, the online request model —
together with the paper's two online algorithms (the deterministic
primal–dual ``PD-OMFLP`` and the randomized ``RAND-OMFLP``), the baselines
they are compared against, the adversarial lower-bound constructions
(Theorem 2 / Corollary 3), offline reference solvers for measuring
competitive ratios, and an experiment harness that regenerates every figure
and theorem-backed result of the paper (see ``EXPERIMENTS.md``).

Quickstart
----------
The declarative facade (:mod:`repro.api`) runs a whole scenario from plain
data — see also :class:`OnlineSession` for streaming request arrival:

>>> from repro import RunSpec, run
>>> record = run(RunSpec.from_dict({
...     "algorithm": "pd-omflp",
...     "metric": {"kind": "uniform-line", "num_points": 8},
...     "cost": {"kind": "power", "num_commodities": 4, "exponent_x": 1.0},
...     "requests": [[1, [0, 1]], [6, [2]], [2, [0, 3]]],
... }))
>>> record.total_cost > 0
True

The class-based layer stays available for programmatic construction:

>>> from repro import (
...     Instance, RequestSequence, PowerCost, uniform_line_metric,
...     PDOMFLPAlgorithm, run_online,
... )
>>> metric = uniform_line_metric(8)
>>> cost = PowerCost(num_commodities=4, exponent_x=1.0)
>>> requests = RequestSequence.from_tuples([(1, {0, 1}), (6, {2}), (2, {0, 3})])
>>> instance = Instance(metric, cost, requests)
>>> result = run_online(PDOMFLPAlgorithm(), instance)
>>> result.solution.validate(instance.requests)   # every commodity is served
>>> result.total_cost > 0
True
"""

from repro.algorithms import (
    AlwaysLargeGreedy,
    BruteForceSolver,
    FotakisOFLAlgorithm,
    GreedyOfflineSolver,
    LocalSearchSolver,
    MeyersonOFLAlgorithm,
    NoPredictionGreedy,
    OfflineResult,
    OfflineSolver,
    OnlineAlgorithm,
    OnlineResult,
    PDOMFLPAlgorithm,
    PerCommodityAlgorithm,
    RandOMFLPAlgorithm,
    ThresholdPDAlgorithm,
    run_online,
)
from repro.api import (
    ALGORITHMS,
    COSTS,
    METRICS,
    SOLVERS,
    WORKLOADS,
    AssignmentEvent,
    OnlineSession,
    Registry,
    RunRecord,
    RunSpec,
    records_to_csv,
    run,
    run_grid,
    run_many,
)
from repro.core import (
    Assignment,
    CommodityUniverse,
    Facility,
    FacilityStore,
    Instance,
    OnlineState,
    Request,
    RequestSequence,
    Solution,
    Trace,
)
from repro.costs import (
    AdversaryCost,
    ConstantCost,
    CostClassIndex,
    CountBasedCost,
    FacilityCostFunction,
    HierarchicalCost,
    LinearCost,
    OrderedLinearCost,
    PerPointScaledCost,
    PowerCost,
    TabulatedCost,
    WeightedConcaveCost,
    check_condition_one,
    check_subadditivity,
)
from repro.engine import ExperimentPlan, ResultStore, engine_task, run_plan
from repro.exceptions import (
    AlgorithmError,
    EngineError,
    ExperimentError,
    InfeasibleSolutionError,
    InvalidCostFunctionError,
    InvalidInstanceError,
    InvalidMetricError,
    ParallelTaskError,
    ReproError,
    UnknownComponentError,
)
from repro.metric import (
    EuclideanMetric,
    ExplicitMetric,
    GraphMetric,
    GridMetric,
    LineMetric,
    MetricSpace,
    SinglePointMetric,
    TreeMetric,
    random_euclidean_metric,
    random_graph_metric,
    random_line_metric,
    random_tree_metric,
    uniform_line_metric,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # api facade
    "Registry",
    "METRICS",
    "COSTS",
    "WORKLOADS",
    "ALGORITHMS",
    "SOLVERS",
    "RunSpec",
    "RunRecord",
    "records_to_csv",
    "run",
    "run_many",
    "run_grid",
    "OnlineSession",
    "AssignmentEvent",
    # engine
    "ExperimentPlan",
    "ResultStore",
    "run_plan",
    "engine_task",
    # core
    "Instance",
    "Request",
    "RequestSequence",
    "CommodityUniverse",
    "Facility",
    "FacilityStore",
    "Assignment",
    "Solution",
    "OnlineState",
    "Trace",
    # metric
    "MetricSpace",
    "ExplicitMetric",
    "LineMetric",
    "EuclideanMetric",
    "GridMetric",
    "GraphMetric",
    "TreeMetric",
    "SinglePointMetric",
    "uniform_line_metric",
    "random_line_metric",
    "random_euclidean_metric",
    "random_graph_metric",
    "random_tree_metric",
    # costs
    "FacilityCostFunction",
    "CountBasedCost",
    "PowerCost",
    "LinearCost",
    "ConstantCost",
    "AdversaryCost",
    "WeightedConcaveCost",
    "PerPointScaledCost",
    "TabulatedCost",
    "HierarchicalCost",
    "OrderedLinearCost",
    "CostClassIndex",
    "check_subadditivity",
    "check_condition_one",
    # algorithms
    "PDOMFLPAlgorithm",
    "RandOMFLPAlgorithm",
    "ThresholdPDAlgorithm",
    "FotakisOFLAlgorithm",
    "MeyersonOFLAlgorithm",
    "PerCommodityAlgorithm",
    "NoPredictionGreedy",
    "AlwaysLargeGreedy",
    "BruteForceSolver",
    "GreedyOfflineSolver",
    "LocalSearchSolver",
    "OnlineAlgorithm",
    "OnlineResult",
    "OfflineSolver",
    "OfflineResult",
    "run_online",
    # exceptions
    "ReproError",
    "InvalidMetricError",
    "InvalidCostFunctionError",
    "InvalidInstanceError",
    "InfeasibleSolutionError",
    "AlgorithmError",
    "ExperimentError",
    "ParallelTaskError",
    "EngineError",
    "UnknownComponentError",
]
