"""Growth-rate fits used to compare measured scaling against the theory.

The paper's bounds predict *shapes*: competitive ratios growing like
``sqrt(|S|)`` (a power law with exponent 0.5 in ``|S|``) and like ``log n`` or
``log n / log log n`` in the number of requests.  The experiments therefore
fit

* a power law ``y = a * x^b`` (log–log least squares) to ratio-vs-``|S|``
  series, reporting the exponent ``b``, and
* a logarithmic model ``y = a + b * log x`` to ratio-vs-``n`` series,
  reporting the slope ``b`` and the correlation of the fit,

and EXPERIMENTS.md records the fitted values next to the predicted ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ExperimentError

__all__ = ["PowerLawFit", "LogGrowthFit", "fit_power_law", "fit_log_growth"]


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y = prefactor * x ** exponent``."""

    exponent: float
    prefactor: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.prefactor * float(x) ** self.exponent


@dataclass(frozen=True)
class LogGrowthFit:
    """Least-squares fit of ``y = intercept + slope * log(x)``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.intercept + self.slope * float(np.log(x))


def _r_squared(y: np.ndarray, predicted: np.ndarray) -> float:
    residual = float(np.sum((y - predicted) ** 2))
    total = float(np.sum((y - y.mean()) ** 2))
    if total <= 0:
        return 1.0 if residual <= 1e-18 else 0.0
    return 1.0 - residual / total


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = a * x^b`` by linear regression in log–log space."""
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.shape != y.shape or x.size < 2:
        raise ExperimentError("fit_power_law needs at least two (x, y) pairs of equal length")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ExperimentError("fit_power_law requires strictly positive data")
    log_x, log_y = np.log(x), np.log(y)
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = intercept + slope * log_x
    return PowerLawFit(
        exponent=float(slope),
        prefactor=float(np.exp(intercept)),
        r_squared=_r_squared(log_y, predicted),
    )


def fit_log_growth(xs: Sequence[float], ys: Sequence[float]) -> LogGrowthFit:
    """Fit ``y = a + b * log(x)`` by least squares."""
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.shape != y.shape or x.size < 2:
        raise ExperimentError("fit_log_growth needs at least two (x, y) pairs of equal length")
    if np.any(x <= 0):
        raise ExperimentError("fit_log_growth requires strictly positive x values")
    log_x = np.log(x)
    slope, intercept = np.polyfit(log_x, y, 1)
    predicted = intercept + slope * log_x
    return LogGrowthFit(
        slope=float(slope), intercept=float(intercept), r_squared=_r_squared(y, predicted)
    )
