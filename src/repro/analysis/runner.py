"""The result container shared by all experiments."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.analysis.tables import format_markdown_table, format_table
from repro.exceptions import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api imports analysis)
    from repro.api.record import RunRecord
    from repro.engine.executor import PlanResult

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes
    ----------
    experiment_id:
        The identifier used in DESIGN.md / EXPERIMENTS.md (e.g.
        ``"thm2-single-point"``).
    title:
        One-line description of what the experiment reproduces.
    rows:
        The regenerated table (list of flat dictionaries).
    notes:
        Free-form observations, including the expected qualitative outcome and
        whether the measured shape matches it.
    parameters:
        The configuration the experiment ran with (profile, sizes, seeds).
    extra_text:
        Optional additional transcript (e.g. the Figure-1 / Figure-3 traces).
    """

    experiment_id: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    parameters: Dict[str, Any] = field(default_factory=dict)
    extra_text: Optional[str] = None

    @classmethod
    def from_records(
        cls,
        experiment_id: str,
        title: str,
        records: "Sequence[RunRecord]",
        **kwargs: Any,
    ) -> "ExperimentResult":
        """Tabulate unified :class:`~repro.api.record.RunRecord` results.

        One row per record (its :meth:`~repro.api.record.RunRecord.to_row`
        form), so ad-hoc ``repro.api.run_many`` batches drop straight into the
        experiment table/JSON machinery.
        """
        return cls(
            experiment_id=experiment_id,
            title=title,
            rows=[record.to_row() for record in records],
            **kwargs,
        )

    @classmethod
    def from_plan_result(
        cls,
        experiment_id: str,
        title: str,
        outcome: "PlanResult",
        **kwargs: Any,
    ) -> "ExperimentResult":
        """Tabulate an engine :class:`~repro.engine.executor.PlanResult`.

        One row per emitted task row, flattened in case order — the standard
        reduce step of the engine-backed experiments (they then append their
        experiment-specific notes and fits).
        """
        return cls(
            experiment_id=experiment_id,
            title=title,
            rows=outcome.rows,
            **kwargs,
        )

    def to_table(self, *, columns: Optional[Sequence[str]] = None) -> str:
        table = format_table(self.rows, columns=columns, title=f"[{self.experiment_id}] {self.title}")
        sections = [table]
        if self.notes:
            sections.append("\n".join(f"note: {note}" for note in self.notes))
        if self.extra_text:
            sections.append(self.extra_text)
        return "\n\n".join(sections)

    def to_markdown(self, *, columns: Optional[Sequence[str]] = None) -> str:
        header = f"### {self.experiment_id} — {self.title}\n"
        table = format_markdown_table(self.rows, columns=columns)
        notes = "\n".join(f"* {note}" for note in self.notes)
        parts = [header, table]
        if notes:
            parts.append(notes)
        if self.extra_text:
            parts.append("```\n" + self.extra_text + "\n```")
        return "\n\n".join(part for part in parts if part)

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "parameters": self.parameters,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=2,
            default=str,
        )

    def save(self, directory: Path) -> Path:
        """Write the JSON form to ``<directory>/<experiment_id>.json``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment_id}.json"
        path.write_text(self.to_json())
        return path

    def require_rows(self) -> None:
        if not self.rows:
            raise ExperimentError(f"experiment {self.experiment_id} produced no rows")
