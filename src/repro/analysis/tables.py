"""Plain-text and markdown table rendering for experiment output."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["format_table", "format_markdown_table"]


def _format_value(value: Any, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def _normalize_rows(
    rows: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]]
) -> tuple[List[str], List[List[str]]]:
    if not rows:
        return list(columns or []), []
    if columns is None:
        seen: List[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    return list(columns), rows  # type: ignore[return-value]


def format_table(
    rows: Sequence[Dict[str, Any]],
    *,
    columns: Optional[Sequence[str]] = None,
    float_format: str = ".4g",
    title: Optional[str] = None,
) -> str:
    """Render rows (list of dicts) as an aligned plain-text table."""
    column_names, _ = _normalize_rows(rows, columns)
    if not column_names or not rows:
        return title or ""
    cells = [
        [_format_value(row.get(column, ""), float_format) for column in column_names]
        for row in rows
    ]
    widths = [
        max(len(column_names[i]), *(len(row[i]) for row in cells)) if cells else len(column_names[i])
        for i in range(len(column_names))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(column_names))
    lines.append(header)
    lines.append("  ".join("-" * widths[i] for i in range(len(column_names))))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(column_names))))
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[Dict[str, Any]],
    *,
    columns: Optional[Sequence[str]] = None,
    float_format: str = ".4g",
) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    column_names, _ = _normalize_rows(rows, columns)
    if not column_names or not rows:
        return ""
    lines = [
        "| " + " | ".join(column_names) + " |",
        "| " + " | ".join("---" for _ in column_names) + " |",
    ]
    for row in rows:
        lines.append(
            "| "
            + " | ".join(_format_value(row.get(column, ""), float_format) for column in column_names)
            + " |"
        )
    return "\n".join(lines)
