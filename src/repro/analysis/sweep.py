"""Parameter grids, and ad-hoc sweeps as a thin shim over the engine."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.exceptions import ExperimentError

__all__ = ["ParameterGrid", "run_sweep"]


@dataclass(frozen=True)
class ParameterGrid:
    """A cartesian grid of named parameter values.

    Example
    -------
    >>> grid = ParameterGrid({"num_commodities": [16, 64], "seed": [0, 1, 2]})
    >>> len(list(grid))
    6
    """

    values: Mapping[str, Sequence[Any]]

    def __post_init__(self) -> None:
        if not self.values:
            raise ExperimentError("a parameter grid needs at least one parameter")
        # Coerce every option sequence to a tuple once: generator-valued
        # parameters would otherwise be exhausted by validation and silently
        # yield zero combinations when iterated.
        frozen = {name: tuple(options) for name, options in self.values.items()}
        object.__setattr__(self, "values", frozen)
        for name, options in frozen.items():
            if len(options) == 0:
                raise ExperimentError(f"parameter {name!r} has no values")

    def __iter__(self):
        names = list(self.values.keys())
        for combination in itertools.product(*(self.values[name] for name in names)):
            yield dict(zip(names, combination))

    def __len__(self) -> int:
        length = 1
        for options in self.values.values():
            length *= len(options)
        return length


@dataclass(frozen=True)
class _ParameterWorker:
    """Adapts a params-only sweep worker to the engine task signature.

    A module-level class (not a closure) so instances pickle across process
    boundaries whenever the wrapped worker itself does.
    """

    worker: Callable[[Dict[str, Any]], Dict[str, Any]]

    def __call__(self, case: Dict[str, Any], rng: Any) -> Dict[str, Any]:
        return self.worker(case)


def run_sweep(
    worker: Callable[[Dict[str, Any]], Dict[str, Any]],
    grid: ParameterGrid,
    *,
    workers: Optional[int] = 1,
    chunk_size: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Evaluate ``worker`` on every grid point, returning one row dict per point.

    ``worker`` receives the parameter dictionary and must return a flat
    dictionary (a table row); the sweep adds the input parameters to the row
    so that downstream tables are self-describing.  With ``workers > 1`` the
    evaluations are scattered over a process pool (``worker`` must then be a
    module-level function).

    This is a thin shim over the experiment engine: the grid becomes an
    ad-hoc :class:`~repro.engine.plan.ExperimentPlan` and runs through
    :func:`~repro.engine.executor.run_plan` (in-process task, no store).
    """
    # Imported here (not at module top) because the engine imports this
    # module for ParameterGrid.
    from repro.engine.executor import run_plan
    from repro.engine.plan import ExperimentPlan

    plan = ExperimentPlan(
        name="ad-hoc-sweep",
        task=_ParameterWorker(worker),
        cases=list(grid),
        seed=0,
        # User grids may legitimately contain a parameter named "task".
        allow_case_task_override=False,
    )
    # Historical run_sweep contract: workers=None means serial (the engine's
    # ParallelConfig would read it as os.cpu_count(), which breaks closure
    # workers that never needed to pickle before).
    outcome = run_plan(plan, workers=1 if workers is None else workers, chunk_size=chunk_size)
    return [
        _merge_row(dict(case), result.row)
        for case, result in zip(plan.cases, outcome.results)
    ]


def _merge_row(parameters: Dict[str, Any], result: Dict[str, Any]) -> Dict[str, Any]:
    """One self-describing table row: the grid point plus the worker's outputs."""
    row = dict(parameters)
    row.update(result)
    return row
