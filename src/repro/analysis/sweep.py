"""Parameter sweeps with optional process-based parallelism."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.exceptions import ExperimentError
from repro.parallel.pool import ParallelConfig, parallel_map

__all__ = ["ParameterGrid", "run_sweep"]


@dataclass(frozen=True)
class ParameterGrid:
    """A cartesian grid of named parameter values.

    Example
    -------
    >>> grid = ParameterGrid({"num_commodities": [16, 64], "seed": [0, 1, 2]})
    >>> len(list(grid))
    6
    """

    values: Mapping[str, Sequence[Any]]

    def __post_init__(self) -> None:
        if not self.values:
            raise ExperimentError("a parameter grid needs at least one parameter")
        for name, options in self.values.items():
            if len(list(options)) == 0:
                raise ExperimentError(f"parameter {name!r} has no values")

    def __iter__(self):
        names = list(self.values.keys())
        for combination in itertools.product(*(self.values[name] for name in names)):
            yield dict(zip(names, combination))

    def __len__(self) -> int:
        length = 1
        for options in self.values.values():
            length *= len(list(options))
        return length


def run_sweep(
    worker: Callable[[Dict[str, Any]], Dict[str, Any]],
    grid: ParameterGrid,
    *,
    workers: Optional[int] = 1,
    chunk_size: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Evaluate ``worker`` on every grid point, returning one row dict per point.

    ``worker`` receives the parameter dictionary and must return a flat
    dictionary (a table row); the sweep adds the input parameters to the row
    so that downstream tables are self-describing.  With ``workers > 1`` the
    evaluations are scattered over a process pool (``worker`` must then be a
    module-level function).
    """
    points = list(grid)

    def _wrapped(parameters: Dict[str, Any]) -> Dict[str, Any]:
        row = dict(parameters)
        row.update(worker(parameters))
        return row

    if workers is not None and workers > 1:
        # A closure cannot cross process boundaries; run the worker remotely
        # and merge the parameters locally instead.
        results = parallel_map(
            worker, points, config=ParallelConfig(workers=workers, chunk_size=chunk_size)
        )
        rows = []
        for parameters, result in zip(points, results):
            row = dict(parameters)
            row.update(result)
            rows.append(row)
        return rows
    return [_wrapped(parameters) for parameters in points]
