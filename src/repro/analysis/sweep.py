"""Parameter sweeps with optional process-based parallelism."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.exceptions import ExperimentError
from repro.parallel.pool import ParallelConfig, parallel_map

__all__ = ["ParameterGrid", "run_sweep"]


@dataclass(frozen=True)
class ParameterGrid:
    """A cartesian grid of named parameter values.

    Example
    -------
    >>> grid = ParameterGrid({"num_commodities": [16, 64], "seed": [0, 1, 2]})
    >>> len(list(grid))
    6
    """

    values: Mapping[str, Sequence[Any]]

    def __post_init__(self) -> None:
        if not self.values:
            raise ExperimentError("a parameter grid needs at least one parameter")
        # Coerce every option sequence to a tuple once: generator-valued
        # parameters would otherwise be exhausted by validation and silently
        # yield zero combinations when iterated.
        frozen = {name: tuple(options) for name, options in self.values.items()}
        object.__setattr__(self, "values", frozen)
        for name, options in frozen.items():
            if len(options) == 0:
                raise ExperimentError(f"parameter {name!r} has no values")

    def __iter__(self):
        names = list(self.values.keys())
        for combination in itertools.product(*(self.values[name] for name in names)):
            yield dict(zip(names, combination))

    def __len__(self) -> int:
        length = 1
        for options in self.values.values():
            length *= len(options)
        return length


def run_sweep(
    worker: Callable[[Dict[str, Any]], Dict[str, Any]],
    grid: ParameterGrid,
    *,
    workers: Optional[int] = 1,
    chunk_size: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Evaluate ``worker`` on every grid point, returning one row dict per point.

    ``worker`` receives the parameter dictionary and must return a flat
    dictionary (a table row); the sweep adds the input parameters to the row
    so that downstream tables are self-describing.  With ``workers > 1`` the
    evaluations are scattered over a process pool (``worker`` must then be a
    module-level function).
    """
    points = list(grid)
    if workers is not None and workers > 1:
        # A closure cannot cross process boundaries; run the worker remotely
        # and merge the parameters locally instead.
        results = parallel_map(
            worker, points, config=ParallelConfig(workers=workers, chunk_size=chunk_size)
        )
    else:
        results = [worker(parameters) for parameters in points]
    return [_merge_row(parameters, result) for parameters, result in zip(points, results)]


def _merge_row(parameters: Dict[str, Any], result: Dict[str, Any]) -> Dict[str, Any]:
    """One self-describing table row: the grid point plus the worker's outputs."""
    row = dict(parameters)
    row.update(result)
    return row
