"""Competitive-ratio measurement (Definition 1 of the paper).

The competitive ratio compares the online algorithm's cost against the
optimal offline cost.  Exact OPT is only available for tiny instances, so
:func:`reference_cost` assembles the best available reference from the
offline-solver portfolio and records *which* reference was used and whether it
is an upper bound, a lower bound or exact — the experiments propagate that
label into their tables (see DESIGN.md, substitution notes).

For *streaming* sessions, where re-solving an offline reference per arrival is
out of the question, :class:`IncrementalOfflineBound` maintains an LP-free
**lower** bound on the offline optimum of the request prefix in O(1) amortized
work per arrival; :func:`streaming_lower_bound` is the batch entry point, a
thin shim that feeds a whole instance through the incremental update (pinned
exactly equal by ``tests/test_telemetry.py``).  The telemetry layer's rolling
competitive-ratio probe (:mod:`repro.telemetry`) is built on this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

import numpy as np

from repro.algorithms.base import OfflineResult, OnlineAlgorithm, run_online
from repro.algorithms.offline.brute_force import BruteForceSolver
from repro.algorithms.offline.greedy import GreedyOfflineSolver
from repro.algorithms.offline.local_search import LocalSearchSolver
from repro.core.instance import Instance
from repro.core.requests import Request
from repro.costs.base import FacilityCostFunction
from repro.exceptions import AlgorithmError, ExperimentError
from repro.metric.base import MetricSpace
from repro.utils.rng import RandomState, ensure_rng
from repro.workloads.base import GeneratedWorkload

__all__ = [
    "CompetitiveMeasurement",
    "IncrementalOfflineBound",
    "measure_competitive_ratio",
    "reference_cost",
    "streaming_lower_bound",
    "ReferenceCost",
]


@dataclass(frozen=True)
class ReferenceCost:
    """An offline reference cost plus its provenance."""

    value: float
    kind: str  # "exact", "upper-bound", "lower-bound", "analytic"
    solver: str

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ExperimentError(f"reference cost must be non-negative, got {self.value}")


@dataclass
class CompetitiveMeasurement:
    """Measured cost of one algorithm on one instance against one reference."""

    algorithm: str
    instance: str
    reference: ReferenceCost
    costs: List[float] = field(default_factory=list)
    runtimes: List[float] = field(default_factory=list)

    @property
    def mean_cost(self) -> float:
        return float(np.mean(self.costs)) if self.costs else float("nan")

    @property
    def std_cost(self) -> float:
        return float(np.std(self.costs)) if self.costs else float("nan")

    @property
    def ratio(self) -> float:
        if self.reference.value <= 0:
            return float("inf")
        return self.mean_cost / self.reference.value

    @property
    def mean_runtime(self) -> float:
        return float(np.mean(self.runtimes)) if self.runtimes else float("nan")

    def as_row(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "instance": self.instance,
            "cost": self.mean_cost,
            "cost_std": self.std_cost,
            "reference_cost": self.reference.value,
            "reference_kind": self.reference.kind,
            "ratio": self.ratio,
            "runtime_s": self.mean_runtime,
        }


def reference_cost(
    workload_or_instance: Union[GeneratedWorkload, Instance],
    *,
    exact_limit_combinations: int = 50_000,
    local_search_iterations: int = 15,
    known_opt: Optional[float] = None,
) -> ReferenceCost:
    """Best available offline reference for an instance.

    Preference order: an analytically known OPT (``known_opt``), exact brute
    force when the search space is small enough, otherwise the cheaper of the
    planted solution (when the workload provides one), offline greedy and
    local search — all upper bounds on OPT, so ratios computed against them
    over-estimate the competitive ratio.
    """
    if known_opt is not None:
        return ReferenceCost(value=float(known_opt), kind="analytic", solver="known")
    if isinstance(workload_or_instance, GeneratedWorkload):
        workload: Optional[GeneratedWorkload] = workload_or_instance
        instance = workload_or_instance.instance
    else:
        workload = None
        instance = workload_or_instance

    # Exact brute force when affordable.
    try:
        exact = BruteForceSolver(max_combinations=exact_limit_combinations).solve(instance)
        return ReferenceCost(value=exact.total_cost, kind="exact", solver=exact.solver)
    except AlgorithmError:
        pass

    candidates: List[OfflineResult] = []
    if workload is not None:
        planted = workload.planted_solver()
        if planted is not None:
            candidates.append(planted.solve(instance))
    candidates.append(GreedyOfflineSolver().solve(instance))
    if local_search_iterations > 0:
        initial = None
        if candidates:
            best_so_far = min(candidates, key=lambda r: r.total_cost)
            initial = [(f.point, f.configuration) for f in best_so_far.solution.facilities]
        candidates.append(
            LocalSearchSolver(
                max_iterations=local_search_iterations, initial_specs=initial
            ).solve(instance)
        )
    best = min(candidates, key=lambda r: r.total_cost)
    return ReferenceCost(value=best.total_cost, kind="upper-bound", solver=best.solver)


BOUND_STATE_FORMAT = "repro.analysis.offline-bound"
BOUND_STATE_VERSION = 1


class IncrementalOfflineBound:
    """LP-free lower bound on offline OPT of a request prefix, updated per arrival.

    The bound is a streaming form of the classic ball-packing argument.  For
    each commodity ``e`` it lazily computes the cheapest singleton opening
    cost ``f_e = min_m f^{{e}}_m`` (one vectorized scan on first sight of
    ``e``) and maintains a greedy set of *anchors*: request points demanding
    ``e`` that are pairwise more than ``2·f_e`` apart.  The balls of radius
    ``f_e`` around anchors are then disjoint, so any offline solution pays at
    least ``f_e`` per anchor — either a connection of length ≥ ``f_e`` or an
    opening of a facility whose configuration contains ``e`` (cost ≥ ``f_e``
    whenever the cost function is monotone in the configuration, which every
    stock cost satisfies) inside the anchor's exclusive ball.  The overall
    bound is ``max_e k_e·f_e`` with ``k_e`` the anchor count: a *max*, not a
    sum, because one facility opening can be charged by several commodities.

    Updates are O(1) amortized: the accept/reject decision for a
    ``(commodity, point)`` pair is *time-invariant* (anchors only grow, so a
    rejected point stays rejected; an accepted point becomes an anchor and
    rejects its own repeats), which lets a per-commodity memo of already-seen
    points short-circuit repeat arrivals to one set lookup.  The memo is a
    pure cache — bounded by the metric's point count, not the stream length,
    and deliberately excluded from :meth:`state_dict` (a resumed bound
    re-derives the same rejections).  This is what makes the telemetry
    layer's rolling competitive-ratio probe affordable per arrival.  The
    bound is monotone non-decreasing in the prefix and deterministic
    (commodities are processed in sorted order; no RNG involved).

    State round-trips losslessly through :meth:`state_dict` /
    :meth:`load_state_dict` (strict JSON), so snapshots carry it
    bit-identically.
    """

    def __init__(
        self,
        metric: MetricSpace,
        cost: FacilityCostFunction,
        *,
        anchor_cap: int = 256,
    ) -> None:
        if anchor_cap < 1:
            raise ExperimentError(f"anchor_cap must be at least 1, got {anchor_cap}")
        self._metric = metric
        self._cost = cost
        self._anchor_cap = int(anchor_cap)
        self._singleton_costs: Dict[int, float] = {}
        self._anchors: Dict[int, List[int]] = {}
        # Pure cache of points already decided per commodity (see class
        # docstring); never serialized, rebuilt implicitly after a restore.
        self._seen_points: Dict[int, set] = {}
        self._num_requests = 0
        self._bound = 0.0

    # ------------------------------------------------------------------
    @property
    def value(self) -> float:
        """Current lower bound on offline OPT of the requests seen so far."""
        return self._bound

    @property
    def num_requests(self) -> int:
        return self._num_requests

    @property
    def anchor_cap(self) -> int:
        return self._anchor_cap

    def _singleton_cost(self, commodity: int) -> float:
        cached = self._singleton_costs.get(commodity)
        if cached is None:
            cached = float(
                np.min(
                    self._cost.costs_over_points(
                        (commodity,), range(self._metric.num_points)
                    )
                )
            )
            self._singleton_costs[commodity] = cached
            self._anchors[commodity] = []
        return cached

    def update(self, request: Request) -> float:
        """Fold one arrival into the bound and return the new bound value."""
        return self.update_arrival(request.point, request.commodities)

    def update_arrival(self, point: int, commodities: Iterable[int]) -> float:
        """:meth:`update` on a raw ``(point, commodities)`` pair.

        The telemetry hot path: skips :class:`Request` construction (and its
        validation) for arrivals that already exist as events.
        """
        self._num_requests += 1
        # Each commodity owns its own anchor set and singleton cost, so the
        # per-commodity decisions are independent and processing order cannot
        # change the bound (state dicts sort on the way out regardless).
        seen_map = self._seen_points
        for commodity in commodities:
            seen = seen_map.get(commodity)
            if seen is None:
                seen = seen_map[commodity] = set()
            elif point in seen:
                continue  # time-invariant decision, already made for this pair
            seen.add(point)
            f_e = self._singleton_cost(commodity)
            if f_e <= 0.0:
                continue  # zero-cost openings make the ball argument vacuous
            anchors = self._anchors[commodity]
            if len(anchors) >= self._anchor_cap:
                continue
            if anchors:
                separation = float(
                    np.min(self._metric.distances_between(point, anchors))
                )
                if separation <= 2.0 * f_e:
                    continue
            anchors.append(int(point))
            candidate = len(anchors) * f_e
            if candidate > self._bound:
                self._bound = candidate
        return self._bound

    # ------------------------------------------------------------------
    # Strict-JSON state round-trip
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "format": BOUND_STATE_FORMAT,
            "version": BOUND_STATE_VERSION,
            "anchor_cap": self._anchor_cap,
            "num_requests": self._num_requests,
            "bound": self._bound,
            "singleton_costs": {
                str(e): self._singleton_costs[e] for e in sorted(self._singleton_costs)
            },
            "anchors": {
                str(e): list(self._anchors[e]) for e in sorted(self._anchors)
            },
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        if state.get("format") != BOUND_STATE_FORMAT:
            raise ExperimentError(
                f"not an offline-bound state dict: format={state.get('format')!r}"
            )
        if state.get("version") != BOUND_STATE_VERSION:
            raise ExperimentError(
                f"unsupported offline-bound state version {state.get('version')!r}"
            )
        self._anchor_cap = int(state["anchor_cap"])
        self._num_requests = int(state["num_requests"])
        self._bound = float(state["bound"])
        self._singleton_costs = {
            int(e): float(v) for e, v in state["singleton_costs"].items()
        }
        self._anchors = {
            int(e): [int(p) for p in points] for e, points in state["anchors"].items()
        }
        self._seen_points = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalOfflineBound(bound={self._bound:.4f}, "
            f"num_requests={self._num_requests})"
        )


def streaming_lower_bound(
    instance: Instance, *, anchor_cap: int = 256
) -> ReferenceCost:
    """Batch entry point for the streaming lower bound.

    A thin shim over :class:`IncrementalOfflineBound` — it feeds the whole
    request sequence through :meth:`~IncrementalOfflineBound.update` and wraps
    the final value.  By construction the result is *exactly* equal to the
    rolling bound a streaming session reports at finalize (pinned with ``==``
    in ``tests/test_telemetry.py``).
    """
    bound = IncrementalOfflineBound(
        instance.metric, instance.cost_function, anchor_cap=anchor_cap
    )
    value = 0.0
    for request in instance.requests:
        value = bound.update(request)
    return ReferenceCost(value=value, kind="lower-bound", solver="streaming-anchors")


def measure_competitive_ratio(
    algorithm: OnlineAlgorithm,
    workload_or_instance: Union[GeneratedWorkload, Instance],
    *,
    reference: Optional[ReferenceCost] = None,
    repeats: Optional[int] = None,
    rng: RandomState = None,
    known_opt: Optional[float] = None,
) -> CompetitiveMeasurement:
    """Run ``algorithm`` (repeatedly if randomized) and compare to the reference."""
    instance = (
        workload_or_instance.instance
        if isinstance(workload_or_instance, GeneratedWorkload)
        else workload_or_instance
    )
    generator = ensure_rng(rng)
    if reference is None:
        reference = reference_cost(workload_or_instance, known_opt=known_opt)
    runs = repeats if repeats is not None else (5 if algorithm.randomized else 1)
    if runs < 1:
        raise ExperimentError("repeats must be at least 1")
    measurement = CompetitiveMeasurement(
        algorithm=algorithm.name, instance=instance.name, reference=reference
    )
    for _ in range(runs):
        result = run_online(algorithm, instance, rng=generator)
        measurement.costs.append(result.total_cost)
        measurement.runtimes.append(result.runtime_seconds)
    return measurement
