"""Competitive-ratio measurement (Definition 1 of the paper).

The competitive ratio compares the online algorithm's cost against the
optimal offline cost.  Exact OPT is only available for tiny instances, so
:func:`reference_cost` assembles the best available reference from the
offline-solver portfolio and records *which* reference was used and whether it
is an upper bound, a lower bound or exact — the experiments propagate that
label into their tables (see DESIGN.md, substitution notes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.algorithms.base import OfflineResult, OnlineAlgorithm, run_online
from repro.algorithms.offline.brute_force import BruteForceSolver
from repro.algorithms.offline.greedy import GreedyOfflineSolver
from repro.algorithms.offline.local_search import LocalSearchSolver
from repro.core.instance import Instance
from repro.exceptions import AlgorithmError, ExperimentError
from repro.utils.rng import RandomState, ensure_rng
from repro.workloads.base import GeneratedWorkload

__all__ = ["CompetitiveMeasurement", "measure_competitive_ratio", "reference_cost", "ReferenceCost"]


@dataclass(frozen=True)
class ReferenceCost:
    """An offline reference cost plus its provenance."""

    value: float
    kind: str  # "exact", "upper-bound", "lower-bound", "analytic"
    solver: str

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ExperimentError(f"reference cost must be non-negative, got {self.value}")


@dataclass
class CompetitiveMeasurement:
    """Measured cost of one algorithm on one instance against one reference."""

    algorithm: str
    instance: str
    reference: ReferenceCost
    costs: List[float] = field(default_factory=list)
    runtimes: List[float] = field(default_factory=list)

    @property
    def mean_cost(self) -> float:
        return float(np.mean(self.costs)) if self.costs else float("nan")

    @property
    def std_cost(self) -> float:
        return float(np.std(self.costs)) if self.costs else float("nan")

    @property
    def ratio(self) -> float:
        if self.reference.value <= 0:
            return float("inf")
        return self.mean_cost / self.reference.value

    @property
    def mean_runtime(self) -> float:
        return float(np.mean(self.runtimes)) if self.runtimes else float("nan")

    def as_row(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "instance": self.instance,
            "cost": self.mean_cost,
            "cost_std": self.std_cost,
            "reference_cost": self.reference.value,
            "reference_kind": self.reference.kind,
            "ratio": self.ratio,
            "runtime_s": self.mean_runtime,
        }


def reference_cost(
    workload_or_instance: Union[GeneratedWorkload, Instance],
    *,
    exact_limit_combinations: int = 50_000,
    local_search_iterations: int = 15,
    known_opt: Optional[float] = None,
) -> ReferenceCost:
    """Best available offline reference for an instance.

    Preference order: an analytically known OPT (``known_opt``), exact brute
    force when the search space is small enough, otherwise the cheaper of the
    planted solution (when the workload provides one), offline greedy and
    local search — all upper bounds on OPT, so ratios computed against them
    over-estimate the competitive ratio.
    """
    if known_opt is not None:
        return ReferenceCost(value=float(known_opt), kind="analytic", solver="known")
    if isinstance(workload_or_instance, GeneratedWorkload):
        workload: Optional[GeneratedWorkload] = workload_or_instance
        instance = workload_or_instance.instance
    else:
        workload = None
        instance = workload_or_instance

    # Exact brute force when affordable.
    try:
        exact = BruteForceSolver(max_combinations=exact_limit_combinations).solve(instance)
        return ReferenceCost(value=exact.total_cost, kind="exact", solver=exact.solver)
    except AlgorithmError:
        pass

    candidates: List[OfflineResult] = []
    if workload is not None:
        planted = workload.planted_solver()
        if planted is not None:
            candidates.append(planted.solve(instance))
    candidates.append(GreedyOfflineSolver().solve(instance))
    if local_search_iterations > 0:
        initial = None
        if candidates:
            best_so_far = min(candidates, key=lambda r: r.total_cost)
            initial = [(f.point, f.configuration) for f in best_so_far.solution.facilities]
        candidates.append(
            LocalSearchSolver(
                max_iterations=local_search_iterations, initial_specs=initial
            ).solve(instance)
        )
    best = min(candidates, key=lambda r: r.total_cost)
    return ReferenceCost(value=best.total_cost, kind="upper-bound", solver=best.solver)


def measure_competitive_ratio(
    algorithm: OnlineAlgorithm,
    workload_or_instance: Union[GeneratedWorkload, Instance],
    *,
    reference: Optional[ReferenceCost] = None,
    repeats: Optional[int] = None,
    rng: RandomState = None,
    known_opt: Optional[float] = None,
) -> CompetitiveMeasurement:
    """Run ``algorithm`` (repeatedly if randomized) and compare to the reference."""
    instance = (
        workload_or_instance.instance
        if isinstance(workload_or_instance, GeneratedWorkload)
        else workload_or_instance
    )
    generator = ensure_rng(rng)
    if reference is None:
        reference = reference_cost(workload_or_instance, known_opt=known_opt)
    runs = repeats if repeats is not None else (5 if algorithm.randomized else 1)
    if runs < 1:
        raise ExperimentError("repeats must be at least 1")
    measurement = CompetitiveMeasurement(
        algorithm=algorithm.name, instance=instance.name, reference=reference
    )
    for _ in range(runs):
        result = run_online(algorithm, instance, rng=generator)
        measurement.costs.append(result.total_cost)
        measurement.runtimes.append(result.runtime_seconds)
    return measurement
