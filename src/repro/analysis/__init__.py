"""Evaluation harness: competitive ratios, scaling fits, sweeps, tables.

* :mod:`repro.analysis.competitive` — measure competitive ratios of online
  algorithms against the offline reference portfolio (Definition 1 of the
  paper), averaging randomized algorithms over seeds.
* :mod:`repro.analysis.regression` — fit growth exponents (power laws in
  ``|S|``, logarithmic growth in ``n``) to empirically check the *shape* of
  the paper's bounds.
* :mod:`repro.analysis.sweep` — parameter sweeps executed serially or through
  the scatter/gather process pool.
* :mod:`repro.analysis.tables` — plain-text / markdown table rendering used by
  the experiment harness and the benchmarks' console output.
* :mod:`repro.analysis.runner` — the :class:`ExperimentResult` container all
  experiments return.
"""

from repro.analysis.competitive import (
    CompetitiveMeasurement,
    measure_competitive_ratio,
    reference_cost,
)
from repro.analysis.regression import fit_log_growth, fit_power_law
from repro.analysis.runner import ExperimentResult
from repro.analysis.sweep import ParameterGrid, run_sweep
from repro.analysis.tables import format_markdown_table, format_table

__all__ = [
    "CompetitiveMeasurement",
    "measure_competitive_ratio",
    "reference_cost",
    "fit_power_law",
    "fit_log_growth",
    "ParameterGrid",
    "run_sweep",
    "format_table",
    "format_markdown_table",
    "ExperimentResult",
]
