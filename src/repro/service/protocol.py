"""The JSON command/response wire protocol of ``repro serve``.

One request and one response per line, both JSON objects.  Every request
names an ``op``; every response carries ``"ok"`` plus op-specific payload, or
``{"ok": false, "error": ..., "error_type": ...}`` on failure — the server
never crashes on a bad message.  The protocol is deliberately transport
agnostic: :class:`ServiceProtocol` maps message dicts to response dicts,
:func:`serve` pumps it over a line-based stream pair (stdin/stdout in the
CLI; any file-like pair in tests).

Operations
----------
``ping``
    Liveness check; echoes the known session count.
``create``
    ``{"op": "create", "name": ..., "spec": {...RunSpec dict...}}`` — create a
    named session (optional ``use_accel``/``trace``/``validate`` flags).  An
    optional ``telemetry`` field opts the session into streaming metrics:
    ``true`` for the stock probe catalog, or a list of probe names / spec
    dicts (see :mod:`repro.telemetry`); subsequent ``status`` responses then
    carry the per-probe summaries.
``submit``
    ``{"op": "submit", "name": ..., "point": p, "commodities": [..]}`` —
    route one request; responds with the
    :meth:`~repro.api.session.AssignmentEvent.to_dict` event.  Rejected for
    scenario-backed sessions (their arrival order belongs to the scenario).
``advance``
    ``{"op": "advance", "name": ..., "count": n}`` — stream the next ``n``
    requests of a scenario-backed session (created from a spec with a
    ``scenario`` entry) out of its bound generator; responds with the event
    list, the count served and whether the stream is exhausted.  Omitting
    ``count`` drains a finite scenario to its end.
``status`` / ``list``
    Introspect one session / list all known session names.  ``status`` on a
    live session reports its running request count, cost totals and
    algorithm wall-time; with telemetry enabled the probe summaries ride
    along under ``"telemetry"``.
``metrics``
    Manager-wide live counters (sessions created/held, evictions, disk
    reloads, requests routed with the overall requests/s rate) plus a
    per-live-session roll-up — see
    :meth:`~repro.service.manager.SessionManager.metrics`.  With the
    protocol's tracer on (the default), an ``"ops"`` block rides along:
    per-wire-op latency aggregates (count, total seconds, p50/p99 from the
    tracer's reservoir) keyed by span name (``service.submit``, ...).
``snapshot``
    Return the session's full snapshot dict inline.
``evict``
    Snapshot the session to disk and release its memory (it reloads
    transparently on the next submit).
``finalize``
    Freeze the session into a result record
    (:meth:`~repro.api.record.RunRecord.to_dict`).
``close``
    Forget a session entirely.
``shutdown``
    Evict all live sessions to disk (when a snapshot dir is configured) and
    stop the serve loop.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, IO, Mapping, Optional, Union

from repro.exceptions import ReproError
from repro.service.manager import SessionManager

if TYPE_CHECKING:  # pragma: no cover - types only
    from pathlib import Path

    from repro.trace.tracer import Tracer

__all__ = ["ServiceProtocol", "serve"]


class ServiceProtocol:
    """Map wire-protocol message dicts onto a :class:`SessionManager`.

    Every dispatched op is wrapped in a ``service.<op>`` span on the
    protocol's tracer (:mod:`repro.trace`): the span ordinal is the op
    sequence number and the session ``name`` rides along as the correlation
    id, so one service trace interleaves cleanly across sessions.  Tracing
    is on by default (its per-op cost is a few microseconds against a JSON
    round-trip) and powers the ``metrics`` op's per-op latency block; pass
    ``tracer=False`` to disable it entirely, or a prebuilt
    :class:`~repro.trace.tracer.Tracer` to share one collector.  The tracer
    is shared with the manager (unless the manager already has one), so
    reload/evict I/O spans nest under the wire ops that triggered them.
    """

    def __init__(self, manager: SessionManager, tracer: Any = None) -> None:
        self._manager = manager
        if tracer is False:
            self._tracer: Optional["Tracer"] = None
        else:
            from repro.trace.tracer import Tracer

            self._tracer = manager.tracer if tracer is None else Tracer.coerce(tracer)
            if self._tracer is None:
                self._tracer = Tracer()
            if manager.tracer is None:
                manager.attach_tracer(self._tracer)
        self._op_sequence = 0

    @property
    def tracer(self) -> Optional["Tracer"]:
        """The protocol's span tracer (``None`` when disabled)."""
        return self._tracer

    # ------------------------------------------------------------------
    def handle(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        """One response dict per message dict; errors become error responses."""
        try:
            if not isinstance(message, Mapping):
                raise ReproError(f"messages must be JSON objects, got {type(message).__name__}")
            op = message.get("op")
            handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
            if handler is None:
                raise ReproError(f"unknown op {op!r}")
            tracer = self._tracer
            if tracer is None:
                return handler(message)
            ordinal = self._op_sequence
            self._op_sequence += 1
            attributes: Dict[str, Any] = {"op": op}
            name = message.get("name")
            if isinstance(name, str):
                attributes["session"] = name
            with tracer.span(
                f"service.{op}",
                category="service",
                ordinal=ordinal,
                attributes=attributes,
            ):
                return handler(message)
        except Exception as error:  # noqa: BLE001 - the server must not crash
            return {
                "ok": False,
                "error": str(error),
                "error_type": type(error).__name__,
            }

    def handle_line(self, line: str) -> str:
        """JSON-text-in, JSON-text-out convenience around :meth:`handle`."""
        return json.dumps(self._respond_to_line(line))

    def _respond_to_line(self, line: str) -> Dict[str, Any]:
        try:
            message = json.loads(line)
        except json.JSONDecodeError as error:
            return {
                "ok": False,
                "error": f"bad JSON: {error}",
                "error_type": "JSONDecodeError",
            }
        return self.handle(message)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    @staticmethod
    def _required(message: Mapping[str, Any], key: str) -> Any:
        if key not in message:
            raise ReproError(f"op {message.get('op')!r} needs a {key!r} field")
        return message[key]

    def _op_ping(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        return {"ok": True, "pong": True, "sessions": len(self._manager)}

    def _op_create(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        name = self._required(message, "name")
        spec = self._required(message, "spec")
        status = self._manager.create(
            name,
            spec,
            use_accel=message.get("use_accel"),
            trace=bool(message.get("trace", False)),
            validate=bool(message.get("validate", True)),
            telemetry=message.get("telemetry"),
        )
        return {"ok": True, "session": status}

    def _op_submit(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        name = self._required(message, "name")
        point = self._required(message, "point")
        commodities = self._required(message, "commodities")
        event = self._manager.submit(name, point, commodities)
        return {"ok": True, "name": name, "event": event.to_dict()}

    def _op_advance(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        name = self._required(message, "name")
        count = message.get("count")
        events, exhausted = self._manager.advance(
            name, int(count) if count is not None else None
        )
        return {
            "ok": True,
            "name": name,
            "served": len(events),
            "exhausted": exhausted,
            "events": [event.to_dict() for event in events],
        }

    def _op_status(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        return {"ok": True, "session": self._manager.status(self._required(message, "name"))}

    def _op_list(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        return {"ok": True, "sessions": self._manager.names()}

    def _op_metrics(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        metrics = self._manager.metrics()
        if self._tracer is not None:
            # Per-wire-op latency aggregates from the tracer: every handled
            # op folded in (not just the buffered spans), percentiles from
            # the per-phase reservoir.  Covers ops completed so far — the
            # in-flight metrics op itself folds when its span closes.
            metrics["ops"] = self._tracer.phase_summary(
                prefix="service.", percentiles=(50.0, 99.0)
            )
        return {"ok": True, "metrics": metrics}

    def _op_snapshot(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        name = self._required(message, "name")
        snapshot = self._manager.snapshot(name)
        return {"ok": True, "name": name, "snapshot": snapshot.to_dict()}

    def _op_evict(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        name = self._required(message, "name")
        path = self._manager.evict(name)
        return {"ok": True, "name": name, "path": str(path)}

    def _op_finalize(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        name = self._required(message, "name")
        record = self._manager.finalize(name)
        return {"ok": True, "name": name, "record": record.to_dict()}

    def _op_close(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        name = self._required(message, "name")
        self._manager.close(name)
        return {"ok": True, "name": name}

    def _op_shutdown(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        evicted: list[str] = []
        try:
            evicted = self._manager.evict_all()
        except ReproError:
            pass  # memory-only manager: nothing to persist
        return {"ok": True, "shutdown": True, "evicted": evicted}


def serve(
    manager: SessionManager,
    input_stream: IO[str],
    output_stream: IO[str],
    *,
    tracer: Any = None,
    trace_out: Optional[Union[str, "Path"]] = None,
) -> None:
    """Pump the line protocol until EOF or a ``shutdown`` op.

    Blank lines are skipped; every other input line produces exactly one
    response line, flushed immediately so pipe-based clients can interleave
    requests and responses.

    ``tracer`` configures the protocol's span tracing (see
    :class:`ServiceProtocol`); with ``trace_out`` set, the full trace
    payload is written there as JSON when the loop ends (shutdown or EOF) —
    ``repro trace export`` turns it into a Perfetto-loadable file.
    """
    protocol = ServiceProtocol(manager, tracer=tracer)
    for line in input_stream:
        line = line.strip()
        if not line:
            continue
        response = protocol._respond_to_line(line)
        output_stream.write(json.dumps(response) + "\n")
        output_stream.flush()
        if response.get("shutdown"):
            break
    if trace_out is not None and protocol.tracer is not None:
        from repro.trace.export import write_json

        write_json(str(trace_out), protocol.tracer.to_payload())
