"""The versioned session-snapshot codec.

A :class:`SessionSnapshot` is the durable form of a mid-stream
:class:`~repro.api.session.OnlineSession`: everything needed to continue the
run **bit-identically** in a fresh process —

* the algorithm's ``state_dict`` (dual stores, bid histories, helper facility
  lists — see :meth:`repro.algorithms.base.OnlineAlgorithm.state_dict`),
* the online state's mutation log (facilities in opening order, assignments
  in arrival order, the trace) from
  :meth:`repro.core.state.OnlineState.state_dict`,
* the exact NumPy bit-generator state (initial and current), and
* session metadata (seed, accel mode, validation flag, instance name).

What is deliberately *not* stored: opening costs and accel caches
(:class:`~repro.accel.tracker.NearestSetTracker`,
:class:`~repro.accel.classes.ClassDistanceIndex`,
:class:`~repro.accel.history.BidHistoryBuffer` rows).  They are deterministic
folds/functions of static instance data and the stored mutation log, so
restore rebuilds them bit-for-bit by replay — which also keeps snapshots
small: O(requests + facilities) instead of O(requests x points).

Snapshots serialize to *strict* JSON (``inf`` distances are string-encoded,
see :mod:`repro.utils.encoding`) and carry a format name plus version number
so future codec changes fail loudly instead of restoring garbage.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.algorithms.base import OnlineAlgorithm
from repro.api.spec import RunSpec
from repro.core.instance import Instance
from repro.exceptions import SnapshotError
from repro.utils.rng import ensure_rng

__all__ = ["SessionSnapshot", "components_from_spec"]

#: Format marker embedded in every serialized snapshot.
SNAPSHOT_FORMAT = "repro-session-snapshot"

#: Current codec version (bump on breaking changes to the state shapes).
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class SessionSnapshot:
    """A restorable point-in-time capture of one streaming session.

    Instances are produced by :meth:`repro.api.session.OnlineSession.snapshot`
    and consumed by :meth:`~repro.api.session.OnlineSession.restore`; the
    ``to_dict``/``from_dict``/``to_json``/``from_json``/``save``/``load``
    methods move them across process and machine boundaries.
    """

    algorithm: str
    algorithm_state: Dict[str, Any]
    state: Dict[str, Any]
    seed: Optional[int]
    initial_rng_state: Dict[str, Any]
    rng_state: Dict[str, Any]
    use_accel: bool
    validate: bool
    instance_name: str
    runtime_seconds: float
    num_requests: int
    spec: Optional[Dict[str, Any]] = None
    #: Resume point of the driving scenario stream, when the session was
    #: scenario-backed (see ScenarioSession.snapshot).  Optional with a
    #: default, so pre-scenario snapshots keep loading unchanged.
    scenario_state: Optional[Dict[str, Any]] = None
    #: Telemetry sink state (probe specs + probe states, see
    #: :meth:`repro.telemetry.sink.TelemetrySink.state_dict`) when the session
    #: had telemetry attached.  Optional with a default, so pre-telemetry
    #: snapshots keep loading unchanged.
    telemetry: Optional[Dict[str, Any]] = None
    version: int = SNAPSHOT_VERSION

    # ------------------------------------------------------------------
    @property
    def trace_enabled(self) -> bool:
        """Whether the captured session was recording trace events."""
        return bool(self.state.get("trace", {}).get("enabled", False))

    # ------------------------------------------------------------------
    # Serialized forms
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Strict-JSON-compatible dictionary form (includes the format marker)."""
        data = asdict(self)
        data["format"] = SNAPSHOT_FORMAT
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SessionSnapshot":
        """Decode a snapshot dictionary, checking format and version."""
        if data.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"not a session snapshot (format={data.get('format')!r}, "
                f"expected {SNAPSHOT_FORMAT!r})"
            )
        version = data.get("version")
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"unsupported snapshot version {version!r}; this build reads "
                f"version {SNAPSHOT_VERSION}"
            )
        fields = {key: value for key, value in data.items() if key != "format"}
        try:
            return cls(**fields)
        except TypeError as error:
            raise SnapshotError(f"malformed session snapshot: {error}") from None

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Strict JSON text (``allow_nan=False`` guards the encoding contract)."""
        return json.dumps(self.to_dict(), indent=indent, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "SessionSnapshot":
        return cls.from_dict(json.loads(text))

    @classmethod
    def coerce(
        cls, value: Union["SessionSnapshot", Mapping[str, Any], str]
    ) -> "SessionSnapshot":
        """Accept a snapshot object, its dict form, or its JSON text."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.from_json(value)
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        raise SnapshotError(
            f"cannot interpret {type(value).__name__} as a session snapshot"
        )

    # ------------------------------------------------------------------
    # Files
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Write the snapshot as JSON to ``path`` (parents created as needed).

        The write is atomic (temp file + ``os.replace``): a crash mid-write
        must not corrupt the only durable copy of an evicted session.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.with_name(path.name + ".tmp")
        temporary.write_text(self.to_json(indent=2))
        os.replace(temporary, path)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SessionSnapshot":
        return cls.from_json(Path(path).read_text())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SessionSnapshot(algorithm={self.algorithm!r}, "
            f"n={self.num_requests}, version={self.version})"
        )


def components_from_spec(
    spec_data: Mapping[str, Any]
) -> Tuple[OnlineAlgorithm, Instance, Any]:
    """Rebuild ``(algorithm, instance, generator)`` from a RunSpec dict.

    Used both by :class:`~repro.service.manager.SessionManager` (session
    creation) and by snapshot restore: the instance is rebuilt with a
    generator seeded exactly as at creation time, so metric/cost components
    that draw randomness come back bit-identical.  The returned generator has
    consumed exactly the instance-building draws — threading it into a new
    session mirrors the :func:`repro.api.run.run` convention (restore ignores
    it and installs the snapshot's RNG state instead).  Only online-algorithm
    specs are accepted — a service session is a request stream.
    """
    spec = RunSpec.from_dict(dict(spec_data))
    if spec.mode() != "online":
        raise SnapshotError(
            f"service sessions require an online algorithm spec, got the "
            f"offline solver {spec.algorithm.get('kind')!r}"
        )
    if spec.scenario is not None:
        # Scenario-backed sessions: the environment comes from the scenario's
        # deterministic environment child seed (never consuming arrival
        # draws), and the algorithm generator from its own child seed.
        from repro.scenarios.run import scenario_session_components

        algorithm, instance, generator, _ = scenario_session_components(spec)
        return algorithm, instance, generator
    generator = ensure_rng(spec.seed)
    instance = spec.build_instance(generator)
    algorithm = spec.build_algorithm()
    return algorithm, instance, generator
