"""Hosting many named streaming sessions behind one endpoint.

:class:`SessionManager` is the in-process service core the ``repro serve``
wire protocol (:mod:`repro.service.protocol`) speaks to: it creates named
sessions from declarative :class:`~repro.api.spec.RunSpec` dicts, routes
``submit`` calls to them, and — when given a ``snapshot_dir`` — snapshots
idle sessions to disk and transparently reloads them on their next submit.
Because eviction goes through the bit-identical snapshot codec
(:mod:`repro.service.snapshot`), a session that bounced through disk any
number of times produces exactly the stream an always-resident one would.

Sessions are independent by construction — each owns its algorithm instance,
online state and RNG stream — so interleaved submits to different names never
interact (pinned by ``tests/test_service.py``).
"""

from __future__ import annotations

import re
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.api.record import RunRecord
from repro.api.session import AssignmentEvent, OnlineSession
from repro.api.spec import RunSpec
from repro.exceptions import ServiceError
from repro.service.snapshot import SessionSnapshot, components_from_spec
from repro.trace.clock import wall_now

__all__ = ["SessionManager"]

#: Session names double as snapshot file stems, so keep them filesystem-safe.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass
class _ManagedSession:
    """One live session plus the declarative spec it was created from.

    ``stream`` is set for scenario-backed sessions: the bound
    :class:`~repro.scenarios.base.ScenarioStream` that feeds the session via
    :meth:`SessionManager.advance` (client ``submit`` is rejected there — a
    scenario owns its arrival order).
    """

    name: str
    spec: Dict[str, Any]
    session: OnlineSession
    stream: Optional[Any] = None


class SessionManager:
    """Create, route to, evict and resume named streaming sessions.

    Parameters
    ----------
    snapshot_dir:
        Directory for evicted-session snapshots (created on first use).
        Without it sessions are memory-only and eviction raises.
    max_live_sessions:
        Soft capacity: when more sessions than this are resident, the least
        recently used ones are snapshotted to disk (requires
        ``snapshot_dir``).  ``None`` keeps everything resident.
    default_use_accel:
        Default accel mode for new sessions (overridable per ``create``).
    tracer:
        Opt-in span tracing (:mod:`repro.trace`) of the manager's I/O
        phases: disk reloads (``service.session-reload``) and evictions
        (``service.session-evict``), each carrying the session name as its
        correlation id.  The :class:`~repro.service.protocol.ServiceProtocol`
        shares its tracer with the manager, so these spans nest under the
        wire-op spans that triggered them.
    """

    def __init__(
        self,
        *,
        snapshot_dir: Optional[Union[str, Path]] = None,
        max_live_sessions: Optional[int] = None,
        default_use_accel: bool = True,
        tracer: Any = None,
    ) -> None:
        if max_live_sessions is not None and max_live_sessions < 1:
            raise ServiceError(
                f"max_live_sessions must be positive, got {max_live_sessions}"
            )
        if max_live_sessions is not None and snapshot_dir is None:
            raise ServiceError("max_live_sessions needs a snapshot_dir to evict into")
        self._snapshot_dir = Path(snapshot_dir) if snapshot_dir is not None else None
        self._max_live = max_live_sessions
        self._default_use_accel = bool(default_use_accel)
        #: Live sessions in least-recently-used-first order.
        self._live: "OrderedDict[str, _ManagedSession]" = OrderedDict()
        self._finalized: Dict[str, RunRecord] = {}
        #: Manager-wide lifetime counters, surfaced by :meth:`metrics`.
        self._counters: Dict[str, int] = {
            "created": 0,
            "requests": 0,
            "evictions": 0,
            "reloads": 0,
            "finalized": 0,
        }
        if tracer is None or tracer is False:
            self._tracer = None
        else:
            from repro.trace.tracer import Tracer

            self._tracer = Tracer.coerce(tracer)
        self._started = wall_now()

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        """The attached span tracer (``None`` when tracing is disabled)."""
        return self._tracer

    def attach_tracer(self, tracer: Any) -> None:
        """Attach a tracer after construction (no-op on ``None``/``False``).

        Used by :class:`~repro.service.protocol.ServiceProtocol` so its
        wire-op tracer also records the manager's reload/evict I/O spans.
        """
        if tracer is None or tracer is False:
            return
        from repro.trace.tracer import Tracer

        self._tracer = Tracer.coerce(tracer)

    # ------------------------------------------------------------------
    # Name / path helpers
    # ------------------------------------------------------------------
    def _check_name(self, name: str) -> str:
        if not isinstance(name, str) or not _NAME_PATTERN.match(name or ""):
            raise ServiceError(
                f"invalid session name {name!r}; use letters, digits, '.', '_' "
                "or '-' (names double as snapshot file stems)"
            )
        return name

    def _snapshot_path(self, name: str) -> Optional[Path]:
        # Every operation that may touch the filesystem funnels through here,
        # so validating the name at this chokepoint (not just in create())
        # keeps wire clients from smuggling path traversal into submit /
        # status / evict / close.
        self._check_name(name)
        if self._snapshot_dir is None:
            return None
        return self._snapshot_dir / f"{name}.session.json"

    def _on_disk(self, name: str) -> bool:
        path = self._snapshot_path(name)
        return path is not None and path.exists()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create(
        self,
        name: str,
        spec: Mapping[str, Any],
        *,
        use_accel: Optional[bool] = None,
        trace: bool = False,
        validate: bool = True,
        telemetry: Any = None,
    ) -> Dict[str, Any]:
        """Create a named session from a declarative RunSpec dict.

        The spec supplies the fixed problem environment (metric, cost,
        commodities — directly or via a workload) and the seed; any requests
        it carries are *not* pre-submitted, the stream arrives through
        :meth:`submit`.  A ``seed`` is required so that evicted sessions can
        rebuild their environment bit-identically from the spec alone.

        ``telemetry`` opts the session into streaming metrics (``True`` for
        the stock probe catalog, or a list of probe names/spec dicts — see
        :mod:`repro.telemetry`).  Eviction needs no extra handling: the
        session snapshot carries the sink state, so a reloaded session
        resumes its metrics exactly.
        """
        self._check_name(name)
        if name in self._live or name in self._finalized or self._on_disk(name):
            raise ServiceError(f"session {name!r} already exists")
        run_spec = RunSpec.from_dict(dict(spec))
        if not run_spec.is_declarative():
            raise ServiceError(
                "session specs must be declarative (plain data) so evicted "
                "sessions can be rebuilt from disk"
            )
        if run_spec.seed is None:
            raise ServiceError(
                "session specs need an explicit 'seed' so a snapshotted "
                "session can rebuild its environment deterministically"
            )
        spec_dict = run_spec.to_dict()
        stream = None
        if run_spec.scenario is not None:
            from repro.scenarios.run import scenario_session_components

            algorithm, instance, generator, stream = scenario_session_components(
                run_spec
            )
        else:
            algorithm, instance, generator = components_from_spec(spec_dict)
        session = OnlineSession(
            algorithm,
            instance.metric,
            instance.cost_function,
            commodities=instance.commodities,
            rng=generator,
            trace=trace,
            validate=validate,
            use_accel=(
                self._default_use_accel if use_accel is None else bool(use_accel)
            ),
            name=run_spec.name or name,
            telemetry=telemetry,
        )
        # Seed provenance: the generator object was threaded through workload
        # generation, so record the spec seed explicitly on the session.
        session._seed = run_spec.seed
        self._live[name] = _ManagedSession(
            name=name, spec=spec_dict, session=session, stream=stream
        )
        self._counters["created"] += 1
        self._enforce_capacity(keep=name)
        return self.status(name)

    def _checkout(self, name: str) -> _ManagedSession:
        """The live session entry for ``name``, reloading from disk if evicted."""
        entry = self._live.get(name)
        if entry is not None:
            self._live.move_to_end(name)
            return entry
        if name in self._finalized:
            raise ServiceError(f"session {name!r} is finalized")
        path = self._snapshot_path(name)
        if path is not None and path.exists():
            reload_span = None
            if self._tracer is not None:
                reload_span = self._tracer.begin(
                    "service.session-reload",
                    category="service",
                    ordinal=self._counters["reloads"],
                    attributes={"session": name},
                )
            try:
                snapshot = SessionSnapshot.load(path)
                if snapshot.spec is None:
                    raise ServiceError(
                        f"snapshot for session {name!r} carries no spec; cannot reload"
                    )
                stream = None
                if snapshot.spec.get("scenario") is not None:
                    # Scenario-backed: one environment build serves both the
                    # session restore and the resumed stream, whose exact
                    # generator position comes from the snapshot.
                    from repro.scenarios.run import scenario_session_components

                    if snapshot.scenario_state is None:
                        raise ServiceError(
                            f"snapshot for scenario session {name!r} carries no "
                            "scenario stream state; cannot resume its generator"
                        )
                    algorithm, instance, _generator, stream = (
                        scenario_session_components(snapshot.spec)
                    )
                    session = OnlineSession.restore(
                        snapshot, algorithm=algorithm, instance=instance
                    )
                    stream.load_state_dict(snapshot.scenario_state)
                else:
                    session = OnlineSession.restore(snapshot)
            finally:
                if reload_span is not None:
                    self._tracer.end(reload_span)
            entry = _ManagedSession(
                name=name, spec=dict(snapshot.spec), session=session, stream=stream
            )
            self._live[name] = entry
            self._counters["reloads"] += 1
            self._enforce_capacity(keep=name)
            return entry
        raise ServiceError(
            f"unknown session {name!r}; known: {', '.join(self.names()) or '(none)'}"
        )

    def _enforce_capacity(self, *, keep: Optional[str] = None) -> None:
        if self._max_live is None:
            return
        while len(self._live) > self._max_live:
            victim = next(
                (key for key in self._live if key != keep),
                None,
            )
            if victim is None:  # pragma: no cover - keep is the only session
                return
            self.evict(victim)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def submit(self, name: str, point: int, commodities: Iterable[int]) -> AssignmentEvent:
        """Route one arriving request to the named session."""
        entry = self._checkout(name)
        if entry.stream is not None:
            raise ServiceError(
                f"session {name!r} is scenario-backed; its requests come from "
                "the scenario stream — use 'advance' instead of 'submit'"
            )
        event = entry.session.submit(point, commodities)
        self._counters["requests"] += 1
        return event

    def advance(
        self, name: str, count: Optional[int] = None
    ) -> Tuple[List[AssignmentEvent], bool]:
        """Stream the next ``count`` scenario requests into a scenario session.

        Returns ``(events, exhausted)``.  Each event is fed back to the
        stream's ``observe`` hook (adaptive scenarios react to it); with
        ``count=None`` the stream is drained to its end.
        """
        entry = self._checkout(name)
        if entry.stream is None:
            raise ServiceError(
                f"session {name!r} is not scenario-backed; clients drive it "
                "with 'submit'"
            )
        if count is not None and count < 0:
            raise ServiceError(f"advance count must be non-negative, got {count}")
        if count is None and entry.stream.length is None:
            raise ServiceError(
                f"session {name!r} streams an unbounded scenario; advance "
                "needs an explicit count"
            )
        from repro.scenarios.run import step_stream

        events: List[AssignmentEvent] = []
        while count is None or len(events) < count:
            # Shared draw→submit→observe lock-step (one-request feedback
            # latency — the same loop ScenarioSession uses).  The manager's
            # tracer (if any) records the scenario draw/observe sub-phases,
            # nested under the wire-op span that triggered the advance.
            event = step_stream(entry.stream, entry.session, tracer=self._tracer)
            if event is None:
                break
            events.append(event)
        self._counters["requests"] += len(events)
        return events, entry.stream.exhausted

    def snapshot(self, name: str) -> SessionSnapshot:
        """A point-in-time snapshot of the named session (stays resident)."""
        entry = self._checkout(name)
        return entry.session.snapshot(
            spec=entry.spec,
            scenario_state=entry.stream.state_dict() if entry.stream is not None else None,
        )

    def evict(self, name: str) -> Path:
        """Snapshot the named session to disk and release its memory.

        The next :meth:`submit` (or :meth:`snapshot`/:meth:`finalize`)
        transparently restores it — bit-identically — from the file.
        """
        if self._snapshot_dir is None:
            raise ServiceError("eviction needs a snapshot_dir")
        entry = self._checkout(name)
        evict_span = None
        if self._tracer is not None:
            evict_span = self._tracer.begin(
                "service.session-evict",
                category="service",
                ordinal=self._counters["evictions"],
                attributes={"session": name},
            )
        try:
            snapshot = entry.session.snapshot(
                spec=entry.spec,
                scenario_state=entry.stream.state_dict() if entry.stream is not None else None,
            )
            path = snapshot.save(self._snapshot_path(name))
        finally:
            if evict_span is not None:
                self._tracer.end(evict_span)
        del self._live[name]
        self._counters["evictions"] += 1
        return path

    def evict_all(self) -> List[str]:
        """Evict every live session (e.g. on service shutdown)."""
        names = list(self._live)
        for name in names:
            self.evict(name)
        return names

    def finalize(self, name: str) -> RunRecord:
        """Freeze the named session into a RunRecord and retire it."""
        entry = self._checkout(name)
        record = entry.session.finalize()
        del self._live[name]
        self._finalized[name] = record
        self._counters["finalized"] += 1
        path = self._snapshot_path(name)
        if path is not None and path.exists():
            path.unlink()
        return record

    def close(self, name: str) -> None:
        """Drop the named session entirely (memory, disk and records)."""
        known = False
        if name in self._live:
            del self._live[name]
            known = True
        if name in self._finalized:
            del self._finalized[name]
            known = True
        path = self._snapshot_path(name)
        if path is not None and path.exists():
            path.unlink()
            known = True
        if not known:
            raise ServiceError(f"unknown session {name!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """All known session names (live, evicted-to-disk and finalized)."""
        known = set(self._live) | set(self._finalized)
        if self._snapshot_dir is not None and self._snapshot_dir.is_dir():
            for path in self._snapshot_dir.glob("*.session.json"):
                known.add(path.name[: -len(".session.json")])
        return sorted(known)

    def status(self, name: str) -> Dict[str, Any]:
        """A JSON-compatible status row for one session (any residency).

        Live sessions report their running request count and wall-time spent
        inside the algorithm; when the session has telemetry attached, the
        full ``{probe kind: summary}`` map rides along under ``"telemetry"``.
        """
        entry = self._live.get(name)
        if entry is not None:
            session = entry.session
            status = {
                "name": name,
                "live": True,
                "finalized": False,
                "algorithm": session.algorithm.name,
                "num_requests": session.num_requests,
                "opening_cost": session.opening_cost,
                "connection_cost": session.connection_cost,
                "total_cost": session.total_cost,
                "runtime_seconds": session.runtime_seconds,
            }
            telemetry = session.telemetry_summary()
            if telemetry is not None:
                status["telemetry"] = telemetry
            if entry.stream is not None:
                status["scenario"] = {
                    "kind": entry.stream.scenario.kind,
                    "position": entry.stream.position,
                    "remaining": entry.stream.remaining(),
                    "exhausted": entry.stream.exhausted,
                }
            return status
        if name in self._finalized:
            record = self._finalized[name]
            return {
                "name": name,
                "live": False,
                "finalized": True,
                "algorithm": record.algorithm,
                "num_requests": record.num_requests,
                "opening_cost": record.opening_cost,
                "connection_cost": record.connection_cost,
                "total_cost": record.total_cost,
            }
        path = self._snapshot_path(name)
        if path is not None and path.exists():
            snapshot = SessionSnapshot.load(path)
            return {
                "name": name,
                "live": False,
                "finalized": False,
                "algorithm": snapshot.algorithm,
                "num_requests": snapshot.num_requests,
                "evicted": True,
            }
        raise ServiceError(
            f"unknown session {name!r}; known: {', '.join(self.names()) or '(none)'}"
        )

    def metrics(self) -> Dict[str, Any]:
        """Manager-wide live counters plus per-session telemetry summaries.

        The ``repro serve`` ``metrics`` op returns this payload: lifetime
        counters (sessions created, requests routed, evictions, disk reloads,
        finalizations), current residency, service uptime with the overall
        requests/s rate, and — for every *live* session — its request count,
        running cost and probe summaries (when telemetry is enabled).
        """
        uptime = wall_now() - self._started
        on_disk = 0
        if self._snapshot_dir is not None and self._snapshot_dir.is_dir():
            on_disk = sum(1 for _ in self._snapshot_dir.glob("*.session.json"))
        sessions: Dict[str, Any] = {}
        for name, entry in self._live.items():
            session = entry.session
            row: Dict[str, Any] = {
                "num_requests": session.num_requests,
                "total_cost": session.total_cost,
                "runtime_seconds": session.runtime_seconds,
            }
            telemetry = session.telemetry_summary()
            if telemetry is not None:
                row["telemetry"] = telemetry
            sessions[name] = row
        return {
            "counters": dict(self._counters),
            "sessions_live": len(self._live),
            "sessions_finalized": len(self._finalized),
            "sessions_on_disk": on_disk,
            "sessions_known": len(self.names()),
            "uptime_seconds": uptime,
            "requests_per_second": (
                self._counters["requests"] / uptime if uptime > 0 else None
            ),
            "sessions": sessions,
        }

    def __len__(self) -> int:
        """Number of known sessions (any residency)."""
        return len(self.names())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SessionManager(live={len(self._live)}, "
            f"finalized={len(self._finalized)}, dir={self._snapshot_dir})"
        )
