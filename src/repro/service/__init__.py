"""Durable sessions and the multi-session service layer.

This subpackage turns the streaming :class:`~repro.api.session.OnlineSession`
into a long-lived service primitive — the shape the paper's online model
(Section 1.1: a request stream of unknown length with irrevocable decisions)
naturally takes in production:

* **Snapshots** (:mod:`repro.service.snapshot`) — a versioned, strict-JSON
  :class:`SessionSnapshot` codec capturing the algorithm's ``state_dict``,
  the full online state, the request log and the exact RNG bit-generator
  state.  A restored session continues its stream *bit-identically* to an
  uninterrupted run; the accel caches are deterministically rebuilt, never
  serialized.
* **Session management** (:mod:`repro.service.manager`) —
  :class:`SessionManager` hosts many named concurrent sessions created from
  declarative :class:`~repro.api.spec.RunSpec` dicts, routes ``submit`` calls
  to them, and snapshots/evicts idle ones to disk (transparently reloading on
  the next submit).
* **Wire protocol** (:mod:`repro.service.protocol`) — a JSON line
  command/response protocol over a manager, surfaced as the ``repro serve``
  CLI subcommand.

Quickstart
----------
>>> from repro.service import SessionManager
>>> manager = SessionManager()
>>> manager.create("east", {
...     "algorithm": "pd-omflp",
...     "metric": {"kind": "uniform-line", "num_points": 8},
...     "cost": {"kind": "power", "num_commodities": 4, "exponent_x": 1.0},
...     "requests": [],
...     "seed": 0,
... })["name"]
'east'
>>> event = manager.submit("east", 1, [0, 2])
>>> event.request_index
0
"""

from repro.service.manager import SessionManager
from repro.service.protocol import ServiceProtocol, serve
from repro.service.snapshot import SessionSnapshot, components_from_spec

__all__ = [
    "SessionSnapshot",
    "SessionManager",
    "ServiceProtocol",
    "serve",
    "components_from_spec",
]
