"""Top-level ``repro`` command: one subcommand registry, one parser.

Every subcommand — experiment runners, the declarative spec runner, the
scenario engine tools, the session server and the static-analysis pass — is a
:class:`Subcommand` entry in the string-keyed :data:`SUBCOMMANDS` registry,
mirroring how metrics, algorithms and scenarios are registered elsewhere in
the library.  ``repro --help`` is therefore always complete: the parser is
*derived* from the registry, so a subcommand cannot exist without appearing
in the help output, and third-party extensions can add their own before
calling :func:`main`.

Examples
--------
List the registered experiments::

    repro list

Run one experiment with the quick profile and print its table::

    repro run thm2-single-point --profile quick --seed 0

Run every experiment and write JSON results to a directory::

    repro run-all --profile full --output results/

Run experiments on the parallel engine with a persistent result store
(``--workers`` defaults to the ``REPRO_WORKERS`` environment variable;
previously computed grid cases are reused from the store by content
address)::

    repro experiments run thm4-pd-scaling thm19-rand-scaling \
        --workers 4 --store results/store

    repro experiments list

Run a declarative :class:`~repro.api.spec.RunSpec` from a JSON file (or
several — each produces one row) without writing any Python::

    repro spec scenario.json --seed 3 --csv rows.csv

Host durable named sessions over the JSON line protocol (one request and one
response per line, see :mod:`repro.service.protocol`); with a snapshot
directory, idle or shut-down sessions persist to disk and resume
bit-identically::

    printf '%s\n' \
      '{"op": "create", "name": "east", "spec": {"algorithm": "pd-omflp",
        "metric": {"kind": "uniform-line", "num_points": 8},
        "cost": {"kind": "power", "num_commodities": 4, "exponent_x": 1.0},
        "requests": [], "seed": 0}}' \
      '{"op": "submit", "name": "east", "point": 1, "commodities": [0, 2]}' \
      '{"op": "shutdown"}' | repro serve --snapshot-dir state/

Render a result-store sweep to self-contained markdown + HTML dashboards,
diffing per-task column means against a committed regression baseline
(nonzero exit on drift, so usable as a CI ratio gate)::

    repro report --store results/store --out report/ \
        --baseline benchmarks/baselines/report_quick.json

Check the tree for determinism hazards and registry-contract violations
(:mod:`repro.lint`; nonzero exit on findings, so usable as a CI gate)::

    repro lint src/ --format json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional

from repro.api.record import records_to_csv
from repro.api.registry import Registry
from repro.api.run import run_many
from repro.api.spec import RunSpec
from repro.engine.store import ResultStore
from repro.exceptions import ExperimentError
from repro.experiments.registry import list_experiments, run_experiment

__all__ = ["SUBCOMMANDS", "Subcommand", "build_parser", "main", "register_subcommand"]


@dataclass(frozen=True)
class Subcommand:
    """One entry of the ``repro`` command: a parser section plus its handler.

    Attributes
    ----------
    name:
        The subcommand word on the command line (``repro <name> ...``).
    summary:
        One-line help shown by ``repro --help``.
    configure:
        Receives the subcommand's own ``ArgumentParser`` to add arguments to.
    run:
        Receives the parsed namespace; returns the process exit code.
    """

    name: str
    summary: str
    configure: Callable[[argparse.ArgumentParser], None]
    run: Callable[[argparse.Namespace], int]


#: The subcommand registry.  Builders are zero-argument factories returning a
#: :class:`Subcommand`, so ``SUBCOMMANDS.build(name)`` mirrors every other
#: component registry in the library.
SUBCOMMANDS = Registry("subcommand")


def register_subcommand(
    name: str,
    summary: str,
    *,
    configure: Optional[Callable[[argparse.ArgumentParser], None]] = None,
) -> Callable[[Callable[[argparse.Namespace], int]], Callable[[argparse.Namespace], int]]:
    """Decorator: register the decorated handler as ``repro <name>``."""

    def decorator(run: Callable[[argparse.Namespace], int]):
        entry = Subcommand(
            name=name,
            summary=summary,
            configure=configure if configure is not None else (lambda parser: None),
            run=run,
        )
        SUBCOMMANDS.add(name, lambda: entry)
        return run

    return decorator


# ----------------------------------------------------------------------
# Shared option helpers
# ----------------------------------------------------------------------
def _default_workers() -> int:
    """Worker-count default: the ``REPRO_WORKERS`` environment variable, else 1."""
    value = os.environ.get("REPRO_WORKERS", "").strip()
    if not value:
        return 1
    try:
        workers = int(value)
    except ValueError:
        raise ExperimentError(
            f"REPRO_WORKERS must be an integer, got {value!r}"
        ) from None
    if workers < 1:
        raise ExperimentError(f"REPRO_WORKERS must be >= 1, got {workers}")
    return workers


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        choices=("quick", "full"),
        default="quick",
        help="experiment size: 'quick' (seconds) or 'full' (the EXPERIMENTS.md sizes)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the engine plan (default: REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        help="content-addressed result-store directory (reuses computed cases)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory to write <experiment_id>.json result files to",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="print markdown tables instead of plain text"
    )


def _run_and_report(
    experiment_id: str, args: argparse.Namespace, store: Optional[ResultStore] = None
) -> None:
    result = run_experiment(
        experiment_id,
        profile=args.profile,
        rng=args.seed,
        workers=args.workers if args.workers is not None else _default_workers(),
        store=store,
    )
    print(result.to_markdown() if args.markdown else result.to_table())
    print()
    if args.output is not None:
        path = result.save(args.output)
        print(f"wrote {path}")


def _run_experiments(experiment_ids: List[str], args: argparse.Namespace) -> None:
    store = ResultStore(args.store) if args.store is not None else None
    for experiment_id in experiment_ids:
        _run_and_report(experiment_id, args, store=store)
    if store is not None:
        print(
            f"result store {store.directory}: {store.hits} case(s) reused, "
            f"{store.writes} computed and stored"
        )


# ----------------------------------------------------------------------
# repro list / run / run-all
# ----------------------------------------------------------------------
@register_subcommand("list", "list registered experiment ids")
def _cmd_list(args: argparse.Namespace) -> int:
    for experiment_id in list_experiments():
        print(experiment_id)
    return 0


def _configure_run(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("experiment_id", help="experiment id (see 'list')")
    _add_run_options(parser)


@register_subcommand("run", "run a single experiment", configure=_configure_run)
def _cmd_run(args: argparse.Namespace) -> int:
    _run_experiments([args.experiment_id], args)
    return 0


@register_subcommand(
    "run-all", "run every registered experiment", configure=_add_run_options
)
def _cmd_run_all(args: argparse.Namespace) -> int:
    _run_experiments(list_experiments(), args)
    return 0


# ----------------------------------------------------------------------
# repro experiments (engine-backed)
# ----------------------------------------------------------------------
def _configure_experiments(parser: argparse.ArgumentParser) -> None:
    experiments_sub = parser.add_subparsers(dest="experiments_command", required=True)
    experiments_sub.add_parser("list", help="list registered experiment ids")
    experiments_run = experiments_sub.add_parser(
        "run",
        help="run experiments on the parallel engine (all of them when no id is given)",
    )
    experiments_run.add_argument(
        "experiment_ids",
        nargs="*",
        metavar="experiment_id",
        help="experiment ids (default: every registered experiment)",
    )
    _add_run_options(experiments_run)


@register_subcommand(
    "experiments",
    "engine-backed experiment operations (list, run with workers + store)",
    configure=_configure_experiments,
)
def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.experiments_command == "list":
        for experiment_id in list_experiments():
            print(experiment_id)
        return 0
    _run_experiments(args.experiment_ids or list_experiments(), args)
    return 0


# ----------------------------------------------------------------------
# repro spec
# ----------------------------------------------------------------------
def _configure_spec(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="+", type=Path, help="JSON files, each holding one RunSpec dict"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the seed of every spec"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the spec batch (default: REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--csv", type=Path, default=None, help="also write the result rows to a CSV file"
    )
    parser.add_argument(
        "--validate-only",
        action="store_true",
        help=(
            "resolve every spec (including nested scenario dicts) and print "
            "the normalized form without running anything"
        ),
    )


@register_subcommand(
    "spec",
    "run declarative RunSpec JSON files (one result row each)",
    configure=_configure_spec,
)
def _run_specs(args: argparse.Namespace) -> int:
    specs: List[RunSpec] = []
    for path in args.paths:
        data = json.loads(Path(path).read_text())
        if args.seed is not None:
            data["seed"] = args.seed
        specs.append(RunSpec.from_dict(data))
    if args.validate_only:
        for path, spec in zip(args.paths, specs):
            print(
                json.dumps(
                    {"file": str(path), "mode": spec.mode(), "spec": spec.normalized()},
                    indent=2,
                )
            )
        return 0
    workers = args.workers if args.workers is not None else _default_workers()
    records = run_many(specs, workers=workers)
    for record in records:
        print(record.to_json())
    if args.csv is not None:
        path = records_to_csv(records, args.csv)
        print(f"wrote {path}")
    return 0


# ----------------------------------------------------------------------
# repro scenarios
# ----------------------------------------------------------------------
def _configure_scenarios(parser: argparse.ArgumentParser) -> None:
    scenarios_sub = parser.add_subparsers(dest="scenarios_command", required=True)
    scenarios_sub.add_parser("list", help="list registered scenario kinds")
    describe_parser = scenarios_sub.add_parser(
        "describe",
        help="describe one scenario kind (or all) with its canonical parameters",
    )
    describe_parser.add_argument(
        "kind", nargs="?", default=None, help="scenario kind (default: all kinds)"
    )
    sample_parser = scenarios_sub.add_parser(
        "sample",
        help="stream requests from a scenario spec and print them as JSON lines",
    )
    sample_parser.add_argument(
        "scenario",
        help=(
            "a registered kind name (uses its catalog example spec), inline "
            "JSON, or the path of a JSON file holding a scenario spec"
        ),
    )
    sample_parser.add_argument(
        "--n", type=int, default=10, help="number of requests to sample (default 10)"
    )
    sample_parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    sample_parser.add_argument(
        "--batch-size", type=int, default=256, help="stream batch size (result-invariant)"
    )
    sample_parser.add_argument(
        "--describe",
        action="store_true",
        help="print the environment description before the requests",
    )
    smoke_parser = scenarios_sub.add_parser(
        "smoke",
        help=(
            "run every registered scenario's catalog example through a quick "
            "OnlineSession and print one result row each"
        ),
    )
    smoke_parser.add_argument(
        "--n", type=int, default=None, help="cap requests per scenario (default: full example)"
    )
    smoke_parser.add_argument("--seed", type=int, default=0, help="root seed")


def _load_scenario_argument(argument: str):
    """Resolve the ``scenarios sample`` target: kind name, JSON text or file."""
    from repro.scenarios import EXAMPLE_SPECS, SCENARIOS, scenario_from_dict

    if argument in SCENARIOS:
        spec = EXAMPLE_SPECS.get(argument, {"kind": argument})
        return scenario_from_dict(spec)
    text = argument
    if not argument.lstrip().startswith("{"):
        path = Path(argument)
        if not path.exists():
            # Not JSON and not a file: treat as a typo'd kind name so the
            # registry's did-you-mean error surfaces instead of a bare
            # FileNotFoundError.
            SCENARIOS.get(argument)
        text = path.read_text()
    return scenario_from_dict(json.loads(text))


@register_subcommand(
    "scenarios",
    "streaming scenario engine operations (list, describe, sample, smoke)",
    configure=_configure_scenarios,
)
def _run_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import EXAMPLE_SPECS, SCENARIOS, catalog

    if args.scenarios_command == "list":
        for kind in SCENARIOS.names():
            print(kind)
        return 0
    if args.scenarios_command == "describe":
        rows = catalog()
        if args.kind is not None:
            rows = [row for row in rows if row["kind"] == args.kind]
            if not rows:
                # Unknown kind: fail with the registry's did-you-mean message.
                SCENARIOS.get(args.kind)
        for row in rows:
            print(json.dumps(row, indent=2))
        return 0
    if args.scenarios_command == "sample":
        scenario = _load_scenario_argument(args.scenario)
        stream = scenario.open(args.seed)
        if args.describe:
            print(json.dumps(stream.environment.describe()))
        remaining = args.n
        while remaining > 0:
            batch = stream.take(min(args.batch_size, remaining))
            if not batch:
                break
            for point, commodities in batch:
                print(json.dumps([point, sorted(commodities)]))
            remaining -= len(batch)
        return 0
    if args.scenarios_command == "smoke":
        # Each registered scenario's catalog example through a quick
        # OnlineSession run (the CI scenario smoke step).
        from repro.scenarios.run import ScenarioSession

        header = f"{'scenario':18s} {'n':>6s} {'facilities':>10s} {'total_cost':>12s}"
        print(header)
        print("-" * len(header))
        for kind in SCENARIOS.names():
            example = EXAMPLE_SPECS.get(kind)
            if example is None:
                # Third-party kinds registered without a catalog example.
                print(f"{kind:18s} (no catalog example; skipped)")
                continue
            session = ScenarioSession(
                {"algorithm": "pd-omflp", "scenario": dict(example), "seed": args.seed}
            )
            count = session.stream.length
            if args.n is not None:
                count = args.n if count is None else min(count, args.n)
            session.advance(count)
            record = session.finalize()
            print(
                f"{kind:18s} {record.num_requests:>6d} "
                f"{record.num_facilities:>10d} {record.total_cost:>12.4f}"
            )
        return 0
    raise ExperimentError(f"unknown scenarios command {args.scenarios_command!r}")


# ----------------------------------------------------------------------
# repro serve
# ----------------------------------------------------------------------
def _configure_serve(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--snapshot-dir",
        type=Path,
        default=None,
        help="directory for evicted-session snapshots (enables durable sessions)",
    )
    parser.add_argument(
        "--max-live-sessions",
        type=int,
        default=None,
        help="LRU-evict sessions beyond this count to the snapshot dir",
    )
    parser.add_argument(
        "--no-accel",
        action="store_true",
        help="run new sessions on the reference (non-accelerated) hot path",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help=(
            "write the service span trace (per-wire-op spans with session "
            "correlation ids) to this JSON file on shutdown/EOF"
        ),
    )
    parser.add_argument(
        "--no-trace",
        action="store_true",
        help="disable service span tracing (drops the metrics op's latency block)",
    )


@register_subcommand(
    "serve",
    "host durable named sessions over the stdin/stdout JSON line protocol",
    configure=_configure_serve,
)
def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily so plain experiment commands do not pay for it.
    from repro.service import SessionManager, serve

    if args.no_trace and args.trace_out is not None:
        raise ExperimentError("--trace-out needs tracing; drop --no-trace")
    manager = SessionManager(
        snapshot_dir=args.snapshot_dir,
        max_live_sessions=args.max_live_sessions,
        default_use_accel=not args.no_accel,
    )
    serve(
        manager,
        sys.stdin,
        sys.stdout,
        tracer=False if args.no_trace else None,
        trace_out=args.trace_out,
    )
    return 0


# ----------------------------------------------------------------------
# repro report
# ----------------------------------------------------------------------
def _configure_report(parser: argparse.ArgumentParser) -> None:
    from repro.telemetry.cli import configure_parser

    configure_parser(parser)


@register_subcommand(
    "report",
    "render a result store or RunRecord files to markdown/HTML dashboards",
    configure=_configure_report,
)
def _cmd_report(args: argparse.Namespace) -> int:
    from repro.telemetry.cli import run

    return run(args)


# ----------------------------------------------------------------------
# repro trace
# ----------------------------------------------------------------------
def _configure_trace(parser: argparse.ArgumentParser) -> None:
    from repro.trace.cli import configure_parser

    configure_parser(parser)


@register_subcommand(
    "trace",
    "record, export (Perfetto) and summarize deterministic span traces",
    configure=_configure_trace,
)
def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace.cli import run

    return run(args)


# ----------------------------------------------------------------------
# repro lint
# ----------------------------------------------------------------------
def _configure_lint(parser: argparse.ArgumentParser) -> None:
    from repro.lint.cli import configure_parser

    configure_parser(parser)


@register_subcommand(
    "lint",
    "check the tree for determinism hazards and registry-contract violations",
    configure=_configure_lint,
)
def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run

    return run(args)


# ----------------------------------------------------------------------
# Parser assembly
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The full ``repro`` parser, derived from :data:`SUBCOMMANDS`."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the figures and theorem-backed results of 'The Online "
            "Multi-Commodity Facility Location Problem' (SPAA 2020), and run "
            "declarative scenarios through the repro.api layer."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name in SUBCOMMANDS.names():
        entry = SUBCOMMANDS.build(name)
        sub_parser = subparsers.add_parser(entry.name, help=entry.summary)
        entry.configure(sub_parser)
        sub_parser.set_defaults(_handler=entry.run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args._handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
