"""The c-ordered covering problem (Definition 9) and its 2cH_n cover.

Definition 9 of the paper: elements ``1, ..., n`` and a parameter ``c >= 1``.
For element ``i`` two disjoint sets ``A_i, B_i ⊆ {1, ..., i-1}`` with
``A_i ∪ B_i = {1, ..., i-1}`` are given, and for ``i < j`` it holds
``B_i ⊆ B_j``.  The available covering sets are ``{i}`` with weight
``c / (|B_i| + 1)`` and ``{i} ∪ A_i`` with weight ``c``.

Lemma 12 shows that ``{1, ..., n}`` can always be covered with total weight at
most ``2 c H_n``; the constructive procedure (Lemmas 10 and 11) repeatedly
covers the *last block* — the maximal suffix of elements sharing the same
``B`` set — with whichever of the two options is cheaper per covered element,
removes the covered elements and recurses.  :func:`cover_ordered_instance`
implements exactly that procedure and the test-suite checks the ``2 c H_n``
bound on random instances (property-based).

Elements are 0-based internally (``0, ..., n-1``); the docstrings keep the
paper's 1-based phrasing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Set, Tuple


from repro.exceptions import InvalidInstanceError
from repro.utils.maths import harmonic_number
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "OrderedCoveringInstance",
    "OrderedCoveringSolution",
    "cover_ordered_instance",
    "random_ordered_instance",
]


@dataclass(frozen=True)
class OrderedCoveringInstance:
    """A c-ordered covering instance.

    Attributes
    ----------
    c:
        The weight parameter ``c >= 1``.
    b_sets:
        ``b_sets[i]`` is ``B_i ⊆ {0, ..., i-1}``; ``A_i`` is implied as
        ``{0, ..., i-1} \\ B_i``.
    """

    c: float
    b_sets: Tuple[FrozenSet[int], ...]

    def __post_init__(self) -> None:
        if self.c < 1.0:
            raise InvalidInstanceError(f"c-ordered covering requires c >= 1, got {self.c}")
        previous: FrozenSet[int] = frozenset()
        for i, b in enumerate(self.b_sets):
            if not isinstance(b, frozenset):
                object.__setattr__(self, "b_sets", tuple(frozenset(x) for x in self.b_sets))
                b = self.b_sets[i]
            if any(not 0 <= x < i for x in b):
                raise InvalidInstanceError(
                    f"B_{i} = {sorted(b)} must be a subset of {{0, ..., {i - 1}}}"
                )
            if not previous <= b:
                raise InvalidInstanceError(
                    f"B_{i - 1} must be a subset of B_{i} (ordered covering requires a chain)"
                )
            previous = b

    @property
    def num_elements(self) -> int:
        return len(self.b_sets)

    def a_set(self, element: int) -> FrozenSet[int]:
        """``A_i = {0, ..., i-1} \\ B_i``."""
        return frozenset(range(element)) - self.b_sets[element]

    def singleton_weight(self, element: int) -> float:
        """Weight of the set ``{i}``: ``c / (|B_i| + 1)``."""
        return self.c / (len(self.b_sets[element]) + 1)

    def block_weight(self) -> float:
        """Weight of any set ``{i} ∪ A_i``: ``c``."""
        return self.c

    def harmonic_bound(self) -> float:
        """The Lemma-12 upper bound ``2 c H_n``."""
        return 2.0 * self.c * harmonic_number(self.num_elements)


@dataclass
class OrderedCoveringSolution:
    """A cover of the elements by the instance's sets.

    ``chosen_sets`` lists ``(covered_elements, weight, kind)`` triples where
    ``kind`` is ``"singleton"`` (a ``{i}`` set) or ``"block"`` (a
    ``{i} ∪ A_i`` set).
    """

    chosen_sets: List[Tuple[FrozenSet[int], float, str]] = field(default_factory=list)

    @property
    def total_weight(self) -> float:
        return sum(weight for _, weight, _ in self.chosen_sets)

    def covered_elements(self) -> FrozenSet[int]:
        covered: Set[int] = set()
        for elements, _, _ in self.chosen_sets:
            covered |= elements
        return frozenset(covered)

    def is_cover_of(self, num_elements: int) -> bool:
        return self.covered_elements() >= frozenset(range(num_elements))


def cover_ordered_instance(instance: OrderedCoveringInstance) -> OrderedCoveringSolution:
    """Cover all elements following the constructive proof of Lemma 12.

    At each step the *last block* of the remaining instance — the maximal
    suffix of surviving elements whose ``B`` set equals that of the last
    surviving element — is covered either by the single set
    ``{last} ∪ A_last`` (weight ``c``) or by one singleton set per block
    element (weight ``c/(|B_last|+1)`` each), whichever is cheaper *per
    covered element*.  Covered elements are removed (Lemma 11) and the
    procedure repeats.  The resulting total weight is at most ``2 c H_n``.
    """
    n = instance.num_elements
    solution = OrderedCoveringSolution()
    if n == 0:
        return solution
    remaining: List[int] = list(range(n))
    while remaining:
        last = remaining[-1]
        b_last = instance.b_sets[last]
        # The last block: surviving elements with the same B set as `last`.
        block = [i for i in remaining if instance.b_sets[i] == b_last]
        a_last = instance.a_set(last)
        # Option 1: the set {last} ∪ A_last, weight c, covers every surviving
        # element that is either `last` itself or coped by it.
        option1_covered = frozenset(i for i in remaining if i == last or i in a_last)
        option1_weight_per_element = instance.c / max(len(option1_covered), 1)
        # Option 2: one singleton per element of the last block.
        option2_weight_per_element = instance.c / (len(b_last) + 1)

        if option1_weight_per_element <= option2_weight_per_element:
            solution.chosen_sets.append((option1_covered, instance.c, "block"))
            covered = option1_covered
        else:
            covered = frozenset(block)
            for element in block:
                solution.chosen_sets.append(
                    (frozenset((element,)), instance.singleton_weight(element), "singleton")
                )
        remaining = [i for i in remaining if i not in covered]
    return solution


def random_ordered_instance(
    num_elements: int,
    *,
    c: float = 1.0,
    growth_probability: float = 0.3,
    rng: RandomState = None,
) -> OrderedCoveringInstance:
    """Random valid c-ordered covering instance (for tests and the benchmark).

    The chain ``B_1 ⊆ B_2 ⊆ ...`` is grown left to right: before defining
    ``B_i`` each earlier element not yet in the chain is added independently
    with probability ``growth_probability``.
    """
    if num_elements < 0:
        raise InvalidInstanceError(f"num_elements must be non-negative, got {num_elements}")
    generator = ensure_rng(rng)
    b_sets: List[FrozenSet[int]] = []
    current: Set[int] = set()
    for i in range(num_elements):
        candidates = [j for j in range(i) if j not in current]
        for j in candidates:
            if generator.uniform() < growth_probability:
                current.add(j)
        b_sets.append(frozenset(current))
    return OrderedCoveringInstance(c=c, b_sets=tuple(b_sets))
