"""Greedy weighted set cover.

Ravi and Sinha (2004) showed that the offline multi-commodity facility
location problem inherits the Ω(log |S|) hardness of weighted set cover and,
conversely, that greedy-set-cover ideas yield an O(log |S|) approximation.
The offline greedy reference solver (:mod:`repro.algorithms.offline.greedy`)
uses the classical greedy rule through this module; it is also exercised
directly by unit tests as a substrate sanity check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, List, Mapping, Set, Tuple

from repro.exceptions import InvalidInstanceError
from repro.utils.maths import harmonic_number

__all__ = ["SetCoverInstance", "greedy_set_cover"]


@dataclass(frozen=True)
class SetCoverInstance:
    """A weighted set cover instance.

    Attributes
    ----------
    universe:
        The elements to be covered.
    sets:
        Mapping from a set identifier to the elements it covers.
    weights:
        Mapping from a set identifier to its non-negative weight.
    """

    universe: FrozenSet[Hashable]
    sets: Mapping[Hashable, FrozenSet[Hashable]]
    weights: Mapping[Hashable, float]

    def __post_init__(self) -> None:
        for key, members in self.sets.items():
            if key not in self.weights:
                raise InvalidInstanceError(f"set {key!r} has no weight")
            if self.weights[key] < 0:
                raise InvalidInstanceError(f"set {key!r} has negative weight")
        covered = frozenset().union(*self.sets.values()) if self.sets else frozenset()
        if not self.universe <= covered:
            missing = self.universe - covered
            raise InvalidInstanceError(
                f"elements {sorted(map(repr, missing))} cannot be covered by any set"
            )

    def greedy_bound(self, optimum: float) -> float:
        """The classical ``H_d``-approximation guarantee relative to ``optimum``."""
        largest = max((len(members) for members in self.sets.values()), default=1)
        return harmonic_number(largest) * optimum


def greedy_set_cover(instance: SetCoverInstance) -> Tuple[List[Hashable], float]:
    """Greedy weighted set cover: repeatedly pick the cheapest-per-new-element set.

    Returns the chosen set identifiers (in pick order) and the total weight.
    """
    remaining: Set[Hashable] = set(instance.universe)
    chosen: List[Hashable] = []
    total = 0.0
    while remaining:
        best_key, best_ratio, best_gain = None, float("inf"), 0
        for key, members in instance.sets.items():
            gain = len(members & remaining)
            if gain == 0:
                continue
            weight = instance.weights[key]
            ratio = weight / gain
            if ratio < best_ratio or (ratio == best_ratio and gain > best_gain):
                best_key, best_ratio, best_gain = key, ratio, gain
        if best_key is None:
            raise InvalidInstanceError("greedy set cover ran out of useful sets")
        chosen.append(best_key)
        total += instance.weights[best_key]
        remaining -= instance.sets[best_key]
    return chosen, total
