"""Covering subproblems used by the paper's analysis and offline solvers.

* :mod:`repro.covering.ordered_covering` implements the *c-ordered covering*
  problem of Definition 9 together with the constructive covering procedure of
  Lemmas 10–12 (total weight at most ``2 c H_n``), which is the combinatorial
  heart of the dual-feasibility proof (Lemmas 14 and 16).
* :mod:`repro.covering.set_cover` implements greedy weighted set cover, used
  by the offline greedy reference solver (the offline MFLP is reducible
  from/to weighted set cover, Ravi & Sinha 2004).
"""

from repro.covering.ordered_covering import (
    OrderedCoveringInstance,
    OrderedCoveringSolution,
    cover_ordered_instance,
    random_ordered_instance,
)
from repro.covering.set_cover import SetCoverInstance, greedy_set_cover

__all__ = [
    "OrderedCoveringInstance",
    "OrderedCoveringSolution",
    "cover_ordered_instance",
    "random_ordered_instance",
    "SetCoverInstance",
    "greedy_set_cover",
]
