"""Process-based parallel execution helpers for experiment sweeps.

Experiment sweeps are embarrassingly parallel over (workload, seed, parameter)
tuples.  Following the scatter/gather collective style of the mpi4py tutorial
(without requiring MPI), :func:`~repro.parallel.pool.parallel_map` chunks the
work items, scatters the chunks over a process pool, and gathers the results
back in input order; ``workers=1`` (or very small inputs) falls back to a
plain serial loop so that tests and debugging stay deterministic and
picklability is never required in the common case.
"""

from repro.parallel.pool import (
    ParallelConfig,
    ParallelTaskError,
    parallel_map,
    scatter_gather,
)

__all__ = ["parallel_map", "scatter_gather", "ParallelConfig", "ParallelTaskError"]
