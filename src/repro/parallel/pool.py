"""Chunked process-pool map with a deterministic serial fallback."""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.exceptions import ExperimentError, ParallelTaskError

__all__ = ["ParallelConfig", "ParallelTaskError", "parallel_map", "scatter_gather"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ParallelConfig:
    """Configuration of a parallel map.

    Attributes
    ----------
    workers:
        Number of worker processes; ``1`` (default) runs serially in-process,
        ``None`` uses ``os.cpu_count()``.
    chunk_size:
        Number of items per scattered chunk; ``None`` picks
        ``ceil(len(items) / (4 * workers))`` so each worker receives a few
        chunks (simple dynamic load balancing).
    min_items_for_parallel:
        Inputs smaller than this always run serially — spawning processes for
        a handful of items costs more than it saves.
    """

    workers: Optional[int] = 1
    chunk_size: Optional[int] = None
    min_items_for_parallel: int = 8

    def resolved_workers(self) -> int:
        if self.workers is None:
            return max(os.cpu_count() or 1, 1)
        if self.workers < 1:
            raise ExperimentError(f"workers must be >= 1 or None, got {self.workers}")
        return int(self.workers)


def _short_repr(item: object, limit: int = 200) -> str:
    text = repr(item)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _apply_chunk(function: Callable[[T], R], start_index: int, chunk: Sequence[T]) -> List[R]:
    """Worker-side chunk loop; failures name the item, not just the pool."""
    results: List[R] = []
    for offset, item in enumerate(chunk):
        try:
            results.append(function(item))
        except ParallelTaskError:
            raise  # already carries item identity (e.g. from a nested map)
        except Exception as error:
            raise ParallelTaskError(
                f"parallel_map item {start_index + offset} "
                f"({_short_repr(item)}) failed: {type(error).__name__}: {error}",
                item_index=start_index + offset,
                item_repr=_short_repr(item),
            ) from error
    return results


def parallel_map(
    function: Callable[[T], R],
    items: Iterable[T],
    *,
    config: Optional[ParallelConfig] = None,
) -> List[R]:
    """Apply ``function`` to every item, preserving input order.

    With ``config.workers > 1`` the items are split into chunks which are
    scattered over a :class:`concurrent.futures.ProcessPoolExecutor`; the
    per-chunk results are gathered and flattened back into input order.
    ``function`` and the items must be picklable in that case (module-level
    functions and plain data — the experiment worker functions satisfy this).
    """
    config = config or ParallelConfig()
    item_list = list(items)
    workers = config.resolved_workers()
    if workers <= 1 or len(item_list) < config.min_items_for_parallel:
        return [function(item) for item in item_list]

    if config.chunk_size is not None:
        if config.chunk_size < 1:
            raise ExperimentError(f"chunk_size must be >= 1, got {config.chunk_size}")
        chunk_size = config.chunk_size
    else:
        chunk_size = max(1, -(-len(item_list) // (4 * workers)))
    chunks = [item_list[i : i + chunk_size] for i in range(0, len(item_list), chunk_size)]

    starts = [i * chunk_size for i in range(len(chunks))]
    results: List[R] = []
    with ProcessPoolExecutor(max_workers=workers) as executor:
        for chunk_result in executor.map(
            _apply_chunk, [function] * len(chunks), starts, chunks
        ):
            results.extend(chunk_result)
    return results


def scatter_gather(
    function: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: Optional[int] = 1,
    chunk_size: Optional[int] = None,
) -> List[R]:
    """Convenience wrapper around :func:`parallel_map` with flat arguments."""
    return parallel_map(
        function, items, config=ParallelConfig(workers=workers, chunk_size=chunk_size)
    )
