"""Argument-validation helpers with consistent, informative error messages."""

from __future__ import annotations

import math
from typing import Optional

__all__ = [
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_in_range",
    "check_finite",
]


def check_finite(value: float, name: str) -> float:
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    return float(value)


def check_nonnegative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value >= 0``; return the value."""
    check_finite(value, name)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return float(value)


def check_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value > 0``; return the value."""
    check_finite(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return float(value)


def check_probability(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``0 <= value <= 1``; return the value."""
    check_finite(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return float(value)


def check_in_range(
    value: float,
    name: str,
    low: Optional[float] = None,
    high: Optional[float] = None,
    *,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Raise ``ValueError`` unless ``value`` lies in the given interval."""
    check_finite(value, name)
    if low is not None:
        if low_inclusive and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value}")
        if not low_inclusive and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value}")
    if high is not None:
        if high_inclusive and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value}")
        if not high_inclusive and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value}")
    return float(value)
