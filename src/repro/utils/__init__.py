"""Shared low-level utilities for the OMFLP reproduction.

This subpackage intentionally has no dependency on any other ``repro``
subpackage so that it can be imported from everywhere (metrics, costs,
algorithms, experiments) without creating cycles.

Contents
--------
``repro.utils.rng``
    Deterministic random-number-generator handling (seed normalization,
    child-stream spawning) used by every randomized component.
``repro.utils.maths``
    Small numeric helpers used throughout the paper's analysis: harmonic
    numbers, ``log n / log log n``, power-of-two rounding, positive part.
``repro.utils.timing``
    Lightweight wall-clock timers and a counting profiler used by the
    experiment harness.
``repro.utils.validation``
    Argument-validation helpers with consistent error messages.
``repro.utils.logging``
    Library logger configuration.
"""

from repro.utils.maths import (
    harmonic_number,
    log_over_loglog,
    positive_part,
    round_down_power_of_two,
    round_up_power_of_two,
    safe_log,
)
from repro.utils.rng import child_rngs, ensure_rng, spawn_child_seeds, spawn_seeds
from repro.utils.timing import Stopwatch, TimingRecord
from repro.utils.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)

__all__ = [
    "harmonic_number",
    "log_over_loglog",
    "positive_part",
    "round_down_power_of_two",
    "round_up_power_of_two",
    "safe_log",
    "ensure_rng",
    "child_rngs",
    "spawn_child_seeds",
    "spawn_seeds",
    "Stopwatch",
    "TimingRecord",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_in_range",
]
