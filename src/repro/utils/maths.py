"""Numeric helpers mirroring quantities used in the paper's analysis.

The paper's bounds are phrased in terms of the harmonic number ``H_n``
(Theorem 4 uses the scaling factor ``gamma = 1 / (5 sqrt(|S|) H_n)``), the
function ``log n / log log n`` (Fotakis' tight bound for online facility
location, used in Theorems 2, 18 and 19) and powers of two (the facility cost
classes of the randomized algorithm in Section 4).  This module centralizes
those small computations so that algorithms, lower bounds and experiments all
agree on the exact same definitions.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "harmonic_number",
    "log_over_loglog",
    "positive_part",
    "round_down_power_of_two",
    "round_up_power_of_two",
    "safe_log",
    "ceil_div",
    "geometric_levels",
    "logspace_int",
]


def harmonic_number(n: int) -> float:
    """Return the n-th harmonic number ``H_n = sum_{k=1}^{n} 1/k``.

    ``H_0`` is defined as ``0``.  For large ``n`` the asymptotic expansion
    ``ln n + gamma + 1/(2n) - 1/(12 n^2)`` is used, which is accurate to far
    below double-precision rounding error for ``n >= 64``.

    Parameters
    ----------
    n:
        Number of terms; must be a non-negative integer.
    """
    if n < 0:
        raise ValueError(f"harmonic_number requires n >= 0, got {n}")
    if n == 0:
        return 0.0
    if n < 64:
        return float(sum(1.0 / k for k in range(1, n + 1)))
    euler_gamma = 0.5772156649015328606
    n_f = float(n)
    return math.log(n_f) + euler_gamma + 1.0 / (2.0 * n_f) - 1.0 / (12.0 * n_f * n_f)


def safe_log(x: float, base: float = math.e) -> float:
    """Logarithm that returns ``0.0`` for arguments ``<= 1``.

    Competitive-ratio bounds such as ``O(sqrt(|S|) log n)`` are only
    meaningful for ``n >= 2``; clamping at zero keeps plots and fitted
    exponents well defined for degenerate corner cases (``n in {0, 1}``).
    """
    if x <= 1.0:
        return 0.0
    return math.log(x) / math.log(base)


def log_over_loglog(n: float) -> float:
    """Return ``log n / log log n`` with the conventions of the paper.

    This is the tight competitive ratio of online facility location
    (Fotakis 2008) and appears additively in the paper's lower bound
    (Corollary 3) and multiplicatively in Theorem 19.  For ``n`` small enough
    that ``log log n <= 1`` the function returns ``max(log n, 1)`` so that it
    is monotone, positive and finite on all inputs ``>= 1``.
    """
    if n <= 1.0:
        return 1.0
    ln = math.log(n)
    lln = math.log(ln) if ln > 1.0 else 0.0
    if lln <= 1.0:
        return max(ln, 1.0)
    return ln / lln


def positive_part(x):
    """Return ``max(x, 0)`` elementwise (the paper's ``(a)_+`` notation).

    Works on scalars and numpy arrays alike and never copies needlessly: for
    arrays, ``np.maximum`` allocates a single output buffer.
    """
    if isinstance(x, np.ndarray):
        return np.maximum(x, 0.0)
    return x if x > 0 else 0.0 * x


def round_down_power_of_two(value: float) -> float:
    """Round ``value`` down to the nearest power of two.

    Used by :mod:`repro.costs.classes` to build the facility cost classes of
    RAND-OMFLP (Section 4.1: "rounded down to the nearest power of 2").
    Values in ``(0, 1]`` round down to negative powers of two; zero maps to
    zero; negative values are rejected because facility costs are
    non-negative.
    """
    if value < 0:
        raise ValueError(f"facility costs must be non-negative, got {value}")
    if value == 0:
        return 0.0
    exponent = math.floor(math.log2(value))
    return float(2.0**exponent)


def round_up_power_of_two(value: float) -> float:
    """Round ``value`` up to the nearest power of two (see the down variant)."""
    if value < 0:
        raise ValueError(f"facility costs must be non-negative, got {value}")
    if value == 0:
        return 0.0
    exponent = math.ceil(math.log2(value))
    return float(2.0**exponent)


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division ``ceil(a / b)`` for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires a positive divisor, got {b}")
    if a < 0:
        raise ValueError(f"ceil_div requires a non-negative dividend, got {a}")
    return -(-a // b)


def geometric_levels(smallest: float, largest: float, factor: float = 2.0) -> np.ndarray:
    """Return the geometric grid ``smallest, smallest*factor, ...`` covering ``largest``.

    Helper for cost-class construction and for distance-scale sweeps in the
    experiments.  The returned array always contains at least one element and
    its last element is ``>= largest`` (within floating-point tolerance).
    """
    if smallest <= 0:
        raise ValueError(f"geometric_levels requires smallest > 0, got {smallest}")
    if largest < smallest:
        raise ValueError(
            f"geometric_levels requires largest >= smallest, got {smallest} > {largest}"
        )
    if factor <= 1.0:
        raise ValueError(f"geometric_levels requires factor > 1, got {factor}")
    count = int(math.ceil(math.log(largest / smallest, factor))) + 1
    return smallest * np.power(factor, np.arange(max(count, 1), dtype=np.float64))


def logspace_int(low: int, high: int, count: int) -> list[int]:
    """Return ``count`` roughly log-spaced distinct integers in ``[low, high]``.

    Experiment sweeps over ``n`` (number of requests) and ``|S|`` (number of
    commodities) use this to probe growth rates without a dense grid.
    """
    if low < 1 or high < low:
        raise ValueError(f"logspace_int requires 1 <= low <= high, got {low}, {high}")
    if count < 1:
        raise ValueError(f"logspace_int requires count >= 1, got {count}")
    if count == 1:
        return [high]
    values = np.unique(
        np.round(np.exp(np.linspace(math.log(low), math.log(high), count))).astype(int)
    )
    return [int(v) for v in values]
