"""Wall-clock timing helpers for the experiment harness.

Following the "no optimization without measuring" rule of the
scientific-Python optimization guide, every experiment records how long each
(algorithm, instance) pair took so that runtime regressions are visible in
the benchmark output next to the competitive ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.trace.clock import wall_now

__all__ = ["Stopwatch", "TimingRecord"]


@dataclass
class TimingRecord:
    """Accumulated wall-clock time for a named phase."""

    name: str
    total_seconds: float = 0.0
    calls: int = 0

    def add(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative duration {seconds} for phase {self.name!r}")
        self.total_seconds += seconds
        self.calls += 1

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


class Stopwatch:
    """Context-manager based accumulator of per-phase wall-clock time.

    Example
    -------
    >>> watch = Stopwatch()
    >>> with watch.measure("solve"):
    ...     _ = sum(range(1000))
    >>> watch.record("solve").calls
    1
    """

    def __init__(self) -> None:
        self._records: Dict[str, TimingRecord] = {}

    def measure(self, name: str) -> "_Measurement":
        return _Measurement(self, name)

    def record(self, name: str) -> TimingRecord:
        if name not in self._records:
            self._records[name] = TimingRecord(name)
        return self._records[name]

    def records(self) -> Dict[str, TimingRecord]:
        return dict(self._records)

    def total_seconds(self) -> float:
        return sum(record.total_seconds for record in self._records.values())

    def summary(self) -> str:
        lines = []
        for name in sorted(self._records):
            record = self._records[name]
            lines.append(
                f"{name}: {record.total_seconds:.4f}s over {record.calls} call(s) "
                f"(mean {record.mean_seconds:.4f}s)"
            )
        return "\n".join(lines)


class _Measurement:
    def __init__(self, stopwatch: Stopwatch, name: str) -> None:
        self._stopwatch = stopwatch
        self._name = name
        self._start: Optional[float] = None

    def __enter__(self) -> "_Measurement":
        self._start = wall_now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._start is not None
        self._stopwatch.record(self._name).add(wall_now() - self._start)
