"""Deterministic random-number handling.

Every randomized component of the library (RAND-OMFLP, Meyerson's OFL, the
single-point adversary of Theorem 2, workload generators, experiment sweeps)
accepts either an integer seed, a :class:`numpy.random.Generator`, or ``None``
and normalizes it through :func:`ensure_rng`.  Experiments that fan out over
many (seed, parameter) combinations derive independent child streams through
:func:`spawn_seeds` / :func:`child_rngs` so that parallel and serial execution
produce bit-identical results (a requirement of the sweep-executor tests).
"""

from __future__ import annotations

from typing import Any, Dict, Union

import numpy as np

__all__ = [
    "ensure_rng",
    "spawn_child_seeds",
    "spawn_seeds",
    "child_rngs",
    "rng_state",
    "rng_from_state",
    "RandomState",
]

RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int``, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged so that callers can thread
        a single stream through nested calls).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        "seed must be None, an int, a numpy SeedSequence or a numpy Generator; "
        f"got {type(seed).__name__}"
    )


def _encode_state_value(value: Any) -> Any:
    """Recursively convert a bit-generator state entry to JSON-compatible data."""
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, dict):
        return {str(key): _encode_state_value(entry) for key, entry in value.items()}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _decode_state_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=np.dtype(value["dtype"]))
        return {key: _decode_state_value(entry) for key, entry in value.items()}
    return value


def rng_state(generator: np.random.Generator) -> Dict[str, Any]:
    """The generator's exact bit-generator state as JSON-compatible data.

    The returned dictionary round-trips through JSON (numpy arrays inside
    MT19937-style states are tagged and listified) and restores the *identical*
    stream through :func:`rng_from_state` — the foundation of bit-identical
    session snapshot/resume.
    """
    return _encode_state_value(dict(generator.bit_generator.state))


def rng_from_state(state: Dict[str, Any]) -> np.random.Generator:
    """A fresh generator whose stream continues exactly from ``state``.

    ``state`` is the output of :func:`rng_state`; the bit-generator class is
    recreated by the name recorded in the state dictionary.
    """
    decoded = _decode_state_value(state)
    name = decoded.get("bit_generator")
    bit_generator_cls = getattr(np.random, str(name), None)
    if bit_generator_cls is None or not isinstance(name, str):
        raise ValueError(f"unknown bit generator {name!r} in rng state")
    bit_generator = bit_generator_cls()
    bit_generator.state = decoded
    return np.random.Generator(bit_generator)


def spawn_child_seeds(seed: RandomState, count: int) -> list[int]:
    """Derive ``count`` independent 63-bit integer child seeds from ``seed``.

    The derivation uses :class:`numpy.random.SeedSequence` spawning, which
    guarantees statistically independent child streams; passing the same
    ``seed`` always yields the same list, which is what makes parallel task
    execution reproducible regardless of worker count or scheduling.  The
    engine (:mod:`repro.engine`) seeds one child stream per task, so shard
    boundaries never shift results.

    Because each call spawns from a *fresh* sequence, the list is
    prefix-stable: ``spawn_child_seeds(s, n)[:k] == spawn_child_seeds(s, k)``
    for any ``k <= n`` — growing a case grid keeps the seeds of existing
    cases (and therefore their content-addressed store entries) unchanged.
    """
    if count < 0:
        raise ValueError(f"spawn_child_seeds requires count >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a stable entropy source from the generator without consuming
        # much of its stream: a single 64-bit draw.
        entropy = int(seed.integers(0, 2**63 - 1))
        sequence = np.random.SeedSequence(entropy)
    elif isinstance(seed, np.random.SeedSequence):
        # Spawn from a pristine clone: SeedSequence.spawn() advances the
        # parent's spawn counter, which would make a second call with the
        # same object yield different children and break the determinism
        # and prefix-stability promises above.
        sequence = np.random.SeedSequence(
            entropy=seed.entropy, spawn_key=seed.spawn_key
        )
    else:
        sequence = np.random.SeedSequence(seed)
    children = sequence.spawn(count)
    return [int(child.generate_state(1, dtype=np.uint64)[0] % (2**63 - 1)) for child in children]


def spawn_seeds(seed: RandomState, count: int) -> list[int]:
    """Alias of :func:`spawn_child_seeds`, kept for existing callers.

    Note one deliberate semantic change for ``SeedSequence`` inputs: calls no
    longer advance the sequence's spawn counter, so repeated calls with the
    same object return the *same* list (previously each call returned a
    fresh batch).  Derive distinct batches from distinct root seeds — or
    spawn child ``SeedSequence`` objects yourself — rather than relying on
    hidden counter state.
    """
    return spawn_child_seeds(seed, count)


def child_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators derived from ``seed``."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, count)]
