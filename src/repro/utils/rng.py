"""Deterministic random-number handling.

Every randomized component of the library (RAND-OMFLP, Meyerson's OFL, the
single-point adversary of Theorem 2, workload generators, experiment sweeps)
accepts either an integer seed, a :class:`numpy.random.Generator`, or ``None``
and normalizes it through :func:`ensure_rng`.  Experiments that fan out over
many (seed, parameter) combinations derive independent child streams through
:func:`spawn_seeds` / :func:`child_rngs` so that parallel and serial execution
produce bit-identical results (a requirement of the sweep-executor tests).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

__all__ = ["ensure_rng", "spawn_seeds", "child_rngs", "RandomState"]

RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int``, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged so that callers can thread
        a single stream through nested calls).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        "seed must be None, an int, a numpy SeedSequence or a numpy Generator; "
        f"got {type(seed).__name__}"
    )


def spawn_seeds(seed: RandomState, count: int) -> list[int]:
    """Derive ``count`` independent 63-bit integer seeds from ``seed``.

    The derivation uses :class:`numpy.random.SeedSequence` spawning, which
    guarantees statistically independent child streams; passing the same
    ``seed`` always yields the same list, which is what makes parallel sweeps
    reproducible regardless of worker scheduling.
    """
    if count < 0:
        raise ValueError(f"spawn_seeds requires count >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a stable entropy source from the generator without consuming
        # much of its stream: a single 64-bit draw.
        entropy = int(seed.integers(0, 2**63 - 1))
        sequence = np.random.SeedSequence(entropy)
    elif isinstance(seed, np.random.SeedSequence):
        sequence = seed
    else:
        sequence = np.random.SeedSequence(seed)
    children = sequence.spawn(count)
    return [int(child.generate_state(1, dtype=np.uint64)[0] % (2**63 - 1)) for child in children]


def child_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators derived from ``seed``."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, count)]
