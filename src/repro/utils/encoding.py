"""Strict-JSON-safe encoding of extended floats.

Snapshot state dictionaries (see :mod:`repro.service.snapshot`) must round-trip
through *strict* JSON so that any conforming parser — not just Python's — can
read them off the wire.  Strict JSON has no ``Infinity``/``NaN`` tokens, but
the online state legitimately contains ``inf`` (nearest-facility distances
before the first facility covering a commodity opens).  These helpers encode
non-finite floats as the strings ``"inf"``, ``"-inf"`` and ``"nan"``; finite
floats pass through unchanged, so ``json`` round-trips them bit-exactly (the
serializer emits the shortest repr that parses back to the same double).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Union

__all__ = ["encode_float", "decode_float", "encode_floats", "decode_floats"]

EncodedFloat = Union[float, str]


def encode_float(value: float) -> EncodedFloat:
    """``value`` itself when finite, else its string spelling."""
    value = float(value)
    if math.isfinite(value):
        return value
    if math.isnan(value):
        return "nan"
    return "inf" if value > 0 else "-inf"


def decode_float(value: EncodedFloat) -> float:
    """Inverse of :func:`encode_float` (``float`` parses the string forms)."""
    return float(value)


def encode_floats(values: Iterable[float]) -> List[EncodedFloat]:
    return [encode_float(v) for v in values]


def decode_floats(values: Iterable[EncodedFloat]) -> List[float]:
    return [decode_float(v) for v in values]
