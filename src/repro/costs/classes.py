"""Facility cost classes (powers of two) for RAND-OMFLP.

Section 4.1 of the paper: "Fix a configuration sigma.  Consider the set of all
possible different ``f^sigma_m`` rounded down to the nearest power of 2 in
increasing order ``C^sigma_1, ..., C^sigma_n``.  We call ``C^sigma_i`` the
class ``i`` with respect to sigma [...].  Let ``d(C^sigma_i, m)`` denote the
minimal distance from a point ``m`` to a point in class ``i``."

Implementation conventions (documented in DESIGN.md §4.2): ``d(C^sigma_i, r)``
is the distance from ``r`` to the nearest point whose *rounded* cost is at
most ``C^sigma_i``.  This makes the distances non-increasing in ``i`` (zero
from class ``i`` onwards once ``r``'s own location belongs to a class
``<= i``), which is what gives the telescoping expectation of Lemma 20 and
keeps the per-class probabilities inside ``[0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Tuple

import numpy as np

from repro.costs.base import FacilityCostFunction
from repro.exceptions import InvalidCostFunctionError
from repro.metric.base import MetricSpace
from repro.utils.maths import round_down_power_of_two

__all__ = ["CostClass", "CostClassIndex"]


@dataclass(frozen=True)
class CostClass:
    """One facility cost class for a fixed configuration.

    Attributes
    ----------
    index:
        1-based class index ``i`` (class 1 is the cheapest).
    value:
        The rounded (power-of-two) cost ``C^sigma_i``.
    points:
        Point indices whose rounded cost equals ``value`` exactly.
    cumulative_points:
        Point indices whose rounded cost is at most ``value`` (the set used
        for the distance convention described in the module docstring).
    """

    index: int
    value: float
    points: Tuple[int, ...]
    cumulative_points: Tuple[int, ...]


class CostClassIndex:
    """Power-of-two cost classes of one configuration over all metric points."""

    def __init__(
        self,
        metric: MetricSpace,
        cost_function: FacilityCostFunction,
        configuration: Iterable[int],
    ) -> None:
        self._metric = metric
        self._configuration = cost_function.normalize_configuration(configuration)
        if not self._configuration:
            raise InvalidCostFunctionError("cost classes require a non-empty configuration")
        points = list(range(metric.num_points))
        raw_costs = cost_function.costs_over_points(self._configuration, points)
        rounded = np.array([round_down_power_of_two(float(c)) for c in raw_costs])
        self._rounded_costs = rounded

        distinct = sorted(set(float(v) for v in rounded))
        classes: List[CostClass] = []
        cumulative: List[int] = []
        cumulative_arrays: List[np.ndarray] = []
        for i, value in enumerate(distinct, start=1):
            exact = tuple(int(p) for p in np.where(rounded == value)[0])
            cumulative.extend(exact)
            classes.append(
                CostClass(
                    index=i,
                    value=float(value),
                    points=exact,
                    cumulative_points=tuple(cumulative),
                )
            )
            cumulative_arrays.append(np.asarray(cumulative, dtype=np.intp))
        self._classes = classes
        # Pre-converted cumulative point arrays: the distance queries below
        # run per request per class, and handing distances_between a ready
        # intp array avoids a list -> array conversion on every call.
        self._cumulative_arrays = cumulative_arrays

    # ------------------------------------------------------------------
    @property
    def configuration(self) -> FrozenSet[int]:
        return self._configuration

    @property
    def num_classes(self) -> int:
        return len(self._classes)

    @property
    def classes(self) -> List[CostClass]:
        return list(self._classes)

    def class_value(self, index: int) -> float:
        """``C^sigma_i`` for the 1-based class index ``i``."""
        return self._class_at(index).value

    def rounded_cost_at(self, point: int) -> float:
        """Rounded (power-of-two) cost of the configuration at ``point``."""
        return float(self._rounded_costs[point])

    def class_of_point(self, point: int) -> int:
        """1-based class index of ``point``'s rounded cost."""
        value = self.rounded_cost_at(point)
        for cls in self._classes:
            if cls.value == value:
                return cls.index
        raise InvalidCostFunctionError(f"point {point} has no cost class")  # pragma: no cover

    def distance_to_class(self, index: int, from_point: int) -> float:
        """``d(C^sigma_i, r)`` under the cumulative convention (see module docstring)."""
        self._class_at(index)
        return self._metric.nearest_distance(from_point, self._cumulative_arrays[index - 1])

    def nearest_point_of_class(self, index: int, from_point: int) -> Tuple[int, float]:
        """Closest point whose rounded cost is at most ``C^sigma_i``."""
        self._class_at(index)
        return self._metric.nearest(from_point, self._cumulative_arrays[index - 1])

    def cheapest_open_option(self, from_point: int) -> Tuple[int, float]:
        """``(argmin_i, min_i { C^sigma_i + d(C^sigma_i, r) })`` for ``r = from_point``.

        This is the "open a new facility of some class and connect to it" term
        inside ``X(r, e)`` and ``Z(r)`` of Section 4.1.
        """
        best_index, best_value = 1, float("inf")
        for cls in self._classes:
            value = cls.value + self.distance_to_class(cls.index, from_point)
            if value < best_value:
                best_index, best_value = cls.index, value
        return best_index, best_value

    def opening_option_values(self, from_point: int) -> np.ndarray:
        """Vector of ``C^sigma_i + d(C^sigma_i, r)`` over all classes ``i``."""
        return np.array(
            [cls.value + self.distance_to_class(cls.index, from_point) for cls in self._classes],
            dtype=np.float64,
        )

    def _class_at(self, index: int) -> CostClass:
        if not 1 <= index <= len(self._classes):
            raise InvalidCostFunctionError(
                f"class index {index} out of range [1, {len(self._classes)}]"
            )
        return self._classes[index - 1]
