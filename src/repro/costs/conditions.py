"""Structural property checkers for facility cost functions.

The paper's analysis relies on subadditivity (always assumable, Section 1.1)
and on Condition 1 (``f^sigma_m / |sigma| >= f^S_m / |S|``).  These checkers
verify the properties either exhaustively (small ``|S|``) or on random
sampled configurations (larger ``|S|``), and are used both by the test suite
and by :class:`~repro.core.instance.Instance` validation.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple


from repro.costs.base import FacilityCostFunction
from repro.exceptions import InvalidCostFunctionError
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "check_subadditivity",
    "check_condition_one",
    "check_monotonicity",
    "CostPropertyViolation",
]

#: Relative tolerance used by all checks.
_TOLERANCE = 1e-9


class CostPropertyViolation(InvalidCostFunctionError):
    """Raised (optionally) when a structural property does not hold."""


def _configurations_to_check(
    num_commodities: int,
    max_exhaustive: int,
    samples: int,
    rng: RandomState,
) -> List[frozenset]:
    """All non-empty configurations when |S| is small, otherwise a random sample."""
    if num_commodities <= max_exhaustive:
        configs: List[frozenset] = []
        universe = list(range(num_commodities))
        for size in range(1, num_commodities + 1):
            configs.extend(frozenset(c) for c in itertools.combinations(universe, size))
        return configs
    generator = ensure_rng(rng)
    configs = []
    for _ in range(samples):
        size = int(generator.integers(1, num_commodities + 1))
        members = generator.choice(num_commodities, size=size, replace=False)
        configs.append(frozenset(int(e) for e in members))
    # Always include the singletons and the full set: they are the
    # configurations the algorithms actually build.
    configs.extend(frozenset((e,)) for e in range(num_commodities))
    configs.append(frozenset(range(num_commodities)))
    return configs


def check_subadditivity(
    cost: FacilityCostFunction,
    points: Sequence[int],
    *,
    max_exhaustive: int = 8,
    samples: int = 64,
    rng: RandomState = None,
    raise_on_violation: bool = False,
) -> List[Tuple[int, frozenset, frozenset]]:
    """Check ``f^{a∪b}_m <= f^a_m + f^b_m`` over the given points.

    Returns the list of violating ``(point, a, b)`` triples (empty when the
    function is subadditive on everything checked).
    """
    generator = ensure_rng(rng)
    violations: List[Tuple[int, frozenset, frozenset]] = []
    configs = _configurations_to_check(cost.num_commodities, max_exhaustive, samples, generator)
    for point in points:
        for config in configs:
            if len(config) < 2:
                continue
            members = sorted(config)
            # Check a handful of splits of the configuration; for exhaustive
            # mode check all splits into (prefix, rest).
            split_positions = range(1, len(members)) if len(members) <= 12 else [len(members) // 2]
            for split in split_positions:
                a = frozenset(members[:split])
                b = frozenset(members[split:])
                union_cost = cost.cost(point, config)
                if union_cost > cost.cost(point, a) + cost.cost(point, b) + _TOLERANCE:
                    violations.append((point, a, b))
                    break
    if violations and raise_on_violation:
        point, a, b = violations[0]
        raise CostPropertyViolation(
            f"subadditivity violated at point {point}: f({sorted(a | b)}) > "
            f"f({sorted(a)}) + f({sorted(b)})"
        )
    return violations


def check_condition_one(
    cost: FacilityCostFunction,
    points: Sequence[int],
    *,
    max_exhaustive: int = 10,
    samples: int = 128,
    rng: RandomState = None,
    raise_on_violation: bool = False,
) -> List[Tuple[int, frozenset]]:
    """Check Condition 1: ``f^sigma_m / |sigma| >= f^S_m / |S|``.

    Returns the violating ``(point, sigma)`` pairs.
    """
    generator = ensure_rng(rng)
    violations: List[Tuple[int, frozenset]] = []
    configs = _configurations_to_check(cost.num_commodities, max_exhaustive, samples, generator)
    size_s = float(cost.num_commodities)
    for point in points:
        full_rate = cost.full_cost(point) / size_s
        for config in configs:
            if not config:
                continue
            rate = cost.cost(point, config) / float(len(config))
            if rate < full_rate - _TOLERANCE:
                violations.append((point, config))
    if violations and raise_on_violation:
        point, config = violations[0]
        raise CostPropertyViolation(
            f"Condition 1 violated at point {point} for configuration {sorted(config)}: "
            f"per-commodity cost {cost.cost(point, config) / len(config):.6g} < "
            f"f^S_m / |S| = {cost.full_cost(point) / size_s:.6g}"
        )
    return violations


def check_monotonicity(
    cost: FacilityCostFunction,
    points: Sequence[int],
    *,
    max_exhaustive: int = 8,
    samples: int = 64,
    rng: RandomState = None,
    raise_on_violation: bool = False,
) -> List[Tuple[int, frozenset, int]]:
    """Check that adding a commodity never decreases the cost.

    Monotonicity is not required by the paper's analysis but every natural
    cost family satisfies it; the checker is used to catch malformed custom
    cost functions early.  Returns violating ``(point, sigma, commodity)``.
    """
    generator = ensure_rng(rng)
    violations: List[Tuple[int, frozenset, int]] = []
    configs = _configurations_to_check(cost.num_commodities, max_exhaustive, samples, generator)
    for point in points:
        for config in configs:
            base = cost.cost(point, config)
            for commodity in range(cost.num_commodities):
                if commodity in config:
                    continue
                extended = config | {commodity}
                if cost.cost(point, extended) < base - _TOLERANCE:
                    violations.append((point, config, commodity))
                    break
    if violations and raise_on_violation:
        point, config, commodity = violations[0]
        raise CostPropertyViolation(
            f"monotonicity violated at point {point}: adding commodity {commodity} to "
            f"{sorted(config)} decreases the cost"
        )
    return violations
