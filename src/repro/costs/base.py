"""Abstract facility construction cost function ``f^sigma_m``."""

from __future__ import annotations

import abc
from typing import FrozenSet, Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidCostFunctionError

__all__ = ["FacilityCostFunction"]

Configuration = FrozenSet[int]


class FacilityCostFunction(abc.ABC):
    """Construction cost of opening a facility with configuration ``sigma`` at point ``m``.

    Commodities are integers ``0, ..., num_commodities - 1``; a configuration
    is a (frozen) set of commodities.  Implementations must be deterministic:
    the same ``(point, configuration)`` always yields the same cost, because
    the online algorithms repeatedly re-evaluate costs while deciding.
    """

    def __init__(self, num_commodities: int) -> None:
        if num_commodities <= 0:
            raise InvalidCostFunctionError(
                f"num_commodities must be positive, got {num_commodities}"
            )
        self._num_commodities = int(num_commodities)
        self._full_set = frozenset(range(self._num_commodities))

    # ------------------------------------------------------------------
    # Abstract interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def cost(self, point: int, configuration: Iterable[int]) -> float:
        """Return ``f^sigma_m`` for ``m = point`` and ``sigma = configuration``.

        The empty configuration always costs 0 (no facility is built).
        """

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    @property
    def num_commodities(self) -> int:
        """Size of the commodity universe ``|S|``."""
        return self._num_commodities

    @property
    def full_set(self) -> Configuration:
        """The full commodity set ``S``."""
        return self._full_set

    def normalize_configuration(self, configuration: Iterable[int]) -> Configuration:
        """Validate and freeze a configuration."""
        config = frozenset(int(e) for e in configuration)
        for e in config:
            if not 0 <= e < self._num_commodities:
                raise InvalidCostFunctionError(
                    f"commodity {e} out of range [0, {self._num_commodities})"
                )
        return config

    def singleton_cost(self, point: int, commodity: int) -> float:
        """Cost of a *small* facility offering only ``commodity`` at ``point``."""
        return self.cost(point, (commodity,))

    def full_cost(self, point: int) -> float:
        """Cost of a *large* facility offering all of ``S`` at ``point``."""
        return self.cost(point, self._full_set)

    def costs_over_points(self, configuration: Iterable[int], points: Sequence[int]) -> np.ndarray:
        """Vectorized ``f^sigma_m`` over several points (default: Python loop).

        Subclasses whose cost factors into ``point_scale[m] * shape(|sigma|)``
        override this with a single numpy expression; the generic fallback is
        only used by validators and small offline solvers.
        """
        config = self.normalize_configuration(configuration)
        return np.array([self.cost(point, config) for point in points], dtype=np.float64)

    def per_commodity_full_cost(self, point: int) -> float:
        """``f^S_m / |S|`` — the right-hand side of Condition 1."""
        return self.full_cost(point) / float(self._num_commodities)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(num_commodities={self._num_commodities})"
