"""Hierarchical facility costs in the spirit of Svitkina and Tardos.

Section 1.2 of the paper cites Svitkina and Tardos (2010), who obtained a
constant-factor offline approximation for *hierarchical* cost functions:
opening costs are modeled by a tree whose leaves are the commodities and the
cost of a configuration is the total weight of the subtree spanning the root
and the configuration's leaves.  Such functions are always subadditive and
monotone, and they satisfy Condition 1 whenever leaf-to-root paths have equal
weight (e.g. balanced trees with level-uniform edge weights).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.costs.base import FacilityCostFunction
from repro.exceptions import InvalidCostFunctionError

__all__ = ["HierarchicalCost"]


class HierarchicalCost(FacilityCostFunction):
    """Tree-defined configuration costs.

    Parameters
    ----------
    tree:
        A :class:`networkx.DiGraph` or undirected tree; ``root`` must be a
        node, and every commodity ``0..|S|-1`` must appear as a leaf label via
        ``leaf_of_commodity``.
    root:
        Root node of the hierarchy.
    leaf_of_commodity:
        Mapping commodity index -> leaf node.
    weight:
        Edge attribute carrying the edge cost (default 1.0 per edge).
    point_scales:
        Optional per-point multipliers, as for the count-based costs.
    """

    def __init__(
        self,
        tree: nx.Graph,
        root,
        leaf_of_commodity: Dict[int, object],
        *,
        weight: str = "weight",
        point_scales: Optional[Sequence[float]] = None,
    ) -> None:
        undirected = tree.to_undirected() if tree.is_directed() else tree
        if not nx.is_tree(undirected):
            raise InvalidCostFunctionError("HierarchicalCost requires a tree")
        if root not in undirected:
            raise InvalidCostFunctionError(f"root {root!r} is not a node of the tree")
        num_commodities = len(leaf_of_commodity)
        if set(leaf_of_commodity.keys()) != set(range(num_commodities)):
            raise InvalidCostFunctionError(
                "leaf_of_commodity must map exactly the commodities 0..|S|-1"
            )
        super().__init__(num_commodities)
        self._root = root
        # Precompute, per commodity, the list of edges on its root path as
        # (edge_id) indices into a weight vector, so configuration costs are
        # unions of edge-id sets.
        edge_ids: Dict[Tuple[object, object], int] = {}
        weights: List[float] = []

        def edge_id(u, v) -> int:
            key = (u, v) if (u, v) in edge_ids else (v, u)
            if key not in edge_ids:
                edge_ids[key] = len(weights)
                data = undirected.get_edge_data(u, v) or {}
                value = float(data.get(weight, 1.0))
                if value < 0:
                    raise InvalidCostFunctionError(
                        f"edge ({u!r}, {v!r}) has negative weight {value}"
                    )
                weights.append(value)
            return edge_ids[key]

        paths = nx.single_source_shortest_path(undirected, root)
        self._path_edges: Dict[int, frozenset] = {}
        for commodity, leaf in leaf_of_commodity.items():
            if leaf not in paths:
                raise InvalidCostFunctionError(f"leaf {leaf!r} is not connected to the root")
            path = paths[leaf]
            ids = frozenset(edge_id(path[i], path[i + 1]) for i in range(len(path) - 1))
            self._path_edges[int(commodity)] = ids
        self._edge_weights = np.asarray(weights, dtype=np.float64)
        if point_scales is not None:
            scales = np.asarray(point_scales, dtype=np.float64)
            if np.any(scales < 0) or not np.all(np.isfinite(scales)):
                raise InvalidCostFunctionError("point_scales must be finite and non-negative")
            self._scales: Optional[np.ndarray] = scales
        else:
            self._scales = None

    @classmethod
    def balanced(
        cls,
        num_commodities: int,
        *,
        branching: int = 2,
        edge_weight: float = 1.0,
        point_scales: Optional[Sequence[float]] = None,
    ) -> "HierarchicalCost":
        """Balanced hierarchy over the commodities with uniform edge weights."""
        if num_commodities <= 0:
            raise InvalidCostFunctionError("num_commodities must be positive")
        if branching < 2:
            raise InvalidCostFunctionError("branching must be at least 2")
        if edge_weight <= 0:
            raise InvalidCostFunctionError("edge_weight must be positive")
        tree = nx.Graph()
        root = "root"
        tree.add_node(root)
        # Build levels until we have at least num_commodities leaves.
        frontier = [root]
        leaves: List[object] = []
        counter = 0
        while len(frontier) < num_commodities:
            next_frontier: List[object] = []
            for node in frontier:
                for _ in range(branching):
                    child = f"n{counter}"
                    counter += 1
                    tree.add_edge(node, child, weight=edge_weight)
                    next_frontier.append(child)
            frontier = next_frontier
        leaves = frontier[:num_commodities]
        leaf_of_commodity = {i: leaf for i, leaf in enumerate(leaves)}
        return cls(tree, root, leaf_of_commodity, point_scales=point_scales)

    def point_scale(self, point: int) -> float:
        if self._scales is None:
            return 1.0
        if not 0 <= point < self._scales.size:
            raise InvalidCostFunctionError(
                f"point {point} out of range [0, {self._scales.size})"
            )
        return float(self._scales[point])

    def cost(self, point: int, configuration: Iterable[int]) -> float:
        config = self.normalize_configuration(configuration)
        if not config:
            return 0.0
        edge_union: set = set()
        for commodity in config:
            edge_union |= self._path_edges[commodity]
        total = float(self._edge_weights[np.fromiter(edge_union, dtype=np.intp)].sum())
        return self.point_scale(point) * total
