"""Heavy-commodity detection (the closing remarks of the paper, Section 5).

Condition 1 (``f^σ_m / |σ| ≥ f^S_m / |S|``) fails exactly when some
commodities are *heavy*: adding them to a configuration increases the
construction cost so much that the per-commodity price of the full set is no
longer the cheapest.  The closing remarks suggest a simple remedy when only a
few commodities are heavy: "run our algorithms in which the heavy commodities
are excluded such that a large facility becomes one including all non-heavy
commodities" — heavy commodities are then always served by small facilities.

This module provides the two pieces needed to apply that remedy
automatically:

* :func:`detect_heavy_commodities` — identify the commodities whose removal
  restores Condition 1 (greedy, most-expensive-first);
* :func:`heavy_aware_pd` — construct a
  :class:`~repro.algorithms.online.threshold.ThresholdPDAlgorithm` whose large
  configuration excludes the detected heavy commodities.

The ``heavy-commodities`` experiment measures the effect of the remedy on
workloads with skewed service sizes.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Sequence

import numpy as np

from repro.costs.base import FacilityCostFunction
from repro.costs.conditions import check_condition_one
from repro.exceptions import InvalidCostFunctionError
from repro.utils.rng import RandomState

__all__ = ["detect_heavy_commodities", "heavy_aware_pd", "condition_one_holds_without"]


def condition_one_holds_without(
    cost: FacilityCostFunction,
    excluded: FrozenSet[int],
    points: Sequence[int],
    *,
    samples: int = 64,
    rng: RandomState = None,
) -> bool:
    """Does Condition 1 hold when restricted to ``S \\ excluded``?

    The restricted condition compares ``f^σ_m / |σ|`` for configurations
    ``σ ⊆ S \\ excluded`` against the per-commodity price of the restricted
    "large" configuration ``S \\ excluded``.
    """
    remaining = sorted(set(range(cost.num_commodities)) - excluded)
    if not remaining:
        return True
    large = frozenset(remaining)
    large_rate = {
        point: cost.cost(point, large) / float(len(large)) for point in points
    }
    violations = check_condition_one(cost, points, samples=samples, rng=rng)
    for point, config in violations:
        restricted = frozenset(config) - excluded
        if not restricted:
            continue
        rate = cost.cost(point, restricted) / float(len(restricted))
        if rate < large_rate[point] - 1e-9:
            return False
    # The sampled violation list may miss restricted configurations; check the
    # singletons explicitly (they are the configurations the algorithm builds).
    for point in points:
        for commodity in remaining:
            rate = cost.cost(point, (commodity,))
            if rate < large_rate[point] - 1e-9:
                return False
    return True


def detect_heavy_commodities(
    cost: FacilityCostFunction,
    points: Sequence[int],
    *,
    max_excluded: Optional[int] = None,
    samples: int = 64,
    rng: RandomState = None,
) -> FrozenSet[int]:
    """Greedily find a small set of commodities whose exclusion restores Condition 1.

    Commodities are considered in order of decreasing singleton cost (averaged
    over the given points) — the natural notion of "heavy" — and added to the
    excluded set until the restricted Condition 1 holds or ``max_excluded``
    commodities have been excluded (default: ``|S| - 1``; at least one
    commodity always remains in the large configuration).

    Returns the (possibly empty) excluded set.  When the cost function already
    satisfies Condition 1 the result is empty.
    """
    if not points:
        raise InvalidCostFunctionError("detect_heavy_commodities needs at least one point")
    limit = max_excluded if max_excluded is not None else cost.num_commodities - 1
    limit = min(limit, cost.num_commodities - 1)

    if not check_condition_one(cost, points, samples=samples, rng=rng):
        return frozenset()

    mean_singleton = np.array(
        [
            float(np.mean([cost.cost(point, (commodity,)) for point in points]))
            for commodity in range(cost.num_commodities)
        ]
    )
    order = list(np.argsort(-mean_singleton, kind="stable"))

    excluded: set = set()
    for commodity in order:
        if len(excluded) >= limit:
            break
        excluded.add(int(commodity))
        if condition_one_holds_without(
            cost, frozenset(excluded), points, samples=samples, rng=rng
        ):
            return frozenset(excluded)
    return frozenset(excluded)


def heavy_aware_pd(
    cost: FacilityCostFunction,
    points: Sequence[int],
    *,
    max_excluded: Optional[int] = None,
    samples: int = 64,
    rng: RandomState = None,
):
    """PD-OMFLP variant whose large configuration excludes detected heavy commodities.

    Returns ``(algorithm, excluded)``; when no commodity is heavy the plain
    PD-OMFLP behaviour is recovered (empty exclusion set).
    """
    from repro.algorithms.online.threshold import ThresholdPDAlgorithm

    excluded = detect_heavy_commodities(
        cost, points, max_excluded=max_excluded, samples=samples, rng=rng
    )
    algorithm = ThresholdPDAlgorithm(cost.num_commodities, excluded=excluded)
    return algorithm, excluded
