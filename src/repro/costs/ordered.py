"""Ordered linear facility costs in the spirit of Shmoys, Swamy and Levi.

Section 1.2 cites Shmoys et al. (SODA 2004), who achieve a constant offline
approximation when the cost function is *linear* (``f^{a∪b}_m = f^a_m +
f^b_m`` for disjoint ``a, b``) and *ordered* across facility locations: the
locations can be totally ordered so that every commodity is at least as
expensive at a later location as at an earlier one.  This class realizes that
family; it is used by the cost-function ablation experiment.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.costs.base import FacilityCostFunction
from repro.exceptions import InvalidCostFunctionError

__all__ = ["OrderedLinearCost"]


class OrderedLinearCost(FacilityCostFunction):
    """``f^sigma_m = sum_{e in sigma} price[m, e]`` with rows sorted by dominance.

    Parameters
    ----------
    prices:
        Array of shape ``(num_points, num_commodities)``; ``prices[m, e]`` is
        the cost of installing commodity ``e`` at point ``m``.
    enforce_ordered:
        When true (default), verify that the points can be totally ordered by
        dominance (row ``i`` elementwise <= row ``j`` or vice versa for every
        pair); raise otherwise.
    """

    def __init__(self, prices: Sequence[Sequence[float]], *, enforce_ordered: bool = True) -> None:
        price_array = np.asarray(prices, dtype=np.float64)
        if price_array.ndim != 2 or price_array.size == 0:
            raise InvalidCostFunctionError(
                f"prices must have shape (num_points, num_commodities), got {price_array.shape}"
            )
        if np.any(price_array < 0) or not np.all(np.isfinite(price_array)):
            raise InvalidCostFunctionError("prices must be finite and non-negative")
        super().__init__(int(price_array.shape[1]))
        self._prices = np.ascontiguousarray(price_array)
        if enforce_ordered and not self._is_ordered():
            raise InvalidCostFunctionError(
                "prices are not ordered: no total dominance order over the points exists"
            )

    def _is_ordered(self) -> bool:
        # Sort rows by their total price and verify consecutive dominance.
        order = np.argsort(self._prices.sum(axis=1), kind="stable")
        sorted_rows = self._prices[order]
        diffs = np.diff(sorted_rows, axis=0)
        return bool(np.all(diffs >= -1e-12))

    @property
    def num_points(self) -> int:
        return int(self._prices.shape[0])

    @property
    def prices(self) -> np.ndarray:
        view = self._prices.view()
        view.flags.writeable = False
        return view

    def cost(self, point: int, configuration: Iterable[int]) -> float:
        config = self.normalize_configuration(configuration)
        if not config:
            return 0.0
        if not 0 <= point < self._prices.shape[0]:
            raise InvalidCostFunctionError(
                f"point {point} out of range [0, {self._prices.shape[0]})"
            )
        indices = np.fromiter(config, dtype=np.intp)
        return float(self._prices[point, indices].sum())

    def costs_over_points(self, configuration: Iterable[int], points: Sequence[int]) -> np.ndarray:
        config = self.normalize_configuration(configuration)
        if not config:
            return np.zeros(len(points), dtype=np.float64)
        indices = np.fromiter(config, dtype=np.intp)
        point_array = np.asarray(points, dtype=np.intp)
        return self._prices[np.ix_(point_array, indices)].sum(axis=1)
