"""General non-uniform cost functions.

These model the fully general ``f^sigma_m`` of the paper: costs that differ
per point and per commodity, not only through the configuration size.  They
are used by tests (to exercise the algorithms away from the comfortable
count-based case) and by the service-network workload of the examples.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.costs.base import FacilityCostFunction
from repro.exceptions import InvalidCostFunctionError
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["WeightedConcaveCost", "PerPointScaledCost", "TabulatedCost", "random_weighted_concave_cost"]


class WeightedConcaveCost(FacilityCostFunction):
    """``f^sigma_m = point_scale[m] * h(sum_{e in sigma} w_e)`` with ``h`` concave.

    Each commodity ``e`` has a weight ``w_e > 0`` (its "size"); the cost of a
    configuration is a concave transform ``h`` of the total weight, scaled per
    point.  Concavity of ``h`` with ``h(0) = 0`` implies subadditivity.
    Condition 1 holds when the weights are uniform; for skewed weights it may
    fail, which is exactly the "heavy commodity" regime discussed in the
    paper's closing remarks — use :func:`repro.costs.conditions.check_condition_one`
    to verify before feeding such a function to the algorithms whose analysis
    needs it.

    Parameters
    ----------
    weights:
        Positive weight per commodity; its length defines ``|S|``.
    transform:
        Concave, non-decreasing callable with ``transform(0) = 0``; default is
        the square root.
    point_scales:
        Optional per-point multipliers.
    """

    def __init__(
        self,
        weights: Sequence[float],
        *,
        transform: Callable[[float], float] = math.sqrt,
        point_scales: Optional[Sequence[float]] = None,
        name: Optional[str] = None,
    ) -> None:
        weight_array = np.asarray(weights, dtype=np.float64)
        if weight_array.ndim != 1 or weight_array.size == 0:
            raise InvalidCostFunctionError("weights must be a non-empty 1-D sequence")
        if np.any(weight_array <= 0) or not np.all(np.isfinite(weight_array)):
            raise InvalidCostFunctionError("commodity weights must be positive and finite")
        super().__init__(int(weight_array.size))
        self._weights = weight_array
        self._transform = transform
        if abs(float(transform(0.0))) > 1e-12:
            raise InvalidCostFunctionError("transform(0) must be 0")
        if point_scales is not None:
            scales = np.asarray(point_scales, dtype=np.float64)
            if np.any(scales < 0) or not np.all(np.isfinite(scales)):
                raise InvalidCostFunctionError("point_scales must be finite and non-negative")
            self._scales: Optional[np.ndarray] = scales
        else:
            self._scales = None
        self._name = name or "WeightedConcaveCost"

    @property
    def name(self) -> str:
        return self._name

    @property
    def weights(self) -> np.ndarray:
        view = self._weights.view()
        view.flags.writeable = False
        return view

    def point_scale(self, point: int) -> float:
        if self._scales is None:
            return 1.0
        if not 0 <= point < self._scales.size:
            raise InvalidCostFunctionError(
                f"point {point} out of range [0, {self._scales.size})"
            )
        return float(self._scales[point])

    def cost(self, point: int, configuration: Iterable[int]) -> float:
        config = self.normalize_configuration(configuration)
        if not config:
            return 0.0
        total_weight = float(self._weights[np.fromiter(config, dtype=np.intp)].sum())
        return self.point_scale(point) * float(self._transform(total_weight))

    def costs_over_points(self, configuration: Iterable[int], points: Sequence[int]) -> np.ndarray:
        config = self.normalize_configuration(configuration)
        if not config:
            return np.zeros(len(points), dtype=np.float64)
        total_weight = float(self._weights[np.fromiter(config, dtype=np.intp)].sum())
        base = float(self._transform(total_weight))
        if self._scales is None:
            return np.full(len(points), base, dtype=np.float64)
        return self._scales[np.asarray(points, dtype=np.intp)] * base


class PerPointScaledCost(FacilityCostFunction):
    """Wrap any cost function with per-point multiplicative scales.

    ``f^sigma_m = scales[m] * base.cost(0, sigma)`` — the base function is
    evaluated at a fixed reference point, so wrap only point-uniform bases.
    """

    def __init__(self, base: FacilityCostFunction, scales: Sequence[float]) -> None:
        super().__init__(base.num_commodities)
        scale_array = np.asarray(scales, dtype=np.float64)
        if scale_array.ndim != 1 or scale_array.size == 0:
            raise InvalidCostFunctionError("scales must be a non-empty 1-D sequence")
        if np.any(scale_array < 0) or not np.all(np.isfinite(scale_array)):
            raise InvalidCostFunctionError("scales must be finite and non-negative")
        self._base = base
        self._scales = scale_array

    @property
    def base(self) -> FacilityCostFunction:
        return self._base

    def cost(self, point: int, configuration: Iterable[int]) -> float:
        if not 0 <= point < self._scales.size:
            raise InvalidCostFunctionError(
                f"point {point} out of range [0, {self._scales.size})"
            )
        return float(self._scales[point]) * self._base.cost(0, configuration)

    def costs_over_points(self, configuration: Iterable[int], points: Sequence[int]) -> np.ndarray:
        base_value = self._base.cost(0, configuration)
        return self._scales[np.asarray(points, dtype=np.intp)] * base_value


class TabulatedCost(FacilityCostFunction):
    """Explicitly tabulated costs for a (small) set of configurations.

    Intended for hand-built regression tests and the brute-force offline
    solver on tiny instances; configurations not present in the table fall
    back to the cheapest *cover* by tabulated configurations (which keeps the
    function subadditive by construction) or raise when no cover exists.
    """

    def __init__(
        self,
        num_commodities: int,
        table: Mapping[Tuple[int, FrozenSet[int]], float],
        *,
        strict: bool = False,
    ) -> None:
        super().__init__(num_commodities)
        self._table: Dict[Tuple[int, FrozenSet[int]], float] = {}
        for (point, config), value in table.items():
            frozen = self.normalize_configuration(config)
            if value < 0 or not math.isfinite(value):
                raise InvalidCostFunctionError(
                    f"tabulated cost for point {point}, configuration {sorted(frozen)} "
                    f"must be finite and non-negative, got {value}"
                )
            self._table[(int(point), frozen)] = float(value)
        self._strict = bool(strict)

    def cost(self, point: int, configuration: Iterable[int]) -> float:
        config = self.normalize_configuration(configuration)
        if not config:
            return 0.0
        direct = self._table.get((point, config))
        if direct is not None:
            return direct
        if self._strict:
            raise InvalidCostFunctionError(
                f"no tabulated cost for point {point} and configuration {sorted(config)}"
            )
        return self._cheapest_cover(point, config)

    def _cheapest_cover(self, point: int, config: FrozenSet[int]) -> float:
        """Greedy cover of ``config`` by tabulated configurations at ``point``."""
        available = {
            entry_config: value
            for (entry_point, entry_config), value in self._table.items()
            if entry_point == point and entry_config & config
        }
        if not available:
            raise InvalidCostFunctionError(
                f"configuration {sorted(config)} cannot be covered at point {point}"
            )
        remaining = set(config)
        total = 0.0
        while remaining:
            best_config, best_ratio = None, math.inf
            for entry_config, value in available.items():
                gain = len(entry_config & remaining)
                if gain == 0:
                    continue
                ratio = value / gain
                if ratio < best_ratio:
                    best_ratio, best_config = ratio, entry_config
            if best_config is None:
                raise InvalidCostFunctionError(
                    f"configuration {sorted(config)} cannot be covered at point {point}"
                )
            total += available[best_config]
            remaining -= best_config
        return total


def random_weighted_concave_cost(
    num_commodities: int,
    num_points: int,
    *,
    weight_spread: float = 1.0,
    scale_spread: float = 1.0,
    rng: RandomState = None,
) -> WeightedConcaveCost:
    """Random :class:`WeightedConcaveCost` for tests and experiments.

    ``weight_spread = 0`` yields uniform commodity weights (so Condition 1
    holds); larger spreads produce increasingly heterogeneous commodities.
    """
    if weight_spread < 0 or scale_spread < 0:
        raise InvalidCostFunctionError("spreads must be non-negative")
    generator = ensure_rng(rng)
    weights = 1.0 + weight_spread * generator.uniform(0.0, 1.0, size=num_commodities)
    scales = 1.0 + scale_spread * generator.uniform(0.0, 1.0, size=num_points)
    return WeightedConcaveCost(weights, point_scales=scales)
