"""Cost functions that depend only on the number of offered commodities.

Section 1.1 of the paper notes that a cost function depending only on
``|sigma|`` together with subadditivity implies Condition 1; Section 3.3
studies the concrete family ``C = {g_x(|sigma|) = |sigma|^{x/2} : x in [0,2]}``
and Section 2 uses ``g(|sigma|) = ceil(|sigma| / sqrt(|S|))`` for the lower
bound.  All of these are instances of :class:`CountBasedCost`, optionally
scaled per point to model non-uniform opening costs.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.costs.base import FacilityCostFunction
from repro.exceptions import InvalidCostFunctionError
from repro.utils.maths import ceil_div

__all__ = [
    "CountBasedCost",
    "PowerCost",
    "LinearCost",
    "ConstantCost",
    "AdversaryCost",
]


class CountBasedCost(FacilityCostFunction):
    """``f^sigma_m = point_scale[m] * shape(|sigma|)``.

    Parameters
    ----------
    num_commodities:
        Size of the commodity universe ``|S|``.
    shape:
        Callable mapping a configuration size ``k >= 0`` to a non-negative
        cost.  ``shape(0)`` must be 0.
    point_scales:
        Optional per-point multiplier (length = number of metric points);
        ``None`` means a uniform multiplier of 1 for every point, in which
        case any point index is accepted.
    name:
        Optional human-readable name used in experiment tables.
    """

    def __init__(
        self,
        num_commodities: int,
        shape: Callable[[int], float],
        *,
        point_scales: Optional[Sequence[float]] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(num_commodities)
        self._shape = shape
        if abs(float(shape(0))) > 1e-12:
            raise InvalidCostFunctionError("shape(0) must be 0 (empty facilities are free)")
        if point_scales is not None:
            scales = np.asarray(point_scales, dtype=np.float64)
            if scales.ndim != 1 or scales.size == 0:
                raise InvalidCostFunctionError("point_scales must be a non-empty 1-D sequence")
            if np.any(scales < 0) or not np.all(np.isfinite(scales)):
                raise InvalidCostFunctionError("point_scales must be finite and non-negative")
            self._scales: Optional[np.ndarray] = scales
        else:
            self._scales = None
        self._name = name or type(self).__name__
        # Precompute the shape table once: configuration sizes are bounded by
        # |S| and the algorithms evaluate the same sizes over and over.
        self._shape_table = np.array(
            [float(shape(k)) for k in range(num_commodities + 1)], dtype=np.float64
        )
        if np.any(self._shape_table < 0) or not np.all(np.isfinite(self._shape_table)):
            raise InvalidCostFunctionError("shape(k) must be finite and non-negative")

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    def point_scale(self, point: int) -> float:
        if self._scales is None:
            return 1.0
        if not 0 <= point < self._scales.size:
            raise InvalidCostFunctionError(
                f"point {point} out of range [0, {self._scales.size}) for {self._name}"
            )
        return float(self._scales[point])

    def shape_value(self, size: int) -> float:
        """``shape(size)`` from the precomputed table."""
        if not 0 <= size <= self.num_commodities:
            raise InvalidCostFunctionError(
                f"configuration size {size} out of range [0, {self.num_commodities}]"
            )
        return float(self._shape_table[size])

    def cost(self, point: int, configuration: Iterable[int]) -> float:
        config = self.normalize_configuration(configuration)
        return self.point_scale(point) * self.shape_value(len(config))

    def costs_over_points(self, configuration: Iterable[int], points: Sequence[int]) -> np.ndarray:
        config = self.normalize_configuration(configuration)
        shape_value = self.shape_value(len(config))
        if self._scales is None:
            return np.full(len(points), shape_value, dtype=np.float64)
        point_array = np.asarray(points, dtype=np.intp)
        return self._scales[point_array] * shape_value

    def is_uniform_over_points(self) -> bool:
        """True when every point has the same opening cost for every configuration."""
        return self._scales is None or bool(np.all(self._scales == self._scales[0]))


class PowerCost(CountBasedCost):
    """The class ``C`` of Section 3.3: ``g_x(|sigma|) = scale * |sigma|^{x/2}``.

    ``x = 0`` is the constant function, ``x = 1`` the square root and
    ``x = 2`` the linear function.  Theorem 18 gives the competitive ratio of
    PD-OMFLP as ``O(sqrt(|S|)^{(2x - x^2)/2} log n)`` for this class.
    """

    def __init__(
        self,
        num_commodities: int,
        exponent_x: float,
        *,
        scale: float = 1.0,
        point_scales: Optional[Sequence[float]] = None,
    ) -> None:
        if not 0.0 <= exponent_x <= 2.0:
            raise InvalidCostFunctionError(
                f"the class C is defined for x in [0, 2], got x = {exponent_x}"
            )
        if scale <= 0:
            raise InvalidCostFunctionError(f"scale must be positive, got {scale}")
        self.exponent_x = float(exponent_x)
        self.scale = float(scale)
        super().__init__(
            num_commodities,
            lambda k: 0.0 if k == 0 else scale * float(k) ** (exponent_x / 2.0),
            point_scales=point_scales,
            name=f"PowerCost(x={exponent_x:g})",
        )

    def predicted_upper_exponent(self) -> float:
        """Exponent of ``sqrt(|S|)`` in the Theorem-18 upper bound: ``(2x - x^2)/2``."""
        x = self.exponent_x
        return (2.0 * x - x * x) / 2.0

    def predicted_lower_exponent(self) -> float:
        """Exponent of ``sqrt(|S|)`` in the Theorem-18 lower bound: ``min{(2-x)/2, x/2}``."""
        x = self.exponent_x
        return min((2.0 - x) / 2.0, x / 2.0)

    def tuned_threshold(self) -> float:
        """Optimal small/large switch-over ``a = sqrt(|S|)^x`` from Section 3.3.1."""
        return float(math.sqrt(self.num_commodities) ** self.exponent_x)


class LinearCost(CountBasedCost):
    """Linear costs ``f^sigma_m = scale * |sigma|`` (``x = 2`` in the class C).

    With linear costs combining commodities in one facility yields no saving,
    so prediction is useless and the problem decomposes per commodity (the
    O(log n) regime of Theorem 18).
    """

    def __init__(
        self,
        num_commodities: int,
        *,
        scale: float = 1.0,
        point_scales: Optional[Sequence[float]] = None,
    ) -> None:
        if scale <= 0:
            raise InvalidCostFunctionError(f"scale must be positive, got {scale}")
        self.scale = float(scale)
        super().__init__(
            num_commodities,
            lambda k: scale * float(k),
            point_scales=point_scales,
            name="LinearCost",
        )


class ConstantCost(CountBasedCost):
    """``f^sigma_m = scale`` for every non-empty configuration (``x = 0``).

    Opening one commodity is as expensive as opening all of them, so there is
    never a reason to distinguish small and large facilities; this is the
    classical online facility location regime.
    """

    def __init__(
        self,
        num_commodities: int,
        *,
        scale: float = 1.0,
        point_scales: Optional[Sequence[float]] = None,
    ) -> None:
        if scale <= 0:
            raise InvalidCostFunctionError(f"scale must be positive, got {scale}")
        self.scale = float(scale)
        super().__init__(
            num_commodities,
            lambda k: 0.0 if k == 0 else scale,
            point_scales=point_scales,
            name="ConstantCost",
        )


class AdversaryCost(CountBasedCost):
    """The Theorem-2 lower-bound cost ``g(|sigma|) = ceil(|sigma| / sqrt(|S|))``.

    The paper assumes ``sqrt(|S|)`` is an integer; for general ``|S|`` we use
    ``floor(sqrt(|S|))`` as the denominator, which preserves the two facts the
    proof uses: a facility covering the planted ``sqrt(|S|)``-sized set costs
    ``1``, and covering ``T`` commodities costs at least ``T / sqrt(|S|)``.
    """

    def __init__(
        self,
        num_commodities: int,
        *,
        scale: float = 1.0,
        point_scales: Optional[Sequence[float]] = None,
    ) -> None:
        if scale <= 0:
            raise InvalidCostFunctionError(f"scale must be positive, got {scale}")
        self.scale = float(scale)
        self.sqrt_block = max(int(math.isqrt(num_commodities)), 1)
        super().__init__(
            num_commodities,
            lambda k: 0.0 if k == 0 else scale * float(ceil_div(int(k), self.sqrt_block)),
            point_scales=point_scales,
            name="AdversaryCost",
        )
