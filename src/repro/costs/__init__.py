"""Facility construction cost functions ``f^sigma_m``.

Section 1.1 of the paper defines, for every point ``m`` of the metric space
and every configuration ``sigma ⊆ S`` of commodities, a construction cost
``f^sigma_m``.  The analysis relies on two structural properties:

* **subadditivity** — ``f^{a∪b}_m ≤ f^a_m + f^b_m`` (always assumable, see
  the discussion in Section 1.1), and
* **Condition 1** — ``f^sigma_m / |sigma| ≥ f^S_m / |S|`` (the per-commodity
  cost is minimized by the full configuration), which is what makes the
  small/large facility dichotomy of both algorithms work.

This subpackage provides the cost families used throughout the paper and its
experiments:

* :class:`~repro.costs.count_based.CountBasedCost` and its concrete factories
  (:class:`PowerCost` for the class ``C = {g_x(k) = k^{x/2}}`` of Section 3.3,
  :class:`LinearCost`, :class:`ConstantCost`,
  :class:`~repro.costs.count_based.AdversaryCost` for Theorem 2's
  ``⌈|σ|/√|S|⌉``),
* general non-uniform costs (:class:`~repro.costs.general.WeightedConcaveCost`,
  :class:`~repro.costs.general.PerPointScaledCost`,
  :class:`~repro.costs.general.TabulatedCost`),
* structured families from the related offline work
  (:class:`~repro.costs.hierarchical.HierarchicalCost`,
  :class:`~repro.costs.ordered.OrderedLinearCost`),
* the power-of-two cost classes used by RAND-OMFLP
  (:class:`~repro.costs.classes.CostClassIndex`), and
* property checkers (:func:`~repro.costs.conditions.check_subadditivity`,
  :func:`~repro.costs.conditions.check_condition_one`).
"""

from repro.costs.base import FacilityCostFunction
from repro.costs.classes import CostClass, CostClassIndex
from repro.costs.conditions import (
    check_condition_one,
    check_monotonicity,
    check_subadditivity,
)
from repro.costs.count_based import (
    AdversaryCost,
    ConstantCost,
    CountBasedCost,
    LinearCost,
    PowerCost,
)
from repro.costs.general import PerPointScaledCost, TabulatedCost, WeightedConcaveCost
from repro.costs.heavy import detect_heavy_commodities, heavy_aware_pd
from repro.costs.hierarchical import HierarchicalCost
from repro.costs.ordered import OrderedLinearCost

__all__ = [
    "FacilityCostFunction",
    "CountBasedCost",
    "PowerCost",
    "LinearCost",
    "ConstantCost",
    "AdversaryCost",
    "WeightedConcaveCost",
    "PerPointScaledCost",
    "TabulatedCost",
    "HierarchicalCost",
    "OrderedLinearCost",
    "CostClass",
    "CostClassIndex",
    "check_subadditivity",
    "check_condition_one",
    "check_monotonicity",
    "detect_heavy_commodities",
    "heavy_aware_pd",
]
