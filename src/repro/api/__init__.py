"""The unified facade of the OMFLP reproduction.

This subpackage is the canonical way to construct and run anything in the
library:

* **Registries** (:mod:`repro.api.components`) — string-keyed factories for
  metrics, cost functions, workloads, online algorithms and offline solvers,
  so that scenarios are describable as plain dicts/JSON.
* **Declarative runs** (:mod:`repro.api.spec`, :mod:`repro.api.run`) — a
  :class:`RunSpec` names every component; :func:`run` executes it and
  :func:`run_many` / :func:`run_grid` scatter batches over the process pool.
  All runs return a unified :class:`RunRecord`.
* **Streaming sessions** (:mod:`repro.api.session`) — :class:`OnlineSession`
  feeds requests to an online algorithm one at a time (unknown-length
  streams, the paper's true online model) with O(1) incremental cost
  accounting per request.  Sessions are durable: ``snapshot()`` captures a
  restorable JSON codec form and ``OnlineSession.restore`` continues the
  stream bit-identically; :mod:`repro.service` hosts many named sessions
  behind the ``repro serve`` wire protocol.

Quickstart
----------
>>> from repro.api import RunSpec, run
>>> record = run(RunSpec.from_dict({
...     "algorithm": "pd-omflp",
...     "metric": {"kind": "uniform-line", "num_points": 8},
...     "cost": {"kind": "power", "num_commodities": 4, "exponent_x": 1.0},
...     "requests": [[1, [0, 1]], [6, [2]], [2, [0, 3]]],
... }))
>>> record.total_cost > 0
True
"""

from repro.api.components import ALGORITHMS, COSTS, METRICS, SOLVERS, WORKLOADS
from repro.api.record import RunRecord, records_to_csv
from repro.api.registry import Registry
from repro.api.run import run, run_grid, run_many
from repro.api.session import AssignmentEvent, OnlineSession
from repro.api.spec import ComponentSpec, RunSpec

__all__ = [
    "Registry",
    "METRICS",
    "COSTS",
    "WORKLOADS",
    "ALGORITHMS",
    "SOLVERS",
    "ComponentSpec",
    "RunSpec",
    "RunRecord",
    "records_to_csv",
    "run",
    "run_many",
    "run_grid",
    "AssignmentEvent",
    "OnlineSession",
]
