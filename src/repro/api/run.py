"""Unified run entry points: one spec in, one :class:`RunRecord` out.

:func:`run` executes a single :class:`~repro.api.spec.RunSpec` (or its dict
form); :func:`run_many` scatters a batch of specs over the process pool of
:mod:`repro.parallel.pool`; :func:`run_grid` expands a
:class:`~repro.analysis.sweep.ParameterGrid` against a base spec, using dotted
keys (``"workload.num_requests"``, ``"cost.exponent_x"``, ``"seed"``) to
target nested component parameters.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.algorithms.base import run_online
from repro.api.record import RunRecord
from repro.api.spec import RunSpec
from repro.exceptions import ExperimentError
from repro.parallel.pool import ParallelConfig, parallel_map
from repro.utils.rng import ensure_rng

__all__ = ["run", "run_many", "run_grid"]

SpecLike = Union[RunSpec, Mapping[str, Any]]


def _coerce_spec(spec: SpecLike) -> RunSpec:
    if isinstance(spec, RunSpec):
        return spec
    if isinstance(spec, Mapping):
        return RunSpec.from_dict(spec)
    raise ExperimentError(
        f"run() takes a RunSpec or its dictionary form, got {type(spec).__name__}"
    )


def run(spec: SpecLike) -> RunRecord:
    """Execute one run described by ``spec``.

    The spec's ``algorithm`` key decides the mode: online algorithm names run
    through the streaming online loop, offline solver names call ``solve`` on
    the materialized instance.  The originating spec (when declarative) is
    recorded on the result for provenance.
    """
    spec = _coerce_spec(spec)
    if spec.scenario is not None:
        # Scenario specs stream: online runs feed an OnlineSession in
        # bounded-memory batches (never materializing the instance), offline
        # runs realize the bit-identical eager form.  Imported lazily to keep
        # plain runs free of the scenario stack.
        from repro.scenarios.run import run_spec_streamed

        return run_spec_streamed(spec)
    generator = ensure_rng(spec.seed)
    instance = spec.build_instance(generator)
    component = spec.build_algorithm()
    spec_dict = spec.to_dict() if spec.is_declarative() else None
    if spec.mode() == "online":
        result = run_online(
            component, instance, rng=generator, trace=spec.trace, validate=spec.validate
        )
        return RunRecord.from_online_result(
            result, num_requests=instance.num_requests, seed=spec.seed, spec=spec_dict
        )
    result = component.solve(instance)
    return RunRecord.from_offline_result(
        result, num_requests=instance.num_requests, seed=spec.seed, spec=spec_dict
    )


def run_many(
    specs: Iterable[SpecLike],
    *,
    workers: Optional[int] = 1,
    chunk_size: Optional[int] = None,
) -> List[RunRecord]:
    """Execute many specs, optionally scattered over a process pool.

    With ``workers > 1`` the specs must be declarative (plain data crosses
    process boundaries; live algorithm or metric objects may not pickle).
    Results come back in input order regardless of scheduling.
    """
    spec_list = [_coerce_spec(spec) for spec in specs]
    return parallel_map(
        run, spec_list, config=ParallelConfig(workers=workers, chunk_size=chunk_size)
    )


def _set_dotted(data: Dict[str, Any], key: str, value: Any) -> None:
    """Set ``"a.b.c"`` in nested dicts, creating intermediate levels."""
    parts = key.split(".")
    target = data
    for part in parts[:-1]:
        node = target.setdefault(part, {})
        if not isinstance(node, dict):
            raise ExperimentError(
                f"grid key {key!r} descends into non-mapping spec entry {part!r}"
            )
        target = node
    target[parts[-1]] = value


def run_grid(
    base: SpecLike,
    grid: "Iterable[Mapping[str, Any]]",
    *,
    workers: Optional[int] = 1,
    chunk_size: Optional[int] = None,
) -> List[RunRecord]:
    """Run ``base`` once per grid point, overriding spec entries per point.

    ``grid`` is any iterable of parameter dictionaries — typically a
    :class:`~repro.analysis.sweep.ParameterGrid`.  Keys address spec entries,
    with dots descending into component specs::

        run_grid(
            {"algorithm": "pd-omflp",
             "workload": {"kind": "uniform", "num_requests": 30, "num_commodities": 8}},
            ParameterGrid({"workload.num_commodities": [4, 8, 16], "seed": [0, 1]}),
        )

    The base spec must be declarative (grid overrides rewrite its dict form).
    """
    base_dict = _coerce_spec(base).to_dict()
    specs: List[RunSpec] = []
    for point in grid:
        spec_dict = copy.deepcopy(base_dict)
        for key, value in point.items():
            _set_dotted(spec_dict, key, value)
        specs.append(RunSpec.from_dict(spec_dict))
    return run_many(specs, workers=workers, chunk_size=chunk_size)
