"""The stock component registries of the library.

Five registries index everything a :class:`~repro.api.spec.RunSpec` can name:

* :data:`METRICS` — metric-space factories (``"uniform-line"``,
  ``"random-euclidean"``, ``"explicit"``, ...);
* :data:`COSTS` — facility cost-function families (``"power"``,
  ``"linear"``, ``"weighted-concave"``, ...);
* :data:`WORKLOADS` — synthetic instance generators (``"uniform"``,
  ``"clustered"``, ``"zipf"``, ``"service-network"``);
* :data:`ALGORITHMS` — the online algorithms of the paper and its baselines;
* :data:`SOLVERS` — the offline reference solvers.

Third-party code can extend any of them with the decorator form::

    from repro.api import ALGORITHMS

    @ALGORITHMS.register("my-heuristic")
    def _build(**params):
        return MyHeuristic(**params)

The cost keys deliberately match the ``kind`` strings of
:mod:`repro.core.serialization` (``"power"``, ``"linear"``, ``"constant"``,
``"adversary"``) so that a serialized instance's cost block doubles as a valid
``RunSpec`` cost spec.
"""

from __future__ import annotations

from repro.algorithms.offline.brute_force import BruteForceSolver
from repro.algorithms.offline.greedy import GreedyOfflineSolver
from repro.algorithms.offline.local_search import LocalSearchSolver
from repro.algorithms.offline.planted import PlantedSolver
from repro.algorithms.online.always_large import AlwaysLargeGreedy
from repro.algorithms.online.fotakis_ofl import FotakisOFLAlgorithm
from repro.algorithms.online.meyerson_ofl import MeyersonOFLAlgorithm
from repro.algorithms.online.no_prediction import NoPredictionGreedy
from repro.algorithms.online.pd_omflp import PDOMFLPAlgorithm
from repro.algorithms.online.per_commodity import PerCommodityAlgorithm
from repro.algorithms.online.rand_omflp import RandOMFLPAlgorithm
from repro.algorithms.online.threshold import ThresholdPDAlgorithm
from repro.api.registry import Registry
from repro.costs.count_based import AdversaryCost, ConstantCost, LinearCost, PowerCost
from repro.costs.general import PerPointScaledCost, TabulatedCost, WeightedConcaveCost
from repro.costs.ordered import OrderedLinearCost
from repro.metric.factories import (
    random_euclidean_metric,
    random_graph_metric,
    random_grid_metric,
    random_line_metric,
    random_tree_metric,
    uniform_line_metric,
)
from repro.metric.matrix import ExplicitMetric
from repro.metric.single_point import SinglePointMetric
from repro.workloads.clustered import clustered_workload
from repro.workloads.service_network import service_network_workload
from repro.workloads.uniform import uniform_workload
from repro.workloads.zipf import zipf_workload

__all__ = ["METRICS", "COSTS", "WORKLOADS", "ALGORITHMS", "SOLVERS"]


# ----------------------------------------------------------------------
# Metric spaces
# ----------------------------------------------------------------------
METRICS = Registry("metric")
METRICS.add("uniform-line", uniform_line_metric)
METRICS.add("random-line", random_line_metric)
METRICS.add("random-euclidean", random_euclidean_metric)
METRICS.add("random-grid", random_grid_metric)
METRICS.add("random-graph", random_graph_metric)
METRICS.add("random-tree", random_tree_metric)
METRICS.add("explicit", ExplicitMetric)
METRICS.add("single-point", SinglePointMetric)


# ----------------------------------------------------------------------
# Facility cost functions
# ----------------------------------------------------------------------
COSTS = Registry("cost")
COSTS.add("power", PowerCost)
COSTS.add("linear", LinearCost)
COSTS.add("constant", ConstantCost)
COSTS.add("adversary", AdversaryCost)
COSTS.add("weighted-concave", WeightedConcaveCost)
COSTS.add("tabulated", TabulatedCost)
COSTS.add("ordered-linear", OrderedLinearCost)
COSTS.add("per-point-scaled", PerPointScaledCost)


# ----------------------------------------------------------------------
# Workload generators (each returns a GeneratedWorkload)
# ----------------------------------------------------------------------
# Strict parameters: a typo'd keyword in a declarative workload spec raises
# ReproError naming the offending key (instead of a generator-internal
# TypeError); the scenario registry (repro.scenarios) does the same.
WORKLOADS = Registry("workload", strict_params=True)
WORKLOADS.add("uniform", uniform_workload)
WORKLOADS.add("clustered", clustered_workload)
WORKLOADS.add("zipf", zipf_workload)
WORKLOADS.add("service-network", service_network_workload)


# ----------------------------------------------------------------------
# Online algorithms — keys equal each algorithm's ``name`` attribute so
# that result rows and spec keys agree.
# ----------------------------------------------------------------------
ALGORITHMS = Registry("online algorithm")
ALGORITHMS.add("pd-omflp", PDOMFLPAlgorithm)
ALGORITHMS.add("rand-omflp", RandOMFLPAlgorithm)
ALGORITHMS.add("threshold-pd", ThresholdPDAlgorithm)
ALGORITHMS.add("fotakis-ofl", FotakisOFLAlgorithm)
ALGORITHMS.add("meyerson-ofl", MeyersonOFLAlgorithm)
ALGORITHMS.add("per-commodity-fotakis", lambda: PerCommodityAlgorithm("fotakis"))
ALGORITHMS.add("per-commodity-meyerson", lambda: PerCommodityAlgorithm("meyerson"))
ALGORITHMS.add("no-prediction-greedy", NoPredictionGreedy)
ALGORITHMS.add("always-large-greedy", AlwaysLargeGreedy)


# ----------------------------------------------------------------------
# Offline solvers
# ----------------------------------------------------------------------
SOLVERS = Registry("offline solver")
SOLVERS.add("brute-force", BruteForceSolver)
SOLVERS.add("greedy", GreedyOfflineSolver)
SOLVERS.add("local-search", LocalSearchSolver)
SOLVERS.add("planted", PlantedSolver)
