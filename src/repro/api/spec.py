"""Declarative run specifications.

A :class:`RunSpec` describes one run — online algorithm or offline solve —
as plain data: every component is named by its registry key plus keyword
parameters, so a complete scenario fits in a JSON file::

    {
        "algorithm": "pd-omflp",
        "metric": {"kind": "uniform-line", "num_points": 8},
        "cost": {"kind": "power", "num_commodities": 4, "exponent_x": 1.0},
        "requests": [[1, [0, 1]], [6, [2]], [2, [0, 3]]],
        "seed": 0
    }

and runs end to end through :func:`repro.api.run.run` without importing a
single ``repro`` class.  Alternatively a ``workload`` spec generates the whole
instance::

    {"algorithm": "rand-omflp",
     "workload": {"kind": "uniform", "num_requests": 50, "num_commodities": 8},
     "seed": 7}

For interactive use, live objects (an already-built metric, cost function or
algorithm) are accepted in place of declarative specs; such a ``RunSpec``
still runs but no longer serializes (``to_dict`` raises).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.algorithms.base import OfflineSolver, OnlineAlgorithm
from repro.api.components import ALGORITHMS, COSTS, METRICS, SOLVERS, WORKLOADS
from repro.api.registry import Registry, did_you_mean
from repro.core.instance import Instance
from repro.core.requests import RequestSequence
from repro.costs.base import FacilityCostFunction
from repro.exceptions import ExperimentError, UnknownComponentError
from repro.metric.base import MetricSpace
from repro.utils.rng import ensure_rng
from repro.workloads.base import GeneratedWorkload

__all__ = ["RunSpec", "ComponentSpec"]

#: A component reference: a registry key, a ``{"kind": key, **params}``
#: mapping, or a live object.
ComponentSpec = Union[str, Mapping[str, Any], object]


def _normalize(spec: ComponentSpec, label: str) -> ComponentSpec:
    """Canonicalize a declarative component spec to a ``{"kind": ...}`` dict."""
    if isinstance(spec, str):
        return {"kind": spec}
    if isinstance(spec, Mapping):
        if "kind" not in spec:
            raise ExperimentError(f"{label} spec mappings need a 'kind' key, got {dict(spec)!r}")
        return {str(key): value for key, value in spec.items()}
    return spec  # a live object, used as-is


def _is_declarative(spec: Optional[ComponentSpec]) -> bool:
    return spec is None or isinstance(spec, dict)


def _build_component(spec: ComponentSpec, registry: Registry, rng) -> Any:
    """Instantiate a component from its normalized spec (or pass objects through)."""
    if not isinstance(spec, dict):
        return spec
    params = {key: value for key, value in spec.items() if key != "kind"}
    kind = spec["kind"]
    if rng is not None and "rng" not in params and registry.accepts(kind, "rng"):
        params["rng"] = rng
    return registry.build(kind, **params)


@dataclass
class RunSpec:
    """A declarative description of one run.

    Attributes
    ----------
    algorithm:
        Registry key (with optional params) of an online algorithm
        (:data:`~repro.api.components.ALGORITHMS`) or an offline solver
        (:data:`~repro.api.components.SOLVERS`); which registry matches
        decides whether the run is online or offline.
    metric, cost, requests:
        Explicit instance ingredients; ``requests`` is a list of
        ``(point, commodities)`` pairs in arrival order.
    workload:
        Alternatively, a workload generator spec that produces the whole
        instance (mutually exclusive with ``metric``/``cost``/``requests``).
    scenario:
        Alternatively, a (possibly nested) streaming scenario spec resolved
        through :data:`repro.scenarios.SCENARIOS` (mutually exclusive with
        ``workload`` and with explicit ``metric``/``cost``/``requests``).
        Online runs stream it through an
        :class:`~repro.api.session.OnlineSession` in bounded-memory batches;
        offline runs realize it eagerly (bit-identical by construction).
        The four legacy workload kinds are also registered as scenarios, so
        ``{"scenario": {"kind": "uniform", ...}}`` keeps working.
    seed:
        Seed for workload generation and randomized algorithms.
    trace:
        Record structured trace events during online runs.
    validate:
        Validate final-solution feasibility.
    name:
        Instance name override used in result rows.
    """

    algorithm: ComponentSpec
    metric: Optional[ComponentSpec] = None
    cost: Optional[ComponentSpec] = None
    requests: Optional[Sequence[Tuple[int, Sequence[int]]]] = None
    workload: Optional[ComponentSpec] = None
    scenario: Optional[ComponentSpec] = None
    seed: Optional[int] = None
    trace: bool = False
    validate: bool = True
    name: Optional[str] = None

    def __post_init__(self) -> None:
        self.algorithm = _normalize(self.algorithm, "algorithm")
        if self.metric is not None:
            self.metric = _normalize(self.metric, "metric")
        if self.cost is not None:
            self.cost = _normalize(self.cost, "cost")
        if self.workload is not None:
            self.workload = _normalize(self.workload, "workload")
        if self.scenario is not None:
            self.scenario = _normalize(self.scenario, "scenario")
        if self.requests is not None:
            self.requests = [
                (int(point), tuple(sorted(int(e) for e in commodities)))
                for point, commodities in self.requests
            ]
        sources = [
            label
            for label, value in (("workload", self.workload), ("scenario", self.scenario))
            if value is not None
        ]
        if len(sources) > 1:
            raise ExperimentError(
                "a RunSpec takes either a workload or a scenario, not both"
            )
        if sources:
            if self.metric is not None or self.cost is not None or self.requests is not None:
                raise ExperimentError(
                    f"a RunSpec takes either a {sources[0]} or explicit "
                    "metric/cost/requests, not both"
                )
        else:
            missing = [
                label
                for label, value in (
                    ("metric", self.metric),
                    ("cost", self.cost),
                    ("requests", self.requests),
                )
                if value is None
            ]
            if missing:
                raise ExperimentError(
                    "a RunSpec without a workload needs explicit metric, cost and "
                    f"requests; missing: {', '.join(missing)}"
                )
        if self.seed is not None:
            self.seed = int(self.seed)

    # ------------------------------------------------------------------
    # Dict round-tripping
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Build a spec from its dictionary form (inverse of :meth:`to_dict`)."""
        known = {
            "algorithm",
            "metric",
            "cost",
            "requests",
            "workload",
            "scenario",
            "seed",
            "trace",
            "validate",
            "name",
        }
        unknown = set(data) - known
        if unknown:
            raise ExperimentError(
                f"unknown RunSpec keys {sorted(unknown)}; known: {sorted(known)}"
            )
        if "algorithm" not in data:
            raise ExperimentError("a RunSpec dictionary needs an 'algorithm' key")
        return cls(**{key: data[key] for key in known if key in data})

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible dictionary form (inverse of :meth:`from_dict`).

        Raises :class:`~repro.exceptions.ExperimentError` when the spec holds
        live objects instead of declarative component specs.
        """
        for label, value in (
            ("algorithm", self.algorithm),
            ("metric", self.metric),
            ("cost", self.cost),
            ("workload", self.workload),
            ("scenario", self.scenario),
        ):
            if not _is_declarative(value):
                raise ExperimentError(
                    f"RunSpec.{label} holds a live {type(value).__name__} object; "
                    "only declarative specs serialize to dictionaries"
                )
        data: Dict[str, Any] = {"algorithm": dict(self.algorithm)}
        if self.workload is not None:
            data["workload"] = dict(self.workload)
        elif self.scenario is not None:
            data["scenario"] = copy.deepcopy(dict(self.scenario))
        else:
            data["metric"] = dict(self.metric)
            data["cost"] = dict(self.cost)
            data["requests"] = [
                [point, list(commodities)] for point, commodities in self.requests
            ]
        if self.seed is not None:
            data["seed"] = self.seed
        if self.trace:
            data["trace"] = True
        if not self.validate:
            data["validate"] = False
        if self.name is not None:
            data["name"] = self.name
        return data

    def is_declarative(self) -> bool:
        """Whether every component is named declaratively (spec serializes)."""
        return all(
            _is_declarative(value)
            for value in (
                self.algorithm,
                self.metric,
                self.cost,
                self.workload,
                self.scenario,
            )
        )

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def mode(self) -> str:
        """``"online"`` or ``"offline"``, from where the algorithm key resolves."""
        if isinstance(self.algorithm, dict):
            kind = self.algorithm["kind"]
            if kind in ALGORITHMS:
                return "online"
            if kind in SOLVERS:
                return "offline"
            hint = did_you_mean(str(kind), ALGORITHMS.names() + SOLVERS.names())
            raise UnknownComponentError(
                f"unknown algorithm {kind!r}{hint}; online algorithms: "
                f"{', '.join(ALGORITHMS.names())}; offline solvers: "
                f"{', '.join(SOLVERS.names())}"
            )
        if isinstance(self.algorithm, OnlineAlgorithm):
            return "online"
        if isinstance(self.algorithm, OfflineSolver):
            return "offline"
        raise ExperimentError(
            f"RunSpec.algorithm must be a registry spec, an OnlineAlgorithm or an "
            f"OfflineSolver; got {type(self.algorithm).__name__}"
        )

    def build_algorithm(self) -> Union[OnlineAlgorithm, OfflineSolver]:
        """Instantiate the named online algorithm or offline solver."""
        if not isinstance(self.algorithm, dict):
            self.mode()  # type-check live objects
            return self.algorithm
        registry = ALGORITHMS if self.mode() == "online" else SOLVERS
        return _build_component(self.algorithm, registry, None)

    def build_scenario(self):
        """Resolve the nested scenario spec into a live Scenario object."""
        if self.scenario is None:
            raise ExperimentError("this RunSpec names no scenario")
        # Imported lazily: the scenario engine pulls in workload/metric stacks
        # that plain metric/cost specs never need.
        from repro.scenarios.base import Scenario, scenario_from_dict

        if isinstance(self.scenario, Scenario):
            return self.scenario
        return scenario_from_dict(self.scenario)

    def build_instance(self, rng=None) -> Instance:
        """Materialize the instance (generating the workload when named).

        ``rng`` (defaulting to a generator seeded with ``seed``) is threaded
        into workload generation and random metric factories.  Scenario specs
        realize eagerly here (streaming callers use
        :mod:`repro.scenarios.run` instead); their seed derivation depends
        only on ``self.seed``, matching the streamed path exactly.
        """
        if self.scenario is not None:
            from repro.scenarios.run import derive_session_seeds

            scenario_seed, _ = derive_session_seeds(self.seed)
            workload = self.build_scenario().realize(scenario_seed)
            instance = workload.instance
            if self.name is not None:
                instance.name = self.name
            return instance
        generator = ensure_rng(self.seed if rng is None else rng)
        if self.workload is not None:
            workload = _build_component(self.workload, WORKLOADS, generator)
            if not isinstance(workload, GeneratedWorkload):
                raise ExperimentError(
                    f"workload builders must return a GeneratedWorkload, got "
                    f"{type(workload).__name__}"
                )
            instance = workload.instance
        else:
            metric = _build_component(self.metric, METRICS, generator)
            if not isinstance(metric, MetricSpace):
                raise ExperimentError(f"metric spec built a {type(metric).__name__}")
            cost = _build_component(self.cost, COSTS, generator)
            if not isinstance(cost, FacilityCostFunction):
                raise ExperimentError(f"cost spec built a {type(cost).__name__}")
            instance = Instance(
                metric, cost, RequestSequence.from_tuples(self.requests), name="spec"
            )
        if self.name is not None:
            instance.name = self.name
        return instance

    def normalized(self) -> Dict[str, Any]:
        """Resolve every component *without running* and return the canonical dict.

        This is the ``repro spec --validate-only`` backend: the algorithm key
        is resolved (deciding the mode, with did-you-mean on typos) and its
        parameters signature-checked, metric/cost/workload specs are checked
        against their registries, and scenario specs are fully constructed —
        which validates nested children and parameter ranges — then
        re-serialized with all defaults materialized.
        """
        if not self.is_declarative():
            raise ExperimentError(
                "only fully declarative specs can be validated and normalized"
            )
        data = self.to_dict()
        mode = self.mode()
        registry = ALGORITHMS if mode == "online" else SOLVERS
        registry.check_params(
            self.algorithm["kind"],
            {key: value for key, value in self.algorithm.items() if key != "kind"},
        )
        for label, spec, component_registry in (
            ("metric", self.metric, METRICS),
            ("cost", self.cost, COSTS),
            ("workload", self.workload, WORKLOADS),
        ):
            if isinstance(spec, dict):
                component_registry.check_params(
                    spec["kind"],
                    {key: value for key, value in spec.items() if key != "kind"},
                )
        if self.scenario is not None:
            data["scenario"] = self.build_scenario().to_dict()
        return data
