"""Streaming online sessions — the paper's true online model.

:class:`OnlineSession` runs an online algorithm over a request stream of
*unknown length*: requests are submitted one at a time with
:meth:`OnlineSession.submit`, each returning an :class:`AssignmentEvent` with
the irrevocable decision and its incremental cost, and
:meth:`OnlineSession.finalize` freezes the run into a
:class:`~repro.api.record.RunRecord`.  Nothing about the future of the stream
is needed up front — only the metric space and the cost function, which the
problem definition fixes in advance (Section 1.1).

The batch entry point :func:`repro.algorithms.base.run_online` is a thin
wrapper that feeds a materialized request sequence through a session, so batch
and streaming execution are the same code path and produce bit-identical
costs for the same seed.

Example
-------
>>> from repro.api import OnlineSession
>>> from repro import PDOMFLPAlgorithm, PowerCost, uniform_line_metric
>>> session = OnlineSession(
...     PDOMFLPAlgorithm(), uniform_line_metric(8), PowerCost(4, 1.0)
... )
>>> event = session.submit(1, {0, 1})        # a request arrives
>>> event.connection_cost >= 0.0
True
>>> record = session.finalize()
>>> record.total_cost == event.total_cost_so_far
True
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from repro.algorithms.base import OnlineAlgorithm, OnlineResult
from repro.api.record import RunRecord
from repro.core.commodities import CommodityUniverse
from repro.core.instance import Instance
from repro.core.requests import Request, RequestSequence
from repro.core.state import OnlineState
from repro.core.trace import Trace
from repro.costs.base import FacilityCostFunction
from repro.exceptions import AlgorithmError, SnapshotError
from repro.metric.base import MetricSpace
from repro.trace.clock import wall_now
from repro.utils.rng import RandomState, ensure_rng, rng_from_state, rng_state

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance, types only
    from repro.telemetry.sink import TelemetrySink
    from repro.trace.tracer import Tracer

__all__ = ["AssignmentEvent", "OnlineSession"]


@dataclass(frozen=True)
class AssignmentEvent:
    """The irrevocable outcome of serving one streamed request.

    Attributes
    ----------
    request_index:
        Arrival position of the request (0-based).
    point, commodities:
        The request itself.
    facility_ids:
        The facilities the request's commodities were connected to.
    opening_cost_delta:
        Opening cost charged while serving this request (0 when only existing
        facilities were reused).
    connection_cost:
        Connection cost of this request's assignment.
    opening_cost_so_far, connection_cost_so_far:
        Session cost totals after this request.
    """

    request_index: int
    point: int
    commodities: FrozenSet[int]
    facility_ids: Tuple[int, ...]
    opening_cost_delta: float
    connection_cost: float
    opening_cost_so_far: float
    connection_cost_so_far: float

    @property
    def cost_delta(self) -> float:
        """Total cost charged for this request."""
        return self.opening_cost_delta + self.connection_cost

    @property
    def total_cost_so_far(self) -> float:
        """Session total cost after this request."""
        return self.opening_cost_so_far + self.connection_cost_so_far

    # ------------------------------------------------------------------
    # Wire protocol
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Strict-JSON-compatible form (frozensets become sorted lists).

        This is the event shape the :mod:`repro.service` wire protocol puts on
        the wire; :meth:`from_dict` is the exact inverse.
        """
        return {
            "request_index": self.request_index,
            "point": self.point,
            "commodities": sorted(self.commodities),
            "facility_ids": list(self.facility_ids),
            "opening_cost_delta": self.opening_cost_delta,
            "connection_cost": self.connection_cost,
            "opening_cost_so_far": self.opening_cost_so_far,
            "connection_cost_so_far": self.connection_cost_so_far,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AssignmentEvent":
        """Rebuild an event from its :meth:`to_dict` form."""
        return cls(
            request_index=int(data["request_index"]),
            point=int(data["point"]),
            commodities=frozenset(int(e) for e in data["commodities"]),
            facility_ids=tuple(int(f) for f in data["facility_ids"]),
            opening_cost_delta=float(data["opening_cost_delta"]),
            connection_cost=float(data["connection_cost"]),
            opening_cost_so_far=float(data["opening_cost_so_far"]),
            connection_cost_so_far=float(data["connection_cost_so_far"]),
        )


#: How many served events accumulate before the session fans them out to the
#: telemetry sink (see OnlineSession._flush_telemetry).  Small enough that the
#: batch stays in L1, large enough to amortize the probes' cache refill.
_TELEMETRY_FLUSH_EVERY = 64


class OnlineSession:
    """An online algorithm run fed one request at a time.

    Parameters
    ----------
    algorithm:
        The online algorithm; ``prepare`` is called immediately (it may only
        rely on the metric and cost function, which is all the paper's online
        model reveals in advance).
    metric, cost:
        The fixed problem environment.
    commodities:
        Optional commodity universe with names (defaults to the cost
        function's ``|S|`` anonymous commodities).
    rng:
        Seed or generator for randomized algorithms.  An ``int`` seed is
        recorded on the final :class:`RunRecord`; the exact serialized
        bit-generator state at session start is recorded as well
        (``RunRecord.rng_state``), so provenance survives even when a live
        generator is passed.
    trace:
        Record structured trace events.
    validate:
        Validate feasibility of the final solution in :meth:`finalize`.
    use_accel:
        Maintain the incremental nearest-facility distance caches of
        :mod:`repro.accel` (the default), giving the streaming hot path O(1)
        ``d(F(e), r)`` / ``d(F̂, r)`` queries.  ``False`` selects the
        reference per-query scans — bit-identical, kept for the equivalence
        harness.
    name:
        Instance name used in result rows.
    instance:
        Advanced: pass a fully-materialized instance for the algorithm's
        ``prepare`` hook to see instead of the session's own requestless one.
        Streaming sessions leave this unset (the future is unknown); the batch
        shim :func:`~repro.algorithms.base.run_online` sets it so algorithms
        that inspect ``instance.requests`` keep their pre-session semantics.
    telemetry:
        Opt-in streaming metrics (:mod:`repro.telemetry`).  ``True`` attaches
        the stock probe catalog; a list of probe names/spec dicts or a
        prebuilt :class:`~repro.telemetry.sink.TelemetrySink` selects probes
        explicitly; ``None`` (the default) disables telemetry entirely.
        Telemetry is passive: probes only read the served events (and the
        wall-clock time the session measures anyway), never the session's
        RNG or state, so enabling it is bit-identical to running without it.
    tracer:
        Opt-in span tracing (:mod:`repro.trace`).  ``True`` attaches a
        default :class:`~repro.trace.tracer.Tracer`; a prebuilt tracer is
        used as-is (and may be shared, e.g. with the engine or service
        layer); ``None`` (the default) disables tracing at zero cost.
        Tracing inherits the telemetry passivity contract: a traced run's
        events, costs and RNG draws are exact-``==`` to an untraced run's.
        Per-request sub-phase spans (and sub-phase timing) are recorded for
        the tracer's deterministic stratified sample of requests; *every*
        request folds ``algorithm.process`` — the phase measured anyway for
        runtime telemetry — into the per-phase latency aggregates.
        Distinct from ``trace``, which records the algorithm's structured
        decision trace.
    """

    def __init__(
        self,
        algorithm: OnlineAlgorithm,
        metric: MetricSpace,
        cost: FacilityCostFunction,
        *,
        commodities: Optional[CommodityUniverse] = None,
        rng: RandomState = None,
        trace: bool = False,
        validate: bool = True,
        use_accel: bool = True,
        name: str = "session",
        instance: Optional[Instance] = None,
        telemetry: Any = None,
        tracer: Any = None,
    ) -> None:
        self._algorithm = algorithm
        self._seed = int(rng) if isinstance(rng, (int, np.integer)) else None
        self._rng = ensure_rng(rng)
        # Full provenance even for non-int rng inputs (an externally supplied
        # generator has no seed): the exact bit-generator state at session
        # start is recorded on the final RunRecord alongside the optional
        # seed, and anchors snapshot/restore.
        self._initial_rng_state = rng_state(self._rng)
        self._use_accel = bool(use_accel)
        self._validate = validate
        if tracer is None or tracer is False:
            self._tracer = None
        else:
            # Imported lazily for the same cycle reason as the telemetry
            # sink below (the tracer pulls in repro.telemetry's reservoir).
            from repro.trace.tracer import Tracer

            self._tracer = Tracer.coerce(tracer)
        if instance is None:
            instance = Instance(
                metric, cost, RequestSequence([]), commodities=commodities, name=name
            )
        self._instance = instance
        build_start = wall_now()
        self._state = OnlineState(
            self._instance, trace=Trace(enabled=trace), use_accel=use_accel
        )
        if self._tracer is not None:
            # Covers the accel nearest-facility cache construction when
            # use_accel is on (the session-controlled accel-kernel phase).
            self._tracer.add(
                "session.state-build",
                category="session",
                seconds=wall_now() - build_start,
                wall_start=build_start,
                attributes={"use_accel": self._use_accel},
            )
        self._requests: list[Request] = []
        self._runtime = 0.0
        self._record: Optional[RunRecord] = None
        # Served events waiting to be fanned out to the telemetry sink; see
        # _flush_telemetry for why delivery is micro-batched.
        self._telemetry_pending: list[Tuple["AssignmentEvent", float]] = []
        if telemetry is None or telemetry is False:
            self._telemetry = None
        else:
            # Imported lazily: repro.telemetry depends on this module (probes
            # consume AssignmentEvent), so a top-level import would be a cycle.
            from repro.telemetry.sink import TelemetrySink

            self._telemetry = TelemetrySink.coerce(telemetry)
            if self._telemetry is not None:
                self._telemetry.bind(
                    self._instance.metric, self._instance.cost_function
                )
        start = wall_now()
        algorithm.prepare(self._instance, self._state, self._rng)
        elapsed = wall_now() - start
        self._runtime += elapsed
        if self._tracer is not None:
            self._tracer.add(
                "session.prepare",
                category="session",
                seconds=elapsed,
                wall_start=start,
                attributes={"algorithm": algorithm.name},
            )

    # ------------------------------------------------------------------
    # Read-only views
    # ------------------------------------------------------------------
    @property
    def algorithm(self) -> OnlineAlgorithm:
        return self._algorithm

    @property
    def state(self) -> OnlineState:
        return self._state

    @property
    def num_requests(self) -> int:
        """Requests served so far."""
        return len(self._requests)

    @property
    def opening_cost(self) -> float:
        return self._state.current_opening_cost()

    @property
    def connection_cost(self) -> float:
        return self._state.current_connection_cost()

    @property
    def total_cost(self) -> float:
        """Running total cost (incrementally maintained, O(1))."""
        return self._state.current_total_cost()

    @property
    def finalized(self) -> bool:
        return self._record is not None

    @property
    def runtime_seconds(self) -> float:
        """Wall-clock seconds spent inside the algorithm so far."""
        return self._runtime

    @property
    def telemetry(self) -> Optional["TelemetrySink"]:
        """The attached telemetry sink (``None`` when telemetry is disabled)."""
        self._flush_telemetry()
        return self._telemetry

    @property
    def tracer(self) -> Optional["Tracer"]:
        """The attached span tracer (``None`` when tracing is disabled)."""
        return self._tracer

    def telemetry_summary(self) -> Optional[Dict[str, Any]]:
        """``{probe kind: summary}`` of the attached sink, ``None`` if disabled."""
        if self._telemetry is None:
            return None
        self._flush_telemetry()
        return self._telemetry.summary()

    def _flush_telemetry(self) -> None:
        """Fan the pending events out to every probe, in arrival order.

        Delivery is micro-batched (every ``_TELEMETRY_FLUSH_EVERY`` submits,
        plus before any read of the sink): between two requests the algorithm
        churns through enough metric/NumPy state to evict the probes'
        accumulators from cache, so per-event fan-out pays a cache miss per
        counter while a short batch pays it once.  Probes still see every
        event exactly once, in order — only the *when* changes, and every
        externally observable read point flushes first.
        """
        pending = self._telemetry_pending
        if not pending:
            return
        sink = self._telemetry
        if sink is not None:
            sink.record_batch(pending)
        pending.clear()

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def submit(self, point: int, commodities: Iterable[int]) -> AssignmentEvent:
        """Serve the next arriving request ``(point, commodities)``.

        The algorithm's decision is applied immediately and irrevocably; the
        returned event reports which facilities were used and what the request
        cost on top of the session's running totals.
        """
        if self._record is not None:
            raise AlgorithmError("cannot submit to a finalized session")
        request = Request(
            index=len(self._requests),
            point=int(point),
            commodities=frozenset(int(e) for e in commodities),
        )
        # Tracing of the hot path: the real work phase (algorithm.process)
        # folds into the per-phase latency aggregates on every request, at
        # zero extra clock reads — its elapsed time is measured exactly once
        # either way and feeds RunRecord.runtime_seconds, telemetry probes
        # and trace spans alike.  The bookkeeping envelope (submit total,
        # validate, event assembly) is measured only on the tracer's
        # deterministic stratified sample of requests, which additionally
        # gets a full span tree (submit → validate / process / event);
        # measuring it on every request would cost more clock reads and
        # folds than the phases are worth at streaming scale.
        tracer = self._tracer
        detail = False
        if tracer is not None:
            detail = tracer.should_detail(request.index)
            if detail:
                submit_span = tracer.begin(
                    "session.submit",
                    category="session",
                    ordinal=request.index,
                    attributes={
                        "point": request.point,
                        "num_commodities": len(request.commodities),
                    },
                )
                validate_start = wall_now()
        self._instance.validate_request(request)
        if detail:
            tracer.add(
                "session.validate",
                category="session",
                ordinal=request.index,
                seconds=wall_now() - validate_start,
                wall_start=validate_start,
            )

        opening_before = self._state.current_opening_cost()
        connection_before = self._state.current_connection_cost()
        start = wall_now()
        self._algorithm.process(request, self._state, self._rng)
        elapsed = wall_now() - start
        self._runtime += elapsed
        if tracer is not None:
            if detail:
                tracer.add(
                    "algorithm.process",
                    category="algorithm",
                    ordinal=request.index,
                    seconds=elapsed,
                    wall_start=start,
                    attributes={"use_accel": self._use_accel},
                )
                event_start = wall_now()
            else:
                tracer.record_phase("algorithm.process", elapsed)
        try:
            assignment = self._state.assignment_of(request.index)
        except KeyError as error:
            raise AlgorithmError(
                f"{self._algorithm.name} finished processing request {request.index} "
                "without recording an assignment"
            ) from error
        self._requests.append(request)

        opening_after = self._state.current_opening_cost()
        connection_after = self._state.current_connection_cost()
        event = AssignmentEvent(
            request_index=request.index,
            point=request.point,
            commodities=request.commodities,
            facility_ids=tuple(sorted(assignment.facility_ids())),
            opening_cost_delta=opening_after - opening_before,
            connection_cost=connection_after - connection_before,
            opening_cost_so_far=opening_after,
            connection_cost_so_far=connection_after,
        )
        if self._telemetry is not None:
            # Probes reuse the elapsed time measured above — no extra clock
            # reads, no RNG draws, nothing fed back into the algorithm.
            self._telemetry_pending.append((event, elapsed))
            if len(self._telemetry_pending) >= _TELEMETRY_FLUSH_EVERY:
                self._flush_telemetry()
        if detail:
            tracer.add(
                "session.event",
                category="session",
                ordinal=request.index,
                seconds=wall_now() - event_start,
                wall_start=event_start,
            )
            tracer.end(
                submit_span,
                attributes={
                    "opening_cost_delta": event.opening_cost_delta,
                    "connection_cost": event.connection_cost,
                    "facilities": len(event.facility_ids),
                },
            )
        return event

    def submit_many(self, items: Iterable[Tuple[int, Iterable[int]]]) -> list[AssignmentEvent]:
        """Serve a burst of ``(point, commodities)`` arrivals in order."""
        return [self.submit(point, commodities) for point, commodities in items]

    # ------------------------------------------------------------------
    # Durability (snapshot / restore)
    # ------------------------------------------------------------------
    def snapshot(
        self,
        *,
        spec: Optional[Dict[str, Any]] = None,
        scenario_state: Optional[Dict[str, Any]] = None,
    ) -> "SessionSnapshot":
        """Capture a restorable, JSON-serializable snapshot of the session.

        The snapshot records the algorithm's ``state_dict``, the full online
        state (facilities, assignments, trace), the request log and the exact
        bit-generator state, so that :meth:`restore` continues the stream
        **bit-identically** to an uninterrupted run — accel caches are not
        stored but deterministically rebuilt on restore.

        ``spec`` optionally embeds the declarative :class:`~repro.api.spec.RunSpec`
        dict the session was created from, making the snapshot self-contained
        (restorable without re-supplying components); the
        :class:`~repro.service.SessionManager` always embeds it.

        ``scenario_state`` optionally embeds the driving scenario stream's
        :meth:`~repro.scenarios.base.ScenarioStream.state_dict`, so a
        scenario-backed session resumes its generator position too (the
        :class:`~repro.scenarios.run.ScenarioSession` snapshot path).
        """
        from repro.service.snapshot import SessionSnapshot

        if self._record is not None:
            raise SnapshotError("cannot snapshot a finalized session")
        self._flush_telemetry()
        return SessionSnapshot(
            algorithm=self._algorithm.name,
            algorithm_state=self._algorithm.state_dict(),
            state=self._state.state_dict(),
            seed=self._seed,
            initial_rng_state=copy.deepcopy(self._initial_rng_state),
            rng_state=rng_state(self._rng),
            use_accel=self._use_accel,
            validate=self._validate,
            instance_name=self._instance.name,
            runtime_seconds=self._runtime,
            num_requests=len(self._requests),
            spec=copy.deepcopy(spec) if spec is not None else None,
            scenario_state=copy.deepcopy(scenario_state)
            if scenario_state is not None
            else None,
            telemetry=self._telemetry.state_dict()
            if self._telemetry is not None
            else None,
        )

    @classmethod
    def restore(
        cls,
        snapshot: Union["SessionSnapshot", Mapping[str, Any], str],
        *,
        algorithm: Optional[OnlineAlgorithm] = None,
        metric: Optional[MetricSpace] = None,
        cost: Optional[FacilityCostFunction] = None,
        commodities: Optional[CommodityUniverse] = None,
        instance: Optional[Instance] = None,
    ) -> "OnlineSession":
        """Rebuild a session from a :meth:`snapshot` (accepts dict/JSON forms).

        Two ways to supply the fixed problem environment:

        * pass nothing extra — the snapshot must carry an embedded declarative
          ``spec``, from which algorithm and instance are rebuilt (the
          :class:`~repro.service.SessionManager` path);
        * pass a freshly built ``algorithm`` plus ``metric`` and ``cost`` (or a
          whole ``instance``) equivalent to the originals — the "fresh
          process" path when the session was constructed from live objects.

        The restored session then continues the stream bit-identically: same
        costs, same facility openings, same coin flips.
        """
        from repro.service.snapshot import SessionSnapshot, components_from_spec

        snapshot = SessionSnapshot.coerce(snapshot)
        if algorithm is not None:
            if instance is not None:
                metric = instance.metric
                cost = instance.cost_function
                commodities = commodities or instance.commodities
            if metric is None or cost is None:
                raise SnapshotError(
                    "restore() needs metric and cost (or a whole instance) "
                    "alongside the algorithm"
                )
        else:
            if metric is not None or cost is not None or instance is not None:
                raise SnapshotError(
                    "restore() needs the algorithm alongside metric/cost/instance"
                )
            if snapshot.spec is None:
                raise SnapshotError(
                    "snapshot has no embedded spec; pass algorithm, metric and "
                    "cost (or instance) explicitly"
                )
            algorithm, built, _ = components_from_spec(snapshot.spec)
            metric = built.metric
            cost = built.cost_function
            commodities = built.commodities
        if algorithm.name != snapshot.algorithm:
            raise SnapshotError(
                f"snapshot was taken from algorithm {snapshot.algorithm!r} but "
                f"restore() received {algorithm.name!r}; rebuild the algorithm "
                "with the original configuration"
            )
        session = cls(
            algorithm,
            metric,
            cost,
            commodities=commodities,
            rng=None,
            trace=snapshot.trace_enabled,
            validate=snapshot.validate,
            use_accel=snapshot.use_accel,
            name=snapshot.instance_name,
            instance=instance,
        )
        session._state.load_state_dict(snapshot.state)
        session._algorithm.load_state_dict(snapshot.algorithm_state)
        session._requests = [
            Request(
                index=index,
                point=int(point),
                commodities=frozenset(int(e) for e in commodity_list),
            )
            for index, (point, commodity_list) in enumerate(snapshot.state["requests"])
        ]
        if len(session._requests) != snapshot.num_requests:
            raise SnapshotError(
                f"snapshot claims {snapshot.num_requests} requests but carries "
                f"{len(session._requests)}"
            )
        session._rng = rng_from_state(snapshot.rng_state)
        session._seed = snapshot.seed
        session._initial_rng_state = copy.deepcopy(snapshot.initial_rng_state)
        session._runtime = float(snapshot.runtime_seconds)
        if snapshot.telemetry is not None:
            from repro.telemetry.sink import TelemetrySink

            sink = TelemetrySink.from_state_dict(snapshot.telemetry)
            sink.bind(metric, cost)
            session._telemetry = sink
        return session

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self) -> RunRecord:
        """Freeze the session into a :class:`RunRecord` (idempotent).

        The final costs are recomputed from the frozen solution exactly as the
        batch runner does, so a streamed run and a batch run over the same
        sequence and seed report bit-identical totals.
        """
        if self._record is not None:
            return self._record
        finalize_start = wall_now()
        self._flush_telemetry()
        requests = RequestSequence(self._requests)
        solution = self._state.to_solution()
        if self._validate:
            solution.validate(requests)
        breakdown = solution.cost_breakdown(requests)
        result = OnlineResult(
            algorithm=self._algorithm.name,
            instance_name=self._instance.name,
            solution=solution,
            opening_cost=breakdown.opening,
            connection_cost=breakdown.connection,
            breakdown=breakdown,
            runtime_seconds=self._runtime,
            trace=self._state.trace,
            duals=self._algorithm.duals(),
        )
        self._record = RunRecord.from_online_result(
            result,
            num_requests=len(requests),
            seed=self._seed,
            rng_state=copy.deepcopy(self._initial_rng_state),
        )
        if self._tracer is not None:
            self._tracer.add(
                "session.finalize",
                category="session",
                ordinal=len(requests),
                seconds=wall_now() - finalize_start,
                wall_start=finalize_start,
                attributes={
                    "num_requests": len(requests),
                    "validated": bool(self._validate),
                },
            )
        return self._record

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OnlineSession(algorithm={self._algorithm.name!r}, "
            f"n={len(self._requests)}, total_cost={self.total_cost:.4f})"
        )
