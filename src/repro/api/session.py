"""Streaming online sessions — the paper's true online model.

:class:`OnlineSession` runs an online algorithm over a request stream of
*unknown length*: requests are submitted one at a time with
:meth:`OnlineSession.submit`, each returning an :class:`AssignmentEvent` with
the irrevocable decision and its incremental cost, and
:meth:`OnlineSession.finalize` freezes the run into a
:class:`~repro.api.record.RunRecord`.  Nothing about the future of the stream
is needed up front — only the metric space and the cost function, which the
problem definition fixes in advance (Section 1.1).

The batch entry point :func:`repro.algorithms.base.run_online` is a thin
wrapper that feeds a materialized request sequence through a session, so batch
and streaming execution are the same code path and produce bit-identical
costs for the same seed.

Example
-------
>>> from repro.api import OnlineSession
>>> from repro import PDOMFLPAlgorithm, PowerCost, uniform_line_metric
>>> session = OnlineSession(
...     PDOMFLPAlgorithm(), uniform_line_metric(8), PowerCost(4, 1.0)
... )
>>> event = session.submit(1, {0, 1})        # a request arrives
>>> event.connection_cost >= 0.0
True
>>> record = session.finalize()
>>> record.total_cost == event.total_cost_so_far
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

import numpy as np

from repro.algorithms.base import OnlineAlgorithm, OnlineResult
from repro.api.record import RunRecord
from repro.core.commodities import CommodityUniverse
from repro.core.instance import Instance
from repro.core.requests import Request, RequestSequence
from repro.core.state import OnlineState
from repro.core.trace import Trace
from repro.costs.base import FacilityCostFunction
from repro.exceptions import AlgorithmError
from repro.metric.base import MetricSpace
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["AssignmentEvent", "OnlineSession"]


@dataclass(frozen=True)
class AssignmentEvent:
    """The irrevocable outcome of serving one streamed request.

    Attributes
    ----------
    request_index:
        Arrival position of the request (0-based).
    point, commodities:
        The request itself.
    facility_ids:
        The facilities the request's commodities were connected to.
    opening_cost_delta:
        Opening cost charged while serving this request (0 when only existing
        facilities were reused).
    connection_cost:
        Connection cost of this request's assignment.
    opening_cost_so_far, connection_cost_so_far:
        Session cost totals after this request.
    """

    request_index: int
    point: int
    commodities: FrozenSet[int]
    facility_ids: Tuple[int, ...]
    opening_cost_delta: float
    connection_cost: float
    opening_cost_so_far: float
    connection_cost_so_far: float

    @property
    def cost_delta(self) -> float:
        """Total cost charged for this request."""
        return self.opening_cost_delta + self.connection_cost

    @property
    def total_cost_so_far(self) -> float:
        """Session total cost after this request."""
        return self.opening_cost_so_far + self.connection_cost_so_far


class OnlineSession:
    """An online algorithm run fed one request at a time.

    Parameters
    ----------
    algorithm:
        The online algorithm; ``prepare`` is called immediately (it may only
        rely on the metric and cost function, which is all the paper's online
        model reveals in advance).
    metric, cost:
        The fixed problem environment.
    commodities:
        Optional commodity universe with names (defaults to the cost
        function's ``|S|`` anonymous commodities).
    rng:
        Seed or generator for randomized algorithms; an ``int`` seed is
        recorded on the final :class:`RunRecord`.
    trace:
        Record structured trace events.
    validate:
        Validate feasibility of the final solution in :meth:`finalize`.
    use_accel:
        Maintain the incremental nearest-facility distance caches of
        :mod:`repro.accel` (the default), giving the streaming hot path O(1)
        ``d(F(e), r)`` / ``d(F̂, r)`` queries.  ``False`` selects the
        reference per-query scans — bit-identical, kept for the equivalence
        harness.
    name:
        Instance name used in result rows.
    instance:
        Advanced: pass a fully-materialized instance for the algorithm's
        ``prepare`` hook to see instead of the session's own requestless one.
        Streaming sessions leave this unset (the future is unknown); the batch
        shim :func:`~repro.algorithms.base.run_online` sets it so algorithms
        that inspect ``instance.requests`` keep their pre-session semantics.
    """

    def __init__(
        self,
        algorithm: OnlineAlgorithm,
        metric: MetricSpace,
        cost: FacilityCostFunction,
        *,
        commodities: Optional[CommodityUniverse] = None,
        rng: RandomState = None,
        trace: bool = False,
        validate: bool = True,
        use_accel: bool = True,
        name: str = "session",
        instance: Optional[Instance] = None,
    ) -> None:
        self._algorithm = algorithm
        self._seed = int(rng) if isinstance(rng, (int, np.integer)) else None
        self._rng = ensure_rng(rng)
        self._validate = validate
        if instance is None:
            instance = Instance(
                metric, cost, RequestSequence([]), commodities=commodities, name=name
            )
        self._instance = instance
        self._state = OnlineState(
            self._instance, trace=Trace(enabled=trace), use_accel=use_accel
        )
        self._requests: list[Request] = []
        self._runtime = 0.0
        self._record: Optional[RunRecord] = None
        start = time.perf_counter()
        algorithm.prepare(self._instance, self._state, self._rng)
        self._runtime += time.perf_counter() - start

    # ------------------------------------------------------------------
    # Read-only views
    # ------------------------------------------------------------------
    @property
    def algorithm(self) -> OnlineAlgorithm:
        return self._algorithm

    @property
    def state(self) -> OnlineState:
        return self._state

    @property
    def num_requests(self) -> int:
        """Requests served so far."""
        return len(self._requests)

    @property
    def opening_cost(self) -> float:
        return self._state.current_opening_cost()

    @property
    def connection_cost(self) -> float:
        return self._state.current_connection_cost()

    @property
    def total_cost(self) -> float:
        """Running total cost (incrementally maintained, O(1))."""
        return self._state.current_total_cost()

    @property
    def finalized(self) -> bool:
        return self._record is not None

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def submit(self, point: int, commodities: Iterable[int]) -> AssignmentEvent:
        """Serve the next arriving request ``(point, commodities)``.

        The algorithm's decision is applied immediately and irrevocably; the
        returned event reports which facilities were used and what the request
        cost on top of the session's running totals.
        """
        if self._record is not None:
            raise AlgorithmError("cannot submit to a finalized session")
        request = Request(
            index=len(self._requests),
            point=int(point),
            commodities=frozenset(int(e) for e in commodities),
        )
        self._instance.validate_request(request)

        opening_before = self._state.current_opening_cost()
        connection_before = self._state.current_connection_cost()
        start = time.perf_counter()
        self._algorithm.process(request, self._state, self._rng)
        self._runtime += time.perf_counter() - start
        try:
            assignment = self._state.assignment_of(request.index)
        except KeyError as error:
            raise AlgorithmError(
                f"{self._algorithm.name} finished processing request {request.index} "
                "without recording an assignment"
            ) from error
        self._requests.append(request)

        opening_after = self._state.current_opening_cost()
        connection_after = self._state.current_connection_cost()
        return AssignmentEvent(
            request_index=request.index,
            point=request.point,
            commodities=request.commodities,
            facility_ids=tuple(sorted(assignment.facility_ids())),
            opening_cost_delta=opening_after - opening_before,
            connection_cost=connection_after - connection_before,
            opening_cost_so_far=opening_after,
            connection_cost_so_far=connection_after,
        )

    def submit_many(self, items: Iterable[Tuple[int, Iterable[int]]]) -> list[AssignmentEvent]:
        """Serve a burst of ``(point, commodities)`` arrivals in order."""
        return [self.submit(point, commodities) for point, commodities in items]

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self) -> RunRecord:
        """Freeze the session into a :class:`RunRecord` (idempotent).

        The final costs are recomputed from the frozen solution exactly as the
        batch runner does, so a streamed run and a batch run over the same
        sequence and seed report bit-identical totals.
        """
        if self._record is not None:
            return self._record
        requests = RequestSequence(self._requests)
        solution = self._state.to_solution()
        if self._validate:
            solution.validate(requests)
        breakdown = solution.cost_breakdown(requests)
        result = OnlineResult(
            algorithm=self._algorithm.name,
            instance_name=self._instance.name,
            solution=solution,
            opening_cost=breakdown.opening,
            connection_cost=breakdown.connection,
            breakdown=breakdown,
            runtime_seconds=self._runtime,
            trace=self._state.trace,
            duals=self._algorithm.duals(),
        )
        self._record = RunRecord.from_online_result(
            result, num_requests=len(requests), seed=self._seed
        )
        return self._record

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OnlineSession(algorithm={self._algorithm.name!r}, "
            f"n={len(self._requests)}, total_cost={self.total_cost:.4f})"
        )
