"""The unified result record of the ``repro.api`` layer.

:class:`RunRecord` subsumes :class:`~repro.algorithms.base.OnlineResult` and
:class:`~repro.algorithms.base.OfflineResult` behind one shape, so that online
runs, streaming sessions and offline solves all produce rows that drop into
the same tables, CSV files and sweeps.  The heavyweight run artifacts
(solution, trace, dual variables) stay reachable through the ``source``
attribute but are excluded from the serialized forms.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from repro.algorithms.base import OfflineResult, OnlineResult

__all__ = ["RunRecord", "records_to_csv"]


@dataclass
class RunRecord:
    """Outcome of one run — online, streaming or offline.

    Attributes
    ----------
    kind:
        ``"online"`` for algorithm runs (batch or streaming),
        ``"offline"`` for reference solves.
    algorithm:
        The algorithm / solver name.
    instance_name:
        Name of the instance the run executed on.
    total_cost, opening_cost, connection_cost:
        The cost split; ``total_cost == opening_cost + connection_cost``.
    num_requests, num_facilities, num_large_facilities:
        Size of the input and the built solution.
    runtime_seconds:
        Wall-clock processing time.
    seed:
        The seed the run was started with, when known (``None`` for
        externally supplied generators).
    rng_state:
        The serialized bit-generator state at run start, when known —
        provenance for runs started from a live generator rather than an int
        seed (see :func:`repro.utils.rng.rng_state`).
    is_optimal, lower_bound:
        Offline-only optimality information.
    spec:
        The declarative spec dict that produced the run, when the run came
        from :func:`repro.api.run.run` (round-trips through JSON).
    source:
        The underlying :class:`OnlineResult` / :class:`OfflineResult` with
        solution, trace and duals; not serialized.
    """

    kind: str
    algorithm: str
    instance_name: str
    total_cost: float
    opening_cost: float
    connection_cost: float
    num_requests: int
    num_facilities: int
    num_large_facilities: int
    runtime_seconds: float
    seed: Optional[int] = None
    is_optimal: bool = False
    lower_bound: Optional[float] = None
    spec: Optional[Dict[str, Any]] = None
    rng_state: Optional[Dict[str, Any]] = field(default=None, repr=False)
    source: Optional[Union[OnlineResult, OfflineResult]] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_online_result(
        cls,
        result: OnlineResult,
        *,
        num_requests: Optional[int] = None,
        seed: Optional[int] = None,
        spec: Optional[Dict[str, Any]] = None,
        rng_state: Optional[Dict[str, Any]] = None,
    ) -> "RunRecord":
        solution = result.solution
        return cls(
            kind="online",
            algorithm=result.algorithm,
            instance_name=result.instance_name,
            total_cost=result.total_cost,
            opening_cost=result.opening_cost,
            connection_cost=result.connection_cost,
            num_requests=(
                num_requests if num_requests is not None else len(solution.assignments)
            ),
            num_facilities=solution.num_facilities(),
            num_large_facilities=solution.num_large_facilities(),
            runtime_seconds=result.runtime_seconds,
            seed=seed,
            spec=spec,
            rng_state=rng_state,
            source=result,
        )

    @classmethod
    def from_offline_result(
        cls,
        result: OfflineResult,
        *,
        num_requests: Optional[int] = None,
        seed: Optional[int] = None,
        spec: Optional[Dict[str, Any]] = None,
    ) -> "RunRecord":
        solution = result.solution
        return cls(
            kind="offline",
            algorithm=result.solver,
            instance_name=result.instance_name,
            total_cost=result.total_cost,
            opening_cost=result.opening_cost,
            connection_cost=result.connection_cost,
            num_requests=(
                num_requests if num_requests is not None else len(solution.assignments)
            ),
            num_facilities=solution.num_facilities(),
            num_large_facilities=solution.num_large_facilities(),
            runtime_seconds=result.runtime_seconds,
            seed=seed,
            is_optimal=result.is_optimal,
            lower_bound=result.lower_bound,
            spec=spec,
            source=result,
        )

    # ------------------------------------------------------------------
    # Serialized forms
    # ------------------------------------------------------------------
    #: Column order of :meth:`to_row` / :func:`records_to_csv`.
    ROW_FIELDS = (
        "kind",
        "algorithm",
        "instance",
        "total_cost",
        "opening_cost",
        "connection_cost",
        "num_requests",
        "num_facilities",
        "num_large_facilities",
        "runtime_seconds",
        "seed",
        "is_optimal",
        "lower_bound",
    )

    def to_row(self) -> Dict[str, Any]:
        """A flat dictionary suitable for tables, sweeps and CSV rows."""
        return {
            "kind": self.kind,
            "algorithm": self.algorithm,
            "instance": self.instance_name,
            "total_cost": self.total_cost,
            "opening_cost": self.opening_cost,
            "connection_cost": self.connection_cost,
            "num_requests": self.num_requests,
            "num_facilities": self.num_facilities,
            "num_large_facilities": self.num_large_facilities,
            "runtime_seconds": self.runtime_seconds,
            "seed": self.seed,
            "is_optimal": self.is_optimal,
            "lower_bound": self.lower_bound,
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible dictionary (row fields plus spec/rng provenance)."""
        data = self.to_row()
        if self.spec is not None:
            data["spec"] = self.spec
        if self.rng_state is not None:
            data["rng_state"] = self.rng_state
        return data

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    # Convenience views onto the underlying result object -------------------
    @property
    def solution(self):
        """The built solution, when the underlying result is retained."""
        return self.source.solution if self.source is not None else None

    @property
    def trace(self):
        """The event trace of an online run, when retained."""
        return getattr(self.source, "trace", None)


def records_to_csv(records: Sequence[RunRecord], path: Union[str, Path]) -> Path:
    """Write one CSV row per record to ``path`` (parents created as needed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(RunRecord.ROW_FIELDS))
        writer.writeheader()
        for record in records:
            writer.writerow(record.to_row())
    return path
