"""Generic string-keyed component registries.

Every pluggable component family of the library (metrics, cost functions,
workload generators, online algorithms, offline solvers, experiments) is
indexed by a :class:`Registry`: a mapping from short stable names to builder
callables.  Registries make scenarios describable as plain data — a JSON file
naming ``"pd-omflp"`` or ``"power"`` is enough to assemble a run without
importing a single ``repro`` class — which is what the declarative
:class:`~repro.api.spec.RunSpec` layer is built on.

Builders are registered either with the decorator form::

    METRICS = Registry("metric")

    @METRICS.register("uniform-line")
    def _build(num_points, length=1.0):
        ...

or directly with :meth:`Registry.add` when the builder already exists (the
stock components in :mod:`repro.api.components` use this form).  ``build``
instantiates by name::

    metric = METRICS.build("uniform-line", num_points=8)

Unknown names raise :class:`~repro.exceptions.UnknownComponentError` with the
full list of registered names.
"""

from __future__ import annotations

import difflib
import inspect
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

from repro.exceptions import ReproError, UnknownComponentError

__all__ = ["Registry", "did_you_mean"]


def did_you_mean(name: str, candidates: List[str]) -> str:
    """``"; did you mean ...?"`` for close matches of ``name``, else ``""``.

    Shared by registry lookups and :meth:`repro.api.spec.RunSpec.mode` so the
    suggestion tuning and phrasing live in one place.
    """
    matches = difflib.get_close_matches(str(name), candidates, n=3, cutoff=0.6)
    if not matches:
        return ""
    return f"; did you mean {' or '.join(repr(m) for m in matches)}?"


class Registry:
    """A named mapping from string keys to component builder callables.

    With ``strict_params=True`` every :meth:`build` call first runs
    :meth:`check_params`, so an unknown keyword in a declarative spec raises
    :class:`ReproError` naming the offending key instead of surfacing as a
    bare ``TypeError`` from deep inside the builder.
    """

    def __init__(self, kind: str, *, strict_params: bool = False) -> None:
        #: What the registry holds (``"metric"``, ``"algorithm"``, ...);
        #: used in error messages.
        self.kind = kind
        self.strict_params = strict_params
        self._builders: Dict[str, Callable[..., Any]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator form: register the decorated callable under ``name``."""

        def decorator(builder: Callable[..., Any]) -> Callable[..., Any]:
            self.add(name, builder)
            return builder

        return decorator

    def add(self, name: str, builder: Callable[..., Any]) -> None:
        """Register ``builder`` under ``name`` (names are unique per registry).

        Registration misuse raises plain :class:`ReproError`;
        :class:`UnknownComponentError` is reserved for failed lookups.
        """
        if not name or not isinstance(name, str):
            raise ReproError(f"{self.kind} registry keys must be non-empty strings")
        if name in self._builders:
            raise ReproError(
                f"{self.kind} {name!r} is already registered; names must be unique"
            )
        self._builders[name] = builder

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> Callable[..., Any]:
        """The builder registered under ``name``.

        Unknown names raise :class:`UnknownComponentError`; when the name is
        a near miss of a registered one (typo'd config file), the message
        leads with a did-you-mean suggestion.
        """
        try:
            return self._builders[name]
        except KeyError:
            raise UnknownComponentError(
                f"unknown {self.kind} {name!r}{did_you_mean(name, self.names())}; "
                f"registered: {', '.join(self.names()) or '(none)'}"
            ) from None

    def build(self, name: str, **params: Any) -> Any:
        """Instantiate the component registered under ``name``."""
        if self.strict_params:
            self.check_params(name, params)
        return self.get(name)(**params)

    def accepted_params(self, name: str) -> Optional[List[str]]:
        """Keyword parameters the builder of ``name`` accepts.

        ``None`` when the builder takes ``**kwargs`` or its signature cannot
        be introspected (anything would be accepted / nothing can be checked).
        """
        builder = self.get(name)
        try:
            signature = inspect.signature(builder)
        except (TypeError, ValueError):  # builtins without introspectable signatures
            return None
        parameters = signature.parameters.values()
        if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters):
            return None
        return [
            p.name
            for p in parameters
            if p.kind
            in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        ]

    def check_params(self, name: str, params: Mapping[str, Any]) -> None:
        """Raise :class:`ReproError` naming any parameter ``name`` rejects.

        This is what makes a typo'd keyword in a workload/scenario spec fail
        with the offending key and the accepted list, rather than a
        ``TypeError`` from deep inside the generator.
        """
        accepted = self.accepted_params(name)
        if accepted is None:
            return
        unknown = sorted(key for key in params if key not in accepted)
        if unknown:
            keys = ", ".join(repr(key) for key in unknown)
            hint = did_you_mean(unknown[0], accepted)
            raise ReproError(
                f"unknown parameter(s) {keys} for {self.kind} {name!r}{hint}; "
                f"accepted: {', '.join(accepted) or '(none)'}"
            )

    def accepts(self, name: str, parameter: str) -> bool:
        """Whether the builder of ``name`` takes a ``parameter`` keyword.

        Used to thread the run's random generator into builders that want one
        (``rng=``) without forcing every builder to declare it.
        """
        builder = self.get(name)
        try:
            signature = inspect.signature(builder)
        except (TypeError, ValueError):  # builtins without introspectable signatures
            return False
        if parameter in signature.parameters:
            return True
        return any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in signature.parameters.values()
        )

    def names(self) -> List[str]:
        """All registered names, in registration order."""
        return list(self._builders)

    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._builders

    def __iter__(self) -> Iterator[str]:
        return iter(self._builders)

    def __len__(self) -> int:
        return len(self._builders)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry(kind={self.kind!r}, size={len(self._builders)})"
