"""Generic string-keyed component registries.

Every pluggable component family of the library (metrics, cost functions,
workload generators, online algorithms, offline solvers, experiments) is
indexed by a :class:`Registry`: a mapping from short stable names to builder
callables.  Registries make scenarios describable as plain data — a JSON file
naming ``"pd-omflp"`` or ``"power"`` is enough to assemble a run without
importing a single ``repro`` class — which is what the declarative
:class:`~repro.api.spec.RunSpec` layer is built on.

Builders are registered either with the decorator form::

    METRICS = Registry("metric")

    @METRICS.register("uniform-line")
    def _build(num_points, length=1.0):
        ...

or directly with :meth:`Registry.add` when the builder already exists (the
stock components in :mod:`repro.api.components` use this form).  ``build``
instantiates by name::

    metric = METRICS.build("uniform-line", num_points=8)

Unknown names raise :class:`~repro.exceptions.UnknownComponentError` with the
full list of registered names.
"""

from __future__ import annotations

import difflib
import inspect
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.exceptions import ReproError, UnknownComponentError

__all__ = ["Registry", "did_you_mean"]


def did_you_mean(name: str, candidates: List[str]) -> str:
    """``"; did you mean ...?"`` for close matches of ``name``, else ``""``.

    Shared by registry lookups and :meth:`repro.api.spec.RunSpec.mode` so the
    suggestion tuning and phrasing live in one place.
    """
    matches = difflib.get_close_matches(str(name), candidates, n=3, cutoff=0.6)
    if not matches:
        return ""
    return f"; did you mean {' or '.join(repr(m) for m in matches)}?"


class Registry:
    """A named mapping from string keys to component builder callables."""

    def __init__(self, kind: str) -> None:
        #: What the registry holds (``"metric"``, ``"algorithm"``, ...);
        #: used in error messages.
        self.kind = kind
        self._builders: Dict[str, Callable[..., Any]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator form: register the decorated callable under ``name``."""

        def decorator(builder: Callable[..., Any]) -> Callable[..., Any]:
            self.add(name, builder)
            return builder

        return decorator

    def add(self, name: str, builder: Callable[..., Any]) -> None:
        """Register ``builder`` under ``name`` (names are unique per registry).

        Registration misuse raises plain :class:`ReproError`;
        :class:`UnknownComponentError` is reserved for failed lookups.
        """
        if not name or not isinstance(name, str):
            raise ReproError(f"{self.kind} registry keys must be non-empty strings")
        if name in self._builders:
            raise ReproError(
                f"{self.kind} {name!r} is already registered; names must be unique"
            )
        self._builders[name] = builder

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> Callable[..., Any]:
        """The builder registered under ``name``.

        Unknown names raise :class:`UnknownComponentError`; when the name is
        a near miss of a registered one (typo'd config file), the message
        leads with a did-you-mean suggestion.
        """
        try:
            return self._builders[name]
        except KeyError:
            raise UnknownComponentError(
                f"unknown {self.kind} {name!r}{did_you_mean(name, self.names())}; "
                f"registered: {', '.join(self.names()) or '(none)'}"
            ) from None

    def build(self, name: str, **params: Any) -> Any:
        """Instantiate the component registered under ``name``."""
        return self.get(name)(**params)

    def accepts(self, name: str, parameter: str) -> bool:
        """Whether the builder of ``name`` takes a ``parameter`` keyword.

        Used to thread the run's random generator into builders that want one
        (``rng=``) without forcing every builder to declare it.
        """
        builder = self.get(name)
        try:
            signature = inspect.signature(builder)
        except (TypeError, ValueError):  # builtins without introspectable signatures
            return False
        if parameter in signature.parameters:
            return True
        return any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in signature.parameters.values()
        )

    def names(self) -> List[str]:
        """All registered names, in registration order."""
        return list(self._builders)

    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._builders

    def __iter__(self) -> Iterator[str]:
        return iter(self._builders)

    def __len__(self) -> int:
        return len(self._builders)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry(kind={self.kind!r}, size={len(self._builders)})"
