"""RAND-OMFLP — the randomized algorithm of Section 4 (Algorithm 2).

When a request ``r`` with commodity set ``s_r`` arrives, the algorithm
computes two hypothetical connection budgets:

* ``X(r) = sum_{e in s_r} X(r, e)`` where ``X(r, e) = min{ d(F(e), r),
  min_i ( C^{{e}}_i + d(C^{{e}}_i, r) ) }`` — the cheapest way to serve each
  commodity individually with small facilities;
* ``Z(r) = min{ d(F̂, r), min_i ( C^S_i + d(C^S_i, r) ) }`` — the cheapest way
  to serve the whole request with one large facility;

and uses ``min{X(r), Z(r)}`` as the request's budget.  For every facility cost
class ``i`` (facility costs rounded down to powers of two, Section 4.1) it
then flips independent coins:

* a small facility of class ``i`` for commodity ``e`` is opened at the point
  of class ``<= i`` closest to ``r`` with probability
  ``(d(C^{{e}}_{i-1}, r) - d(C^{{e}}_i, r)) / C^{{e}}_i * X(r, e) / X(r)``;
* a large facility of class ``i`` is opened at the point of class ``<= i``
  closest to ``r`` with probability
  ``(d(C^S_{i-1}, r) - d(C^S_i, r)) / C^S_i``;

with ``d(C^τ_0, r) := min{Z(r), X(r)}`` in both cases.  These probabilities
make the expected assignment cost, the expected small-facility cost and the
expected large-facility cost of the request equal (Lemma 20), which drives the
O(√|S|·log n / log log n) bound of Theorem 19.

After the coin flips the request is connected in the cheapest feasible way
against the now-open facilities (per-commodity to nearest facilities, or all
commodities to one large facility — Figure 3 of the paper illustrates exactly
this choice).  If some demanded commodity is offered nowhere, the cheapest
small-facility option realizing ``X(r, e)`` is opened deterministically as a
feasibility fallback (DESIGN.md §4.2); this only affects constants.
"""

from __future__ import annotations

from typing import Dict, Optional


from repro.accel.classes import ClassDistanceIndex
from repro.algorithms.base import OnlineAlgorithm
from repro.core.assignment import Assignment
from repro.core.instance import Instance
from repro.core.requests import Request
from repro.core.state import OnlineState
from repro.core.trace import CoinFlipEvent
from repro.costs.classes import CostClassIndex
from repro.exceptions import AlgorithmError

__all__ = ["RandOMFLPAlgorithm"]


class RandOMFLPAlgorithm(OnlineAlgorithm):
    """Randomized Meyerson-style online algorithm for the OMFLP (Algorithm 2).

    With ``use_accel`` (the default) the static per-class distances
    ``d(C^τ_i, ·)`` come from precomputed
    :class:`~repro.accel.classes.ClassDistanceIndex` tables (O(1) per query)
    instead of an O(n) scan per class per request; coin flips, trace events
    and every decision are bit-identical to the reference path
    (``use_accel=False``).
    """

    randomized = True

    def __init__(self, *, use_accel: bool = True) -> None:
        self.name = "rand-omflp"
        self._use_accel = bool(use_accel)
        self._instance: Optional[Instance] = None
        self._small_classes: Dict[int, CostClassIndex] = {}
        self._large_classes: Optional[CostClassIndex] = None
        self._small_accel: Dict[int, ClassDistanceIndex] = {}
        self._large_accel: Optional[ClassDistanceIndex] = None

    # ------------------------------------------------------------------
    def prepare(self, instance: Instance, state: OnlineState, rng) -> None:
        self._instance = instance
        # The facility cost classes are static (costs never change), so they
        # are built once per run; singleton classes are built lazily because a
        # run may never see some commodities.
        self._small_classes = {}
        self._small_accel = {}
        self._large_classes = CostClassIndex(
            instance.metric, instance.cost_function, instance.cost_function.full_set
        )
        self._large_accel = (
            ClassDistanceIndex.from_cost_index(instance.metric, self._large_classes)
            if self._use_accel
            else None
        )

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """RAND-OMFLP carries no per-run decision state of its own.

        Every attribute built after ``prepare`` (`_small_classes`,
        `_small_accel` and their memo caches) is a pure function of the static
        instance; the run's decisions live entirely in the shared
        :class:`OnlineState` and the RNG stream, both captured by the session
        snapshot.  The snapshot is therefore empty.
        """
        if self._instance is None:
            raise AlgorithmError("prepare() was not called before state_dict()")
        return {}

    def load_state_dict(self, state) -> None:
        if self._instance is None:
            raise AlgorithmError("prepare() was not called before load_state_dict()")
        if state:
            raise AlgorithmError(
                f"rand-omflp snapshots are empty, got keys {sorted(state)}"
            )

    def _classes_for(self, commodity: int) -> CostClassIndex:
        index = self._small_classes.get(commodity)
        if index is None:
            index = CostClassIndex(
                self._instance.metric, self._instance.cost_function, (commodity,)
            )
            self._small_classes[commodity] = index
        return index

    def _accel_for(self, commodity: int) -> ClassDistanceIndex:
        accel = self._small_accel.get(commodity)
        if accel is None:
            accel = ClassDistanceIndex.from_cost_index(
                self._instance.metric, self._classes_for(commodity)
            )
            self._small_accel[commodity] = accel
        return accel

    def _provider_for(self, commodity: int):
        """Distance-query provider for one commodity's cost classes.

        :class:`CostClassIndex` (reference scans) and
        :class:`ClassDistanceIndex` (memoized columns) expose the same
        bit-identical ``distance_to_class`` / ``nearest_point_of_class`` /
        ``cheapest_open_option`` surface, so every call site below selects
        the provider once and stays branch-free.
        """
        return self._accel_for(commodity) if self._use_accel else self._classes_for(commodity)

    def _large_provider(self):
        return self._large_accel if self._use_accel else self._large_classes

    # ------------------------------------------------------------------
    # Budgets (Section 4.1)
    # ------------------------------------------------------------------
    def _small_budget(self, state: OnlineState, request: Request, commodity: int) -> float:
        """``X(r, e)``."""
        existing = state.distance_to_nearest(commodity, request.point)
        _, cheapest_open = self._provider_for(commodity).cheapest_open_option(request.point)
        return min(existing, cheapest_open)

    def _large_budget(self, state: OnlineState, request: Request) -> float:
        """``Z(r)``."""
        existing = state.distance_to_nearest_large(request.point)
        _, cheapest_open = self._large_provider().cheapest_open_option(request.point)
        return min(existing, cheapest_open)

    # ------------------------------------------------------------------
    def process(self, request: Request, state: OnlineState, rng) -> None:
        if self._instance is None:
            raise AlgorithmError("prepare() was not called before process()")
        point = request.point
        commodities = sorted(request.commodities)

        small_budgets = {e: self._small_budget(state, request, e) for e in commodities}
        x_total = float(sum(small_budgets.values()))
        z_total = self._large_budget(state, request)
        budget = min(x_total, z_total)

        # ----- coin flips for small facilities -------------------------------
        for e in commodities:
            share = (small_budgets[e] / x_total) if x_total > 0 else (1.0 / len(commodities))
            classes = self._classes_for(e)
            provider = self._provider_for(e)
            previous_distance = budget
            for cls in classes.classes:
                distance_i = provider.distance_to_class(cls.index, point)
                increment = previous_distance - distance_i
                previous_distance = distance_i
                if cls.value <= 0:
                    probability = 1.0 if increment > 0 else 0.0
                else:
                    probability = min(max(increment / cls.value, 0.0), 1.0) * share
                success = probability > 0 and rng.uniform() < probability
                state.trace.record(
                    CoinFlipEvent(
                        request_index=request.index,
                        kind="small",
                        commodity=e,
                        class_index=cls.index,
                        probability=probability,
                        success=success,
                    )
                )
                if success:
                    target, _ = provider.nearest_point_of_class(cls.index, point)
                    state.open_facility(request, target, (e,))

        # ----- coin flips for the large facility -----------------------------
        large_provider = self._large_provider()
        previous_distance = budget
        for cls in self._large_classes.classes:
            distance_i = large_provider.distance_to_class(cls.index, point)
            increment = previous_distance - distance_i
            previous_distance = distance_i
            if cls.value <= 0:
                probability = 1.0 if increment > 0 else 0.0
            else:
                probability = min(max(increment / cls.value, 0.0), 1.0)
            success = probability > 0 and rng.uniform() < probability
            state.trace.record(
                CoinFlipEvent(
                    request_index=request.index,
                    kind="large",
                    commodity=None,
                    class_index=cls.index,
                    probability=probability,
                    success=success,
                )
            )
            if success:
                target, _ = large_provider.nearest_point_of_class(cls.index, point)
                state.open_facility(request, target, self._instance.cost_function.full_set)

        # ----- feasibility fallback ------------------------------------------
        for e in commodities:
            if state.distance_to_nearest(e, point) == float("inf"):
                provider = self._provider_for(e)
                best_index, _ = provider.cheapest_open_option(point)
                target, _ = provider.nearest_point_of_class(best_index, point)
                state.open_facility(request, target, (e,))

        # ----- connect the request in the cheapest feasible way --------------
        assignment = self._cheapest_assignment(state, request)
        state.record_assignment(request, assignment)

    # ------------------------------------------------------------------
    def _cheapest_assignment(self, state: OnlineState, request: Request) -> Assignment:
        """Cheapest of: per-commodity nearest facilities vs one large facility."""
        commodities = sorted(request.commodities)
        per_commodity: Dict[int, int] = {}
        distance_of: Dict[int, float] = {}
        for e in commodities:
            entry = state.nearest_offering(e, request.point)
            if entry is None:  # pragma: no cover - prevented by the fallback above
                raise AlgorithmError(f"no open facility offers commodity {e}")
            facility, distance = entry
            per_commodity[e] = facility.id
            # nearest_offering's distance is exactly d(r, facility.point), so
            # the connection cost needs no O(n) metric.distance row lookups.
            distance_of[facility.id] = distance
        # Summed in sorted-facility-id order: float addition is not
        # associative, so reducing in set (hash) order would make the cost's
        # last bits — and every equivalence/content hash built on them —
        # depend on the process's hash seed.
        per_commodity_cost = float(
            sum(distance_of[fid] for fid in sorted(set(per_commodity.values())))
        )

        large_entry = state.nearest_large(request.point)
        assignment = Assignment(request_index=request.index)
        if large_entry is not None and large_entry[1] <= per_commodity_cost:
            facility, _ = large_entry
            for e in commodities:
                assignment.assign(e, facility.id)
        else:
            for e, fid in per_commodity.items():
                assignment.assign(e, fid)
        return assignment
