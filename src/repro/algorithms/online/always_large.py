"""Always-large greedy baseline.

The opposite extreme of :class:`~repro.algorithms.online.no_prediction.NoPredictionGreedy`:
this baseline always predicts maximally — every facility it opens offers the
full commodity set ``S``.  On arrival it either connects the whole request to
the nearest open large facility or, if opening at the request's own location
is cheaper, opens a new large facility there.

The baseline brackets the design space from above: it is wasteful whenever
requests demand few commodities but opening all of ``S`` is expensive
(linear-cost regime, x = 2 in the class ``C``), complementing the
no-prediction baseline which is wasteful in the opposite regime.
"""

from __future__ import annotations

from repro.algorithms.base import OnlineAlgorithm
from repro.core.requests import Request
from repro.core.state import OnlineState

__all__ = ["AlwaysLargeGreedy"]


class AlwaysLargeGreedy(OnlineAlgorithm):
    """Greedy baseline that only ever opens facilities offering all of ``S``."""

    randomized = False

    def __init__(self) -> None:
        self.name = "always-large-greedy"

    # Snapshot hooks: stateless between requests (decisions read the shared
    # OnlineState only), so the inherited state_dict()/load_state_dict()
    # defaults are exact.

    def process(self, request: Request, state: OnlineState, rng) -> None:
        cost_function = state.instance.cost_function
        nearest = state.nearest_large(request.point)
        open_cost = cost_function.full_cost(request.point)
        if nearest is not None and nearest[1] <= open_cost:
            facility = nearest[0]
        else:
            facility = state.open_large_facility(request, request.point)
        state.assign_to_single_facility(request, facility)
