"""No-prediction greedy baseline.

Section 2 of the paper (discussion after Theorem 2): "if ALG does not predict,
i.e., it only includes commodities that were already requested when building a
facility, it builds √|S| facilities for a total price of √|S|" on the
single-point adversary whose optimum costs 1 — i.e. prediction-free algorithms
are Ω(√|S|)-competitive at best (and Ω(|S|) for cost functions with stronger
economies of scale).

This baseline never opens a facility offering a commodity that the current
request does not demand.  Per demanded commodity it takes the locally cheaper
of (a) connecting to the nearest open facility offering it and (b) opening a
new small facility at the request's own location; it exists to make the lower
bound's separation measurable.
"""

from __future__ import annotations

from repro.algorithms.base import OnlineAlgorithm
from repro.core.assignment import Assignment
from repro.core.requests import Request
from repro.core.state import OnlineState

__all__ = ["NoPredictionGreedy"]


class NoPredictionGreedy(OnlineAlgorithm):
    """Greedy baseline that never offers undemanded commodities."""

    randomized = False

    def __init__(self) -> None:
        self.name = "no-prediction-greedy"

    # Snapshot hooks: the greedy keeps no state between requests (every
    # decision reads the shared OnlineState only), so the inherited
    # state_dict() -> {} / load_state_dict({}) defaults are exact.

    def process(self, request: Request, state: OnlineState, rng) -> None:
        cost_function = state.instance.cost_function
        assignment = Assignment(request_index=request.index)
        for commodity in sorted(request.commodities):
            nearest = state.nearest_offering(commodity, request.point)
            open_cost = cost_function.cost(request.point, (commodity,))
            if nearest is not None and nearest[1] <= open_cost:
                assignment.assign(commodity, nearest[0].id)
            else:
                facility = state.open_facility(request, request.point, (commodity,))
                assignment.assign(commodity, facility.id)
        state.record_assignment(request, assignment)
