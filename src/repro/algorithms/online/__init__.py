"""Online algorithms for the OMFLP (the paper's contribution and baselines)."""

from repro.algorithms.online.always_large import AlwaysLargeGreedy
from repro.algorithms.online.fotakis_ofl import FotakisOFLAlgorithm
from repro.algorithms.online.meyerson_ofl import MeyersonOFLAlgorithm
from repro.algorithms.online.no_prediction import NoPredictionGreedy
from repro.algorithms.online.pd_omflp import PDOMFLPAlgorithm
from repro.algorithms.online.per_commodity import PerCommodityAlgorithm
from repro.algorithms.online.rand_omflp import RandOMFLPAlgorithm
from repro.algorithms.online.threshold import ThresholdPDAlgorithm

__all__ = [
    "PDOMFLPAlgorithm",
    "ThresholdPDAlgorithm",
    "RandOMFLPAlgorithm",
    "FotakisOFLAlgorithm",
    "MeyersonOFLAlgorithm",
    "PerCommodityAlgorithm",
    "NoPredictionGreedy",
    "AlwaysLargeGreedy",
]
