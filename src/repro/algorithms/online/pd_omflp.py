"""PD-OMFLP — the deterministic primal–dual algorithm of Section 3 (Algorithm 1).

On arrival of a request ``r`` with commodity set ``s_r`` the algorithm raises a
common dual level for all not-yet-served commodities of ``r`` and reacts to the
first of four constraint families becoming tight:

(1) ``a_{re} <= d(F(e), r)`` — connect commodity ``e`` to the nearest open
    facility offering it;
(2) ``sum_{e in s_r} a_{re} <= d(F̂, r)`` — connect the whole request to the
    nearest open large facility;
(3) ``(a_{re} - d(m, r))_+ + sum_{j earlier, e in s_j}
    (min{a_{je}, d(F(e), j)} - d(m, j))_+ <= f^{{e}}_m`` — (temporarily) open a
    new small facility for ``e`` at ``m``;
(4) ``(sum_e a_{re} - d(m, r))_+ + sum_{j earlier}
    (min{sum_e a_{je}, d(F̂, j)} - d(m, j))_+ <= f^S_m`` — open a new large
    facility at ``m`` and connect the whole request to it (any temporarily
    opened small facilities are discarded).

When the request finishes without a large-facility event, the temporarily
opened small facilities are opened for real (line 10 of Algorithm 1).

Theorem 4: under Condition 1 the algorithm is ``O(sqrt(|S|) log n)``
competitive.  The dual variables it raises are exposed through
:meth:`PDOMFLPAlgorithm.duals` so that the analysis machinery (Corollary 8 and
the dual-feasibility scaling of Corollary 17) can be checked empirically.

Implementation conventions (DESIGN.md §4.1): the bid sums of constraints
(3)/(4) range over requests that arrived strictly earlier; facilities opened
while processing a request join ``F`` only once actually opened; ties are
broken deterministically in the order (1), (3), (2), (4), then by point and
commodity index.  All per-point quantities are numpy vectors over the whole
point set, so one event search is a handful of vectorized reductions.

The class accepts a ``large_configuration`` parameter.  The default is the
full commodity set ``S`` (the paper's algorithm); restricting it realizes the
closing-remarks variant in which "heavy" commodities are excluded from the
large facility and are always served by small facilities.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.accel.history import BidHistoryBuffer
from repro.algorithms.base import OnlineAlgorithm
from repro.core.assignment import Assignment
from repro.core.instance import Instance
from repro.core.requests import Request
from repro.core.state import OnlineState
from repro.core.trace import DualFreezeEvent
from repro.dual.variables import DualVariableStore
from repro.exceptions import AlgorithmError, SnapshotError
from repro.utils.encoding import decode_float, encode_float

__all__ = ["PDOMFLPAlgorithm"]

#: Numerical slack used when comparing trigger levels.
_EPS = 1e-12


class PDOMFLPAlgorithm(OnlineAlgorithm):
    """Deterministic primal–dual online algorithm for the OMFLP (Algorithm 1)."""

    randomized = False

    def __init__(
        self,
        *,
        large_configuration: Optional[Iterable[int]] = None,
        use_accel: bool = True,
    ) -> None:
        self._large_override = (
            frozenset(int(e) for e in large_configuration)
            if large_configuration is not None
            else None
        )
        self.name = "pd-omflp" if self._large_override is None else "pd-omflp-restricted"
        self._use_accel = bool(use_accel)
        # Per-run state; initialized in prepare().
        self._duals: Optional[DualVariableStore] = None
        self._instance: Optional[Instance] = None
        self._large_set: FrozenSet[int] = frozenset()
        self._history: List[Request] = []
        self._nearest_small: Dict[Tuple[int, int], float] = {}
        self._nearest_large: Dict[int, float] = {}
        self._row_cache: Dict[int, np.ndarray] = {}
        self._f_small_cache: Dict[int, np.ndarray] = {}
        self._f_large: Optional[np.ndarray] = None
        # Accelerated bid-history buffers (see repro.accel.history): one per
        # commodity for constraint (3), one for the large constraint (4).
        self._small_buffers: Dict[int, BidHistoryBuffer] = {}
        self._large_buffer: Optional[BidHistoryBuffer] = None

    # ------------------------------------------------------------------
    # Run-loop hooks
    # ------------------------------------------------------------------
    def prepare(self, instance: Instance, state: OnlineState, rng) -> None:
        self._instance = instance
        self._duals = DualVariableStore(instance.num_commodities)
        if self._large_override is not None:
            invalid = [e for e in self._large_override if not 0 <= e < instance.num_commodities]
            if invalid:
                raise AlgorithmError(
                    f"large_configuration contains unknown commodities {sorted(invalid)}"
                )
            if not self._large_override:
                raise AlgorithmError("large_configuration must not be empty")
            self._large_set = self._large_override
        else:
            self._large_set = instance.cost_function.full_set
        self._history = []
        self._nearest_small = {}
        self._nearest_large = {}
        self._row_cache = {}
        self._f_small_cache = {}
        self._small_buffers = {}
        self._large_buffer = BidHistoryBuffer(instance.metric) if self._use_accel else None
        all_points = list(range(instance.num_points))
        self._f_large = instance.cost_function.costs_over_points(self._large_set, all_points)

    def duals(self) -> Optional[DualVariableStore]:
        return self._duals

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Duals plus the bid-history state of the active hot path.

        The accel path serializes its :class:`BidHistoryBuffer` contents, the
        reference path its request history and nearest-distance caches; the
        static per-point cost vectors and distance-row caches are rebuilt by
        ``prepare`` / lazily.  Nearest distances may be ``inf`` and are
        string-encoded for strict JSON.
        """
        if self._duals is None:
            raise AlgorithmError("prepare() was not called before state_dict()")
        data: Dict[str, Any] = {"duals": self._duals.to_dict()}
        if self._use_accel:
            data["small_buffers"] = [
                [commodity, buffer.state_dict()]
                for commodity, buffer in self._small_buffers.items()
            ]
            data["large_buffer"] = self._large_buffer.state_dict()
        else:
            data["history"] = [
                [r.index, r.point, sorted(r.commodities)] for r in self._history
            ]
            data["nearest_small"] = [
                [request_index, commodity, encode_float(distance)]
                for (request_index, commodity), distance in self._nearest_small.items()
            ]
            data["nearest_large"] = [
                [request_index, encode_float(distance)]
                for request_index, distance in self._nearest_large.items()
            ]
        return data

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        if self._duals is None:
            raise AlgorithmError("prepare() was not called before load_state_dict()")
        if len(self._duals) or self._history or self._small_buffers:
            raise SnapshotError(
                "PDOMFLPAlgorithm.load_state_dict requires a freshly prepared run"
            )
        if self._use_accel != ("small_buffers" in state):
            raise SnapshotError(
                "snapshot was taken on the "
                f"{'reference' if self._use_accel else 'accelerated'} hot path; "
                f"construct the algorithm with use_accel={not self._use_accel} to restore it"
            )
        self._duals = DualVariableStore.from_dict(state["duals"])
        if self._use_accel:
            for commodity, buffer_state in state["small_buffers"]:
                buffer = BidHistoryBuffer(self._instance.metric)
                buffer.load_state_dict(buffer_state)
                self._small_buffers[int(commodity)] = buffer
            self._large_buffer.load_state_dict(state["large_buffer"])
        else:
            self._history = [
                Request(
                    index=int(index),
                    point=int(point),
                    commodities=frozenset(int(e) for e in commodities),
                )
                for index, point, commodities in state["history"]
            ]
            self._nearest_small = {
                (int(request_index), int(commodity)): decode_float(distance)
                for request_index, commodity, distance in state["nearest_small"]
            }
            self._nearest_large = {
                int(request_index): decode_float(distance)
                for request_index, distance in state["nearest_large"]
            }

    # ------------------------------------------------------------------
    # Cached quantities
    # ------------------------------------------------------------------
    def _distance_row(self, point: int) -> np.ndarray:
        row = self._row_cache.get(point)
        if row is None:
            row = np.asarray(self._instance.metric.distances_from(point), dtype=np.float64)
            self._row_cache[point] = row
        return row

    def _f_small(self, commodity: int) -> np.ndarray:
        vector = self._f_small_cache.get(commodity)
        if vector is None:
            all_points = list(range(self._instance.num_points))
            vector = self._instance.cost_function.costs_over_points((commodity,), all_points)
            self._f_small_cache[commodity] = vector
        return vector

    def _register_opened_facility(self, point: int, configuration: FrozenSet[int]) -> None:
        """Update the cached nearest-facility distances of earlier requests."""
        if self._use_accel:
            # Each commodity buffer holds exactly the earlier requests that
            # demanded that commodity, so the reference's per-entry minimum
            # becomes one vectorized fold per affected buffer.
            row = self._distance_row(point)
            for commodity in configuration:
                buffer = self._small_buffers.get(commodity)
                if buffer is not None:
                    buffer.update_nearest(row)
            if configuration >= self._large_set:
                self._large_buffer.update_nearest(row)
            return
        for request in self._history:
            distance = float(self._distance_row(point)[request.point])
            for commodity in configuration & request.commodities:
                key = (request.index, commodity)
                if distance < self._nearest_small.get(key, float("inf")):
                    self._nearest_small[key] = distance
            if configuration >= self._large_set:
                if distance < self._nearest_large.get(request.index, float("inf")):
                    self._nearest_large[request.index] = distance

    def _nearest_covering_large(self, state: OnlineState, point: int) -> Optional[Tuple[object, float]]:
        """Nearest open facility covering the large configuration, or ``None``."""
        if self._large_set == self._instance.cost_function.full_set:
            return state.nearest_large(point)
        return state.store.nearest_covering(self._large_set, point)

    # ------------------------------------------------------------------
    # Bid sums of earlier requests (constraints (3) and (4))
    # ------------------------------------------------------------------
    def _base_small(self, commodity: int) -> np.ndarray:
        """``sum_{j earlier, e in s_j} (min{a_{je}, d(F(e), j)} - d(m, j))_+`` over all m."""
        num_points = self._instance.num_points
        if self._use_accel:
            buffer = self._small_buffers.get(commodity)
            if buffer is None:
                return np.zeros(num_points, dtype=np.float64)
            return buffer.base()
        relevant = [j for j in self._history if commodity in j.commodities]
        if not relevant:
            return np.zeros(num_points, dtype=np.float64)
        bids = np.array(
            [
                min(
                    self._duals.get(j.index, commodity),
                    self._nearest_small.get((j.index, commodity), float("inf")),
                )
                for j in relevant
            ],
            dtype=np.float64,
        )
        rows = np.vstack([self._distance_row(j.point) for j in relevant])
        return np.maximum(bids[:, None] - rows, 0.0).sum(axis=0)

    def _base_large(self) -> np.ndarray:
        """``sum_{j earlier} (min{sum_e a_{je}, d(F̂, j)} - d(m, j))_+`` over all m."""
        num_points = self._instance.num_points
        if self._use_accel:
            return self._large_buffer.base()
        relevant = [j for j in self._history if j.commodities & self._large_set]
        if not relevant:
            return np.zeros(num_points, dtype=np.float64)
        bids = np.array(
            [
                min(
                    sum(
                        self._duals.get(j.index, e)
                        for e in j.commodities & self._large_set
                    ),
                    self._nearest_large.get(j.index, float("inf")),
                )
                for j in relevant
            ],
            dtype=np.float64,
        )
        rows = np.vstack([self._distance_row(j.point) for j in relevant])
        return np.maximum(bids[:, None] - rows, 0.0).sum(axis=0)

    # ------------------------------------------------------------------
    # Request processing
    # ------------------------------------------------------------------
    def process(self, request: Request, state: OnlineState, rng) -> None:
        instance = self._instance
        if instance is None:
            raise AlgorithmError("prepare() was not called before process()")
        point = request.point
        d_r = self._distance_row(point)
        commodities = sorted(request.commodities)
        large_members = [e for e in commodities if e in self._large_set]

        # Static quantities for this arrival (facilities do not change until
        # the processing opens one, which either terminates the large part or
        # happens after the loop).
        dist_small = {e: state.distance_to_nearest(e, point) for e in commodities}
        nearest_large_entry = self._nearest_covering_large(state, point)
        dist_large = nearest_large_entry[1] if nearest_large_entry is not None else float("inf")

        slack_small: Dict[int, np.ndarray] = {}
        trigger_small_open: Dict[int, np.ndarray] = {}
        for e in commodities:
            base = self._base_small(e)
            slack = np.maximum(self._f_small(e) - base, 0.0)
            slack_small[e] = slack
            trigger_small_open[e] = d_r + slack
        base_large = self._base_large()
        slack_large = np.maximum(self._f_large - base_large, 0.0)

        # Event-driven growth of the common dual level.
        unserved = set(commodities)
        frozen: Dict[int, float] = {}
        served_by: Dict[int, int] = {}  # commodity -> facility id (existing or opened later)
        temp_small: Dict[int, int] = {}  # commodity -> point of a temporarily open small facility
        level = 0.0
        large_done = False

        while unserved:
            event = self._next_event(
                unserved,
                frozen,
                dist_small,
                trigger_small_open,
                dist_large,
                slack_large,
                d_r,
                large_members,
                large_done,
            )
            if event is None:
                raise AlgorithmError(
                    f"PD-OMFLP found no tight constraint for request {request.index}"
                )
            level = max(level, event[0])
            kind = event[1]

            if kind == "connect-small":
                commodity = event[2]
                nearest = state.nearest_offering(commodity, point)
                if nearest is None:
                    raise AlgorithmError(
                        f"constraint (1) tight for commodity {commodity} but no facility offers it"
                    )
                frozen[commodity] = level
                unserved.discard(commodity)
                served_by[commodity] = nearest[0].id
                state.trace.record(
                    DualFreezeEvent(
                        request_index=request.index,
                        commodity=commodity,
                        value=level,
                        reason="constraint (1): connected to existing facility",
                    )
                )
            elif kind == "open-small":
                commodity, m = event[2], event[3]
                frozen[commodity] = level
                unserved.discard(commodity)
                temp_small[commodity] = m
                state.trace.record(
                    DualFreezeEvent(
                        request_index=request.index,
                        commodity=commodity,
                        value=level,
                        reason=f"constraint (3): temporarily opened small facility at point {m}",
                    )
                )
            elif kind in ("connect-large", "open-large"):
                # Freeze all still-unserved commodities of the large part at
                # the current level; connect every commodity of s_r ∩ L to the
                # (existing or new) large facility; discard their temporary
                # small facilities (line 8 of Algorithm 1).
                for e in list(unserved):
                    if e in self._large_set:
                        frozen[e] = level
                        unserved.discard(e)
                        state.trace.record(
                            DualFreezeEvent(
                                request_index=request.index,
                                commodity=e,
                                value=level,
                                reason=f"constraint ({'2' if kind == 'connect-large' else '4'})",
                            )
                        )
                if kind == "connect-large":
                    entry = self._nearest_covering_large(state, point)
                    if entry is None:
                        raise AlgorithmError(
                            "constraint (2) tight but no large facility is open"
                        )
                    facility = entry[0]
                else:
                    m = event[2]
                    facility = state.open_facility(request, m, self._large_set)
                    self._register_opened_facility(facility.point, facility.configuration)
                for e in large_members:
                    served_by[e] = facility.id
                    temp_small.pop(e, None)
                large_done = True
            else:  # pragma: no cover - defensive
                raise AlgorithmError(f"unknown event kind {kind!r}")

        # Line 10 of Algorithm 1: open the remaining temporarily open small
        # facilities and connect their commodities to them.
        for commodity, m in sorted(temp_small.items()):
            facility = state.open_facility(request, m, (commodity,))
            self._register_opened_facility(facility.point, facility.configuration)
            served_by[commodity] = facility.id

        # Freeze the dual variables of this request.
        for commodity in commodities:
            self._duals.set(request.index, commodity, frozen[commodity])

        assignment = Assignment(request_index=request.index)
        for commodity in commodities:
            assignment.assign(commodity, served_by[commodity])
        state.record_assignment(request, assignment)

        # The request joins the bid history; cache its nearest-facility
        # distances with respect to the facility set *after* its own
        # processing.  (self._history backs only the reference bid sums, so
        # the accel path does not grow it — stale entries would otherwise
        # linger for anyone inspecting it.)
        if self._use_accel:
            row = self._distance_row(point)
            for commodity in commodities:
                buffer = self._small_buffers.get(commodity)
                if buffer is None:
                    buffer = self._small_buffers[commodity] = BidHistoryBuffer(
                        self._instance.metric
                    )
                buffer.append(
                    point,
                    self._duals.get(request.index, commodity),
                    state.distance_to_nearest(commodity, point),
                    row=row,
                )
            if request.commodities & self._large_set:
                dual_sum = sum(
                    self._duals.get(request.index, e)
                    for e in request.commodities & self._large_set
                )
                entry = self._nearest_covering_large(state, point)
                self._large_buffer.append(
                    point,
                    dual_sum,
                    entry[1] if entry is not None else float("inf"),
                    row=row,
                )
        else:
            self._history.append(request)
            for commodity in commodities:
                self._nearest_small[(request.index, commodity)] = state.distance_to_nearest(
                    commodity, point
                )
            entry = self._nearest_covering_large(state, point)
            self._nearest_large[request.index] = entry[1] if entry is not None else float("inf")

    # ------------------------------------------------------------------
    def _next_event(
        self,
        unserved: set,
        frozen: Dict[int, float],
        dist_small: Dict[int, float],
        trigger_small_open: Dict[int, np.ndarray],
        dist_large: float,
        slack_large: np.ndarray,
        d_r: np.ndarray,
        large_members: Sequence[int],
        large_done: bool,
    ) -> Optional[Tuple[float, str, int, int]]:
        """Find the earliest tight constraint for the current growth phase.

        Returns ``(trigger_level, kind, *payload)`` where kind is one of
        ``"connect-small"`` (payload: commodity), ``"open-small"`` (payload:
        commodity, point), ``"connect-large"`` (no payload) and
        ``"open-large"`` (payload: point).  Ties are broken in exactly that
        order, then by commodity/point index (the iteration order below).
        """
        best: Optional[Tuple[float, str, int, int]] = None

        def better(candidate_level: float) -> bool:
            return best is None or candidate_level < best[0] - _EPS

        # Constraint (1): connect a single commodity to an existing facility.
        for e in sorted(unserved):
            level = dist_small[e]
            if np.isfinite(level) and better(level):
                best = (float(level), "connect-small", e, -1)

        # Constraint (3): open a new small facility.
        for e in sorted(unserved):
            vector = trigger_small_open[e]
            m = int(np.argmin(vector))
            level = float(vector[m])
            if better(level):
                best = (level, "open-small", e, m)

        # Constraints (2) and (4) only concern the large part of the request
        # and only while some of its commodities are still growing.
        unserved_large = [e for e in large_members if e in unserved]
        if unserved_large and not large_done:
            k = len(unserved_large)
            frozen_sum = sum(frozen.get(e, 0.0) for e in large_members if e not in unserved)
            if np.isfinite(dist_large):
                level = (dist_large - frozen_sum) / k
                if better(level):
                    best = (float(level), "connect-large", -1, -1)
            vector = (d_r + slack_large - frozen_sum) / k
            m = int(np.argmin(vector))
            level = float(vector[m])
            if better(level):
                best = (level, "open-large", m, -1)
        return best
