"""Per-commodity decomposition baseline.

Section 1.3 of the paper: "it is trivial to achieve an algorithm having a
competitive ratio of O(|S| · log n / log log n) simply by solving an instance
of the OFLP for each commodity separately, using Fotakis' algorithm, for
example."  This baseline does exactly that: it maintains one independent
single-commodity online-facility-location instance per commodity (either the
deterministic primal–dual substrate or Meyerson's randomized one) whose
facility opening costs are the singleton costs ``f^{{e}}_m``.

On instances whose optimal solution bundles many commodities into shared
facilities (e.g. the Theorem-2 adversary), this baseline loses a factor of
Θ(|S| / √|S|) = Θ(√|S|) against PD-OMFLP / RAND-OMFLP — the separation the
``baseline-separation`` experiment measures.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.algorithms.base import OnlineAlgorithm
from repro.algorithms.online.fotakis_ofl import SingleCommodityPrimalDual
from repro.algorithms.online.meyerson_ofl import SingleCommodityMeyerson
from repro.core.assignment import Assignment
from repro.core.instance import Instance
from repro.core.requests import Request
from repro.core.state import OnlineState
from repro.exceptions import AlgorithmError, SnapshotError

__all__ = ["PerCommodityAlgorithm"]


class PerCommodityAlgorithm(OnlineAlgorithm):
    """Independent single-commodity online facility location per commodity.

    Parameters
    ----------
    base:
        ``"fotakis"`` (deterministic primal–dual, default) or ``"meyerson"``
        (randomized).
    use_accel:
        Forwarded to every per-commodity helper; selects the accelerated
        (incremental distance-cache) or the bit-identical reference hot path.
    """

    def __init__(self, base: str = "fotakis", *, use_accel: bool = True) -> None:
        if base not in ("fotakis", "meyerson"):
            raise AlgorithmError(f"unknown base algorithm {base!r}")
        self._base = base
        self._use_accel = bool(use_accel)
        self.name = f"per-commodity-{base}"
        self.randomized = base == "meyerson"
        self._instance: Optional[Instance] = None
        self._helpers: Dict[int, object] = {}
        # (commodity, helper facility slot) -> real facility id
        self._facility_of_slot: Dict[Tuple[int, int], int] = {}

    def prepare(self, instance: Instance, state: OnlineState, rng) -> None:
        self._instance = instance
        self._helpers = {}
        self._facility_of_slot = {}

    def _helper_for(self, commodity: int):
        helper = self._helpers.get(commodity)
        if helper is None:
            costs = self._instance.cost_function.costs_over_points(
                (commodity,), list(range(self._instance.num_points))
            )
            if self._base == "fotakis":
                helper = SingleCommodityPrimalDual(
                    self._instance.metric, costs, use_accel=self._use_accel
                )
            else:
                helper = SingleCommodityMeyerson(
                    self._instance.metric, costs, use_accel=self._use_accel
                )
            self._helpers[commodity] = helper
        return helper

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Per-commodity helper snapshots (in creation order) plus slot map."""
        if self._instance is None:
            raise AlgorithmError("prepare() was not called before state_dict()")
        return {
            "helpers": [
                [commodity, helper.state_dict()]
                for commodity, helper in self._helpers.items()
            ],
            "facility_of_slot": [
                [commodity, slot, fid]
                for (commodity, slot), fid in self._facility_of_slot.items()
            ],
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        if self._instance is None:
            raise AlgorithmError("prepare() was not called before load_state_dict()")
        if self._helpers:
            raise SnapshotError(
                "PerCommodityAlgorithm.load_state_dict requires a freshly prepared run"
            )
        for commodity, helper_state in state["helpers"]:
            self._helper_for(int(commodity)).load_state_dict(helper_state)
        self._facility_of_slot = {
            (int(commodity), int(slot)): int(fid)
            for commodity, slot, fid in state["facility_of_slot"]
        }

    def process(self, request: Request, state: OnlineState, rng) -> None:
        if self._instance is None:
            raise AlgorithmError("prepare() was not called before process()")
        assignment = Assignment(request_index=request.index)
        for commodity in sorted(request.commodities):
            helper = self._helper_for(commodity)
            if self._base == "fotakis":
                kind, payload, _ = helper.decide(request.point)
                if kind == "open":
                    facility = state.open_facility(request, payload, (commodity,))
                    slot = len(helper.facility_points) - 1
                    self._facility_of_slot[(commodity, slot)] = facility.id
                    facility_id = facility.id
                else:
                    facility_id = self._facility_of_slot[(commodity, payload)]
            else:
                before = len(helper.facility_points)
                _, slot, _ = helper.decide(request.point, rng)
                helper_points = helper.facility_points
                for new_slot in range(before, len(helper_points)):
                    facility = state.open_facility(request, helper_points[new_slot], (commodity,))
                    self._facility_of_slot[(commodity, new_slot)] = facility.id
                facility_id = self._facility_of_slot[(commodity, slot)]
            assignment.assign(commodity, facility_id)
        state.record_assignment(request, assignment)
