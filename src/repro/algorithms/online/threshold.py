"""Threshold / restricted-large-configuration variants of PD-OMFLP.

Two uses, both grounded in the paper:

* **Section 3.3 (Theorem 18).**  For cost functions ``g_x`` in the class
  ``C`` the analysis threshold between "small" and "large" configurations
  moves from ``sqrt(|S|)`` to ``a = sqrt(|S|)^x``.  The algorithm itself is
  unchanged — it still opens singleton and full-``S`` facilities — so
  :func:`tuned_pd_for_power_cost` simply returns a plain PD-OMFLP instance
  (with the tuned threshold recorded for reporting); the experiment uses the
  threshold to annotate the predicted exponent.

* **Closing remarks (Section 5).**  When a few *heavy* commodities violate
  Condition 1, the paper suggests running the algorithms "in which the heavy
  commodities are excluded such that a large facility becomes one including
  all non-heavy commodities".  :class:`ThresholdPDAlgorithm` realizes exactly
  that: it is PD-OMFLP whose large configuration is ``S`` minus an explicit
  set of excluded (heavy) commodities, which are then always served by small
  facilities.
"""

from __future__ import annotations

from typing import Iterable

from repro.algorithms.online.pd_omflp import PDOMFLPAlgorithm
from repro.costs.count_based import PowerCost
from repro.exceptions import AlgorithmError

__all__ = ["ThresholdPDAlgorithm", "tuned_pd_for_power_cost"]


class ThresholdPDAlgorithm(PDOMFLPAlgorithm):
    """PD-OMFLP with a restricted large configuration (heavy commodities excluded).

    Parameters
    ----------
    num_commodities:
        Size of the commodity universe ``|S|``.
    excluded:
        Commodities that are never offered by large facilities (the "heavy"
        commodities of the closing remarks); they are always served by small
        facilities.
    use_accel:
        Forwarded to PD-OMFLP: selects the accelerated or the bit-identical
        reference hot path.

    The snapshot hooks (``state_dict`` / ``load_state_dict``) are inherited
    unchanged from :class:`PDOMFLPAlgorithm` — the excluded set is constructor
    configuration, not per-run state, so a restored session only needs the
    algorithm to be rebuilt with the same arguments.
    """

    def __init__(
        self, num_commodities: int, excluded: Iterable[int] = (), *, use_accel: bool = True
    ) -> None:
        excluded_set = frozenset(int(e) for e in excluded)
        if any(not 0 <= e < num_commodities for e in excluded_set):
            raise AlgorithmError(
                f"excluded commodities {sorted(excluded_set)} out of range [0, {num_commodities})"
            )
        large = frozenset(range(num_commodities)) - excluded_set
        if not large:
            raise AlgorithmError("at least one commodity must remain in the large configuration")
        super().__init__(large_configuration=large, use_accel=use_accel)
        self.excluded = excluded_set
        self.name = "pd-omflp-heavy-excluded" if excluded_set else "pd-omflp"


def tuned_pd_for_power_cost(cost: PowerCost) -> PDOMFLPAlgorithm:
    """PD-OMFLP for a cost function of the class ``C`` with its tuned threshold.

    Theorem 18: for ``g_x`` the optimal analysis threshold is
    ``a = g_x(|S|) = sqrt(|S|)^x`` and the resulting competitive ratio is
    ``O(sqrt(|S|)^{(2x - x^2)/2} log n)``.  The algorithm does not change; the
    returned instance carries the tuned threshold and the predicted exponent
    as attributes so that the Theorem-18 experiment can annotate its tables.
    """
    algorithm = PDOMFLPAlgorithm()
    algorithm.name = f"pd-omflp(x={cost.exponent_x:g})"
    algorithm.tuned_threshold = cost.tuned_threshold()
    algorithm.predicted_upper_exponent = cost.predicted_upper_exponent()
    algorithm.predicted_lower_exponent = cost.predicted_lower_exponent()
    return algorithm
