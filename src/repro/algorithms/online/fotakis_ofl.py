"""Fotakis' deterministic primal–dual algorithm for online facility location.

Fotakis (2007) gave a simple primal–dual online algorithm for the classical
(single-commodity) Online Facility Location Problem that is O(log n)
competitive; it is the basis of the paper's deterministic algorithm
(Section 3.1: "It is inspired by the primal dual formulation of Fotakis'
deterministic algorithm [5] for the OFLP presented in [14]").

Two artifacts live here:

* :class:`SingleCommodityPrimalDual` — a self-contained helper that runs the
  primal–dual logic for *one* commodity against its own private facility set.
  It is reused by the per-commodity decomposition baseline
  (:class:`~repro.algorithms.online.per_commodity.PerCommodityAlgorithm`).
* :class:`FotakisOFLAlgorithm` — the classical OFL algorithm as an
  :class:`~repro.algorithms.base.OnlineAlgorithm` for instances with
  ``|S| = 1`` (used by the substrate sanity experiment).

Acceleration (``use_accel``, default on): the bid sums over earlier demands
are evaluated from a preallocated
:class:`~repro.accel.history.BidHistoryBuffer` (no per-request Python loop or
``vstack`` copy over the history) and the nearest-own-facility query is O(1)
via a :class:`~repro.accel.tracker.NearestSetTracker`.  Both are bit-identical
to the reference path (``use_accel=False``), which is retained for the
equivalence harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.accel.history import BidHistoryBuffer
from repro.accel.tracker import NearestSetTracker
from repro.algorithms.base import OnlineAlgorithm
from repro.core.assignment import Assignment
from repro.core.instance import Instance
from repro.core.requests import Request
from repro.core.state import OnlineState
from repro.exceptions import AlgorithmError, SnapshotError
from repro.metric.base import MetricSpace
from repro.utils.encoding import decode_float, encode_float

__all__ = ["SingleCommodityPrimalDual", "FotakisOFLAlgorithm"]


@dataclass
class _HistoryEntry:
    """One earlier demand seen by the single-commodity primal–dual helper."""

    point: int
    dual: float
    nearest_distance: float  # distance to the helper's nearest own facility


class SingleCommodityPrimalDual:
    """Primal–dual online facility location for a single commodity.

    The helper owns a private list of facility locations (the facilities *it*
    decided to open); mapping those decisions onto real
    :class:`~repro.core.facility.Facility` objects is the caller's job.

    Parameters
    ----------
    metric:
        The underlying metric space.
    opening_costs:
        Vector of facility opening costs per point for this commodity.
    """

    def __init__(
        self, metric: MetricSpace, opening_costs: Sequence[float], *, use_accel: bool = True
    ) -> None:
        costs = np.asarray(opening_costs, dtype=np.float64)
        if costs.shape != (metric.num_points,):
            raise AlgorithmError(
                f"opening_costs must have one entry per point, got shape {costs.shape}"
            )
        self._metric = metric
        self._costs = costs
        self._history: List[_HistoryEntry] = []  # reference-path bid state only
        self._dual_values: List[float] = []
        self._facility_points: List[int] = []
        self._row_cache: Dict[int, np.ndarray] = {}
        self._use_accel = bool(use_accel)
        self._buffer: Optional[BidHistoryBuffer] = None
        self._tracker: Optional[NearestSetTracker] = None
        if self._use_accel:
            self._buffer = BidHistoryBuffer(metric)
            self._tracker = NearestSetTracker(metric)

    # ------------------------------------------------------------------
    @property
    def facility_points(self) -> List[int]:
        return list(self._facility_points)

    @property
    def duals(self) -> List[float]:
        """Dual value raised for each processed demand, in arrival order."""
        return list(self._dual_values)

    def _row(self, point: int) -> np.ndarray:
        row = self._row_cache.get(point)
        if row is None:
            row = np.asarray(self._metric.distances_from(point), dtype=np.float64)
            self._row_cache[point] = row
        return row

    def _nearest_own_facility(self, point: int) -> Tuple[Optional[int], float]:
        """(index into facility_points, distance) of the nearest own facility."""
        if self._tracker is not None:
            entry = self._tracker.nearest(point)
            if entry is None:
                return None, float("inf")
            return entry
        if not self._facility_points:
            return None, float("inf")
        distances = self._metric.distances_between(point, self._facility_points)
        best = int(np.argmin(distances))
        return best, float(distances[best])

    def _bid_base(self) -> np.ndarray:
        """Bid sum of earlier demands towards every point (constraint (3))."""
        if self._buffer is not None:
            return self._buffer.base()
        if not self._history:
            return np.zeros(self._metric.num_points, dtype=np.float64)
        bids = np.array(
            [min(entry.dual, entry.nearest_distance) for entry in self._history],
            dtype=np.float64,
        )
        rows = np.vstack([self._row(entry.point) for entry in self._history])
        return np.maximum(bids[:, None] - rows, 0.0).sum(axis=0)

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Facility points, dual values and the bid history of the helper.

        The shape of ``history`` is the same for both hot paths — per-entry
        ``(point, dual, nearest)`` triples — so the snapshot is agnostic to
        which path produced it; distance rows are refetched on restore.
        """
        if self._buffer is not None:
            history = self._buffer.state_dict()
        else:
            history = {
                "points": [entry.point for entry in self._history],
                "duals": [entry.dual for entry in self._history],
                "nearest": [encode_float(entry.nearest_distance) for entry in self._history],
            }
        return {
            "facility_points": list(self._facility_points),
            "dual_values": [float(v) for v in self._dual_values],
            "history": history,
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Replay facility openings and reload the bid history (fresh helper only)."""
        if self._facility_points or self._dual_values:
            raise SnapshotError(
                "SingleCommodityPrimalDual.load_state_dict requires a fresh helper"
            )
        for point in state["facility_points"]:
            self._facility_points.append(int(point))
            if self._tracker is not None:
                self._tracker.add(int(point), tag=len(self._facility_points) - 1)
        self._dual_values = [float(v) for v in state["dual_values"]]
        history = state["history"]
        if self._buffer is not None:
            self._buffer.load_state_dict(history)
        else:
            for point, dual, nearest in zip(
                history["points"], history["duals"], history["nearest"]
            ):
                self._history.append(
                    _HistoryEntry(
                        point=int(point),
                        dual=float(dual),
                        nearest_distance=decode_float(nearest),
                    )
                )

    # ------------------------------------------------------------------
    def decide(self, point: int) -> Tuple[str, int, float]:
        """Process a demand at ``point``.

        Returns ``(kind, facility_slot, dual)`` where ``kind`` is ``"connect"``
        (serve from the existing own facility with index ``facility_slot``) or
        ``"open"`` (a new own facility was opened at point ``facility_slot``
        — note the different meaning — and the demand is served from it).
        """
        row = self._row(point)
        slot, nearest_distance = self._nearest_own_facility(point)

        base = self._bid_base()
        slack = np.maximum(self._costs - base, 0.0)
        open_trigger = row + slack
        open_point = int(np.argmin(open_trigger))
        open_level = float(open_trigger[open_point])

        if nearest_distance <= open_level + 1e-12:
            dual = nearest_distance
            kind, payload = "connect", int(slot)
        else:
            dual = open_level
            self._facility_points.append(open_point)
            if self._tracker is not None:
                self._tracker.add(open_point, tag=len(self._facility_points) - 1)
            kind, payload = "open", open_point

        # Update the bid history (the new demand's nearest distance reflects
        # the facility set after its own processing).  The _HistoryEntry list
        # backs only the reference bid sums, so the accel path does not grow
        # it — stale entries would otherwise linger for anyone inspecting it.
        _, new_nearest = self._nearest_own_facility(point)
        if self._buffer is not None:
            if kind == "open":
                self._buffer.update_nearest(self._row(open_point))
            self._buffer.append(point, dual, new_nearest, row=row)
        else:
            for entry in self._history:
                if kind == "open":
                    entry.nearest_distance = min(
                        entry.nearest_distance, float(self._row(open_point)[entry.point])
                    )
            self._history.append(
                _HistoryEntry(point=point, dual=dual, nearest_distance=new_nearest)
            )
        self._dual_values.append(dual)
        return kind, payload, dual


class FotakisOFLAlgorithm(OnlineAlgorithm):
    """Classical online facility location (single commodity, deterministic).

    Only valid on instances with ``|S| = 1`` where every request demands the
    unique commodity; use
    :class:`~repro.algorithms.online.per_commodity.PerCommodityAlgorithm` for
    the multi-commodity decomposition baseline.
    """

    randomized = False

    def __init__(self, *, use_accel: bool = True) -> None:
        self.name = "fotakis-ofl"
        self._use_accel = bool(use_accel)
        self._helper: Optional[SingleCommodityPrimalDual] = None
        self._facility_of_slot: Dict[int, int] = {}

    def prepare(self, instance: Instance, state: OnlineState, rng) -> None:
        if instance.num_commodities != 1:
            raise AlgorithmError(
                "FotakisOFLAlgorithm requires |S| = 1; got "
                f"|S| = {instance.num_commodities}"
            )
        costs = instance.cost_function.costs_over_points((0,), list(range(instance.num_points)))
        self._helper = SingleCommodityPrimalDual(
            instance.metric, costs, use_accel=self._use_accel
        )
        self._facility_of_slot = {}

    def state_dict(self) -> Dict[str, Any]:
        if self._helper is None:
            raise AlgorithmError("prepare() was not called before state_dict()")
        return {
            "helper": self._helper.state_dict(),
            "facility_of_slot": [
                [slot, fid] for slot, fid in self._facility_of_slot.items()
            ],
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        if self._helper is None:
            raise AlgorithmError("prepare() was not called before load_state_dict()")
        self._helper.load_state_dict(state["helper"])
        self._facility_of_slot = {
            int(slot): int(fid) for slot, fid in state["facility_of_slot"]
        }

    def process(self, request: Request, state: OnlineState, rng) -> None:
        if self._helper is None:
            raise AlgorithmError("prepare() was not called before process()")
        kind, payload, _ = self._helper.decide(request.point)
        if kind == "open":
            facility = state.open_facility(request, payload, (0,))
            slot = len(self._helper.facility_points) - 1
            self._facility_of_slot[slot] = facility.id
            facility_id = facility.id
        else:
            facility_id = self._facility_of_slot[payload]
        assignment = Assignment(request_index=request.index)
        assignment.assign(0, facility_id)
        state.record_assignment(request, assignment)
