"""Meyerson's randomized algorithm for online facility location.

Meyerson (FOCS 2001) opens, when a demand arrives, a facility with probability
proportional to the connection cost the demand would otherwise pay; for
non-uniform facility costs the decision is spread over power-of-two cost
classes.  The algorithm is O(log n / log log n)-competitive against adversarial
sequences and constant-competitive for random order; it is the basis of the
paper's RAND-OMFLP (Section 4).

As with the deterministic substrate, the reusable logic lives in a
self-contained helper (:class:`SingleCommodityMeyerson`) so that the
per-commodity decomposition baseline can instantiate one per commodity, and a
thin :class:`MeyersonOFLAlgorithm` exposes the classical single-commodity
algorithm.

Acceleration (``use_accel``, default on): the helper precomputes the
per-class distance tables once (:class:`~repro.accel.classes.ClassDistanceIndex`)
and tracks its own facility set incrementally
(:class:`~repro.accel.tracker.NearestSetTracker`), turning the per-demand
work from O(classes x n) into O(classes + opened x n).  The per-class coin
probabilities are then computed in one vectorized pass instead of a Python
loop of scalar ``distance_to_class`` calls; the coins themselves are still
flipped one class at a time so the RNG consumption — and hence every decision
— is bit-identical to the reference path (``use_accel=False``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.accel.classes import ClassDistanceIndex
from repro.accel.tracker import NearestSetTracker
from repro.algorithms.base import OnlineAlgorithm
from repro.core.assignment import Assignment
from repro.core.instance import Instance
from repro.core.requests import Request
from repro.core.state import OnlineState
from repro.exceptions import AlgorithmError, SnapshotError
from repro.metric.base import MetricSpace
from repro.utils.maths import round_down_power_of_two

__all__ = ["SingleCommodityMeyerson", "MeyersonOFLAlgorithm"]


class SingleCommodityMeyerson:
    """Meyerson's randomized online facility location for one commodity.

    The helper owns its private facility list; the caller maps opened
    facilities onto real state facilities.
    """

    def __init__(
        self, metric: MetricSpace, opening_costs: Sequence[float], *, use_accel: bool = True
    ) -> None:
        costs = np.asarray(opening_costs, dtype=np.float64)
        if costs.shape != (metric.num_points,):
            raise AlgorithmError(
                f"opening_costs must have one entry per point, got shape {costs.shape}"
            )
        self._metric = metric
        rounded = np.array([round_down_power_of_two(float(c)) for c in costs])
        self._rounded = rounded
        values = sorted(set(float(v) for v in rounded))
        self._class_values: List[float] = values
        self._values_array = np.asarray(values, dtype=np.float64)
        # cumulative point sets: points whose rounded cost is <= class value
        # (kept as intp arrays so distances_between never re-converts them).
        self._class_points: List[np.ndarray] = [
            np.where(rounded <= value)[0].astype(np.intp) for value in values
        ]
        self._facility_points: List[int] = []
        self._use_accel = bool(use_accel)
        self._class_index: Optional[ClassDistanceIndex] = None
        self._tracker: Optional[NearestSetTracker] = None
        if self._use_accel:
            exact = [np.where(rounded == value)[0].astype(np.intp) for value in values]
            # The cumulative sets are handed over in this helper's reference
            # enumeration order (ascending point index) so lazy nearest-point
            # scans tie-break exactly as the reference path does.
            self._class_index = ClassDistanceIndex(metric, values, exact, self._class_points)
            self._tracker = NearestSetTracker(metric)

    # ------------------------------------------------------------------
    @property
    def facility_points(self) -> List[int]:
        return list(self._facility_points)

    @property
    def num_classes(self) -> int:
        return len(self._class_values)

    def class_value(self, index: int) -> float:
        """``C_i`` for the 1-based class index."""
        return self._class_values[index - 1]

    def distance_to_class(self, index: int, point: int) -> float:
        """Distance to the nearest point of rounded cost at most ``C_i``."""
        if self._class_index is not None:
            return self._class_index.distance_to_class(index, point)
        points = self._class_points[index - 1]
        return float(np.min(self._metric.distances_between(point, points)))

    def nearest_point_of_class(self, index: int, point: int) -> int:
        if self._class_index is not None:
            return self._class_index.nearest_point_of_class(index, point)[0]
        points = self._class_points[index - 1]
        nearest, _ = self._metric.nearest(point, points)
        return int(nearest)

    def nearest_own_facility(self, point: int) -> Tuple[Optional[int], float]:
        if self._tracker is not None:
            entry = self._tracker.nearest(point)
            if entry is None:
                return None, float("inf")
            return entry
        if not self._facility_points:
            return None, float("inf")
        distances = self._metric.distances_between(point, self._facility_points)
        best = int(np.argmin(distances))
        return best, float(distances[best])

    def connection_budget(self, point: int) -> float:
        """``X(r) = min{d(F, r), min_i (C_i + d(C_i, r))}`` for a demand at ``point``."""
        _, nearest = self.nearest_own_facility(point)
        if self._class_index is not None:
            _, cheapest_open = self._class_index.cheapest_open_option(point)
        else:
            cheapest_open = min(
                self.class_value(i) + self.distance_to_class(i, point)
                for i in range(1, self.num_classes + 1)
            )
        return min(nearest, cheapest_open)

    def _append_facility(self, point: int) -> None:
        self._facility_points.append(int(point))
        if self._tracker is not None:
            # Tag = slot index, so nearest_own_facility reports the slot the
            # reference's argmin over the facility list would report.
            self._tracker.add(int(point), tag=len(self._facility_points) - 1)

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """The helper's only mutable state: its facility points, in order."""
        return {"facility_points": list(self._facility_points)}

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Replay the facility openings (refolds the tracker identically)."""
        if self._facility_points:
            raise SnapshotError(
                "SingleCommodityMeyerson.load_state_dict requires a fresh helper"
            )
        for point in state["facility_points"]:
            self._append_facility(int(point))

    def _class_probabilities(self, point: int, effective_budget: float) -> np.ndarray:
        """Vectorized per-class opening probabilities (fast path only)."""
        distances = self._class_index.class_distances(point)
        previous = np.empty_like(distances)
        previous[0] = effective_budget
        previous[1:] = distances[:-1]
        increments = previous - distances
        values = self._values_array
        probabilities = np.zeros_like(distances)
        free = values <= 0.0
        probabilities[free] = (increments[free] > 0.0).astype(np.float64)
        paid = ~free
        probabilities[paid] = np.minimum(
            np.maximum(increments[paid] / values[paid], 0.0), 1.0
        )
        return probabilities

    # ------------------------------------------------------------------
    def decide(self, point: int, rng, *, budget: Optional[float] = None) -> Tuple[List[int], int, float]:
        """Process a demand at ``point``.

        ``budget`` overrides the class-0 distance ``d(C_0, r)`` (RAND-OMFLP
        passes ``min{X(r), Z(r)} * X(r, e) / X(r)`` here); the default is the
        demand's own connection budget ``X(r)``.

        Returns ``(opened_points, facility_slot, connection_distance)`` where
        ``facility_slot`` indexes the helper's facility list for the facility
        the demand connects to.
        """
        effective_budget = self.connection_budget(point) if budget is None else float(budget)
        opened: List[int] = []
        if self._class_index is not None:
            probabilities = self._class_probabilities(point, effective_budget)
            for i in range(1, self.num_classes + 1):
                probability = float(probabilities[i - 1])
                if probability > 0 and rng.uniform() < probability:
                    opened.append(self.nearest_point_of_class(i, point))
        else:
            previous_distance = effective_budget
            for i in range(1, self.num_classes + 1):
                value = self.class_value(i)
                distance_i = self.distance_to_class(i, point)
                increment = previous_distance - distance_i
                previous_distance = distance_i
                if value <= 0:
                    probability = 1.0 if increment > 0 else 0.0
                else:
                    probability = min(max(increment / value, 0.0), 1.0)
                if probability > 0 and rng.uniform() < probability:
                    opened.append(self.nearest_point_of_class(i, point))
        for new_point in opened:
            self._append_facility(int(new_point))
        if not self._facility_points:
            # Feasibility fallback: open the cheapest opening option
            # deterministically (changes constants only, see DESIGN.md §4.2).
            if self._class_index is not None:
                best_i, _ = self._class_index.cheapest_open_option(point)
            else:
                best_i = min(
                    range(1, self.num_classes + 1),
                    key=lambda i: self.class_value(i) + self.distance_to_class(i, point),
                )
            fallback = self.nearest_point_of_class(best_i, point)
            self._append_facility(int(fallback))
            opened.append(int(fallback))
        slot, distance = self.nearest_own_facility(point)
        return opened, int(slot), float(distance)


class MeyersonOFLAlgorithm(OnlineAlgorithm):
    """Classical randomized online facility location (single commodity)."""

    randomized = True

    def __init__(self, *, use_accel: bool = True) -> None:
        self.name = "meyerson-ofl"
        self._use_accel = bool(use_accel)
        self._helper: Optional[SingleCommodityMeyerson] = None
        self._facility_of_slot: Dict[int, int] = {}

    def prepare(self, instance: Instance, state: OnlineState, rng) -> None:
        if instance.num_commodities != 1:
            raise AlgorithmError(
                "MeyersonOFLAlgorithm requires |S| = 1; got "
                f"|S| = {instance.num_commodities}"
            )
        costs = instance.cost_function.costs_over_points((0,), list(range(instance.num_points)))
        self._helper = SingleCommodityMeyerson(
            instance.metric, costs, use_accel=self._use_accel
        )
        self._facility_of_slot = {}

    def state_dict(self) -> Dict[str, Any]:
        if self._helper is None:
            raise AlgorithmError("prepare() was not called before state_dict()")
        return {
            "helper": self._helper.state_dict(),
            "facility_of_slot": [
                [slot, fid] for slot, fid in self._facility_of_slot.items()
            ],
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        if self._helper is None:
            raise AlgorithmError("prepare() was not called before load_state_dict()")
        self._helper.load_state_dict(state["helper"])
        self._facility_of_slot = {
            int(slot): int(fid) for slot, fid in state["facility_of_slot"]
        }

    def process(self, request: Request, state: OnlineState, rng) -> None:
        if self._helper is None:
            raise AlgorithmError("prepare() was not called before process()")
        before = len(self._helper.facility_points)
        opened, slot, _ = self._helper.decide(request.point, rng)
        # Open the real facilities for every new helper facility, in order.
        helper_points = self._helper.facility_points
        for new_slot in range(before, len(helper_points)):
            facility = state.open_facility(request, helper_points[new_slot], (0,))
            self._facility_of_slot[new_slot] = facility.id
        assignment = Assignment(request_index=request.index)
        assignment.assign(0, self._facility_of_slot[slot])
        state.record_assignment(request, assignment)
