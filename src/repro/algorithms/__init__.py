"""Online and offline algorithms for the OMFLP.

Online algorithms (Sections 2–4 of the paper and its baselines):

* :class:`~repro.algorithms.online.pd_omflp.PDOMFLPAlgorithm` — the
  deterministic primal–dual algorithm of Section 3 (Algorithm 1),
  O(√|S|·log n)-competitive under Condition 1 (Theorem 4).
* :class:`~repro.algorithms.online.threshold.ThresholdPDAlgorithm` — PD-OMFLP
  with a configurable "large" configuration (the closing-remarks variant that
  excludes heavy commodities; also used by the Theorem-18 cost-class study).
* :class:`~repro.algorithms.online.rand_omflp.RandOMFLPAlgorithm` — the
  randomized Meyerson-style algorithm of Section 4 (Algorithm 2),
  O(√|S|·log n / log log n)-competitive in expectation (Theorem 19).
* :class:`~repro.algorithms.online.fotakis_ofl.FotakisOFLAlgorithm` and
  :class:`~repro.algorithms.online.meyerson_ofl.MeyersonOFLAlgorithm` — the
  single-commodity online facility location substrates the paper builds on.
* :class:`~repro.algorithms.online.per_commodity.PerCommodityAlgorithm` — the
  trivial O(|S|·log n / log log n) decomposition baseline of Section 1.3.
* :class:`~repro.algorithms.online.no_prediction.NoPredictionGreedy` and
  :class:`~repro.algorithms.online.always_large.AlwaysLargeGreedy` — greedy
  baselines that never/always predict, bracketing the design space the lower
  bound of Section 2 rules out.

Offline reference solvers (for measuring competitive ratios):

* :class:`~repro.algorithms.offline.brute_force.BruteForceSolver` — exact OPT
  on tiny instances.
* :class:`~repro.algorithms.offline.greedy.GreedyOfflineSolver` — greedy
  (set-cover flavoured) offline heuristic.
* :class:`~repro.algorithms.offline.local_search.LocalSearchSolver` — local
  search improvement over any starting solution.
* :class:`~repro.algorithms.offline.planted.PlantedSolver` — evaluates a
  planted facility set (used with clustered workloads).
* :func:`~repro.algorithms.offline.lp_bound.lp_relaxation_lower_bound` — LP
  relaxation lower bound on OPT for small instances.
"""

from repro.algorithms.base import (
    OfflineResult,
    OfflineSolver,
    OnlineAlgorithm,
    OnlineResult,
    run_online,
)
from repro.algorithms.offline.brute_force import BruteForceSolver
from repro.algorithms.offline.greedy import GreedyOfflineSolver
from repro.algorithms.offline.local_search import LocalSearchSolver
from repro.algorithms.offline.lp_bound import lp_relaxation_lower_bound
from repro.algorithms.offline.planted import PlantedSolver
from repro.algorithms.online.always_large import AlwaysLargeGreedy
from repro.algorithms.online.fotakis_ofl import FotakisOFLAlgorithm
from repro.algorithms.online.meyerson_ofl import MeyersonOFLAlgorithm
from repro.algorithms.online.no_prediction import NoPredictionGreedy
from repro.algorithms.online.pd_omflp import PDOMFLPAlgorithm
from repro.algorithms.online.per_commodity import PerCommodityAlgorithm
from repro.algorithms.online.rand_omflp import RandOMFLPAlgorithm
from repro.algorithms.online.threshold import ThresholdPDAlgorithm

__all__ = [
    "OnlineAlgorithm",
    "OnlineResult",
    "OfflineSolver",
    "OfflineResult",
    "run_online",
    "PDOMFLPAlgorithm",
    "ThresholdPDAlgorithm",
    "RandOMFLPAlgorithm",
    "FotakisOFLAlgorithm",
    "MeyersonOFLAlgorithm",
    "PerCommodityAlgorithm",
    "NoPredictionGreedy",
    "AlwaysLargeGreedy",
    "BruteForceSolver",
    "GreedyOfflineSolver",
    "LocalSearchSolver",
    "PlantedSolver",
    "lp_relaxation_lower_bound",
]
