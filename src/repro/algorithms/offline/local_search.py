"""Local-search improvement of offline solutions.

Local search is the classical workhorse for facility-location heuristics
(cf. the survey cited in Section 1.2).  Starting from any feasible facility
set — by default the greedy solver's — the solver repeatedly applies the best
improving move among

* **drop**: close one facility,
* **add**: open one candidate facility (a ``(point, configuration)`` pair
  from the candidate family),
* **swap**: close one facility and open one candidate,

re-evaluating the optimal assignment after each candidate move, until no move
improves the total cost or the iteration budget is exhausted.  The result is
an upper bound on OPT that is typically noticeably tighter than greedy alone.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.algorithms.base import OfflineResult, OfflineSolver
from repro.algorithms.offline.common import candidate_configurations, solution_from_specs
from repro.algorithms.offline.greedy import GreedyOfflineSolver
from repro.core.instance import Instance
from repro.exceptions import AlgorithmError, InfeasibleSolutionError
from repro.trace.clock import wall_now

__all__ = ["LocalSearchSolver"]

Spec = Tuple[int, FrozenSet[int]]


class LocalSearchSolver(OfflineSolver):
    """Drop/add/swap local search over facility specifications.

    Parameters
    ----------
    max_iterations:
        Maximum number of accepted improving moves.
    initial_specs:
        Optional starting facility set; defaults to the greedy solution.
    candidate_points:
        Points at which candidate facilities may be opened; defaults to the
        request locations.
    """

    name = "offline-local-search"

    def __init__(
        self,
        *,
        max_iterations: int = 50,
        initial_specs: Optional[Sequence[Spec]] = None,
        candidate_points: Optional[Sequence[int]] = None,
    ) -> None:
        if max_iterations < 0:
            raise AlgorithmError("max_iterations must be non-negative")
        self._max_iterations = int(max_iterations)
        self._initial_specs = list(initial_specs) if initial_specs is not None else None
        self._candidate_points = list(candidate_points) if candidate_points is not None else None

    # ------------------------------------------------------------------
    def _evaluate(self, instance: Instance, specs: Sequence[Spec]) -> Optional[float]:
        if not specs:
            return None
        try:
            _, total = solution_from_specs(instance, specs)
        except InfeasibleSolutionError:
            return None
        return total

    def solve(self, instance: Instance) -> OfflineResult:
        start = wall_now()
        if self._initial_specs is not None:
            current: List[Spec] = [
                (int(p), instance.cost_function.normalize_configuration(c))
                for p, c in self._initial_specs
            ]
        else:
            greedy = GreedyOfflineSolver(candidate_points=self._candidate_points).solve(instance)
            current = [(f.point, f.configuration) for f in greedy.solution.facilities]
        current_cost = self._evaluate(instance, current)
        if current_cost is None:
            raise AlgorithmError("the initial facility set is infeasible")

        points = (
            list(self._candidate_points)
            if self._candidate_points is not None
            else sorted({r.point for r in instance.requests})
        )
        configurations = candidate_configurations(instance)
        candidates: List[Spec] = [(p, c) for p in points for c in configurations]

        for _ in range(self._max_iterations):
            best_specs: Optional[List[Spec]] = None
            best_cost = current_cost

            # Drop moves.
            for i in range(len(current)):
                specs = current[:i] + current[i + 1 :]
                cost = self._evaluate(instance, specs)
                if cost is not None and cost < best_cost - 1e-12:
                    best_specs, best_cost = specs, cost

            # Add moves.
            for candidate in candidates:
                if candidate in current:
                    continue
                specs = current + [candidate]
                cost = self._evaluate(instance, specs)
                if cost is not None and cost < best_cost - 1e-12:
                    best_specs, best_cost = specs, cost

            # Swap moves (only attempted when neither single move helped, to
            # keep the neighbourhood evaluation affordable).
            if best_specs is None:
                for i in range(len(current)):
                    reduced = current[:i] + current[i + 1 :]
                    for candidate in candidates:
                        if candidate == current[i]:
                            continue
                        specs = reduced + [candidate]
                        cost = self._evaluate(instance, specs)
                        if cost is not None and cost < best_cost - 1e-12:
                            best_specs, best_cost = specs, cost

            if best_specs is None:
                break
            current, current_cost = best_specs, best_cost

        solution, total = solution_from_specs(instance, current)
        runtime = wall_now() - start
        breakdown = solution.cost_breakdown(instance.requests)
        return OfflineResult(
            solver=self.name,
            instance_name=instance.name,
            solution=solution,
            total_cost=total,
            opening_cost=breakdown.opening,
            connection_cost=breakdown.connection,
            runtime_seconds=runtime,
            is_optimal=False,
        )
