"""Greedy offline heuristic (set-cover flavoured).

Ravi and Sinha's offline O(log |S|) approximation is driven by greedy
set-cover ideas; this solver follows the same spirit without reproducing
their full analysis: it repeatedly opens the candidate facility — a
``(point, configuration)`` pair from
:func:`~repro.algorithms.offline.common.candidate_configurations` — with the
best ratio of (opening cost + new connection cost) to newly covered
(request, commodity) pairs, until every pair is covered, then computes the
optimal assignment for the chosen facilities and drops facilities no request
uses.

The result is an upper bound on OPT; on the small instances where the exact
brute force is tractable the test suite checks the two against each other.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.algorithms.base import OfflineResult, OfflineSolver
from repro.algorithms.offline.common import candidate_configurations, solution_from_specs
from repro.core.instance import Instance
from repro.exceptions import AlgorithmError
from repro.trace.clock import wall_now

__all__ = ["GreedyOfflineSolver"]


class GreedyOfflineSolver(OfflineSolver):
    """Greedy facility-opening heuristic for the offline MFLP."""

    name = "offline-greedy"

    def __init__(self, *, candidate_points: Optional[List[int]] = None) -> None:
        self._candidate_points = candidate_points

    def solve(self, instance: Instance) -> OfflineResult:
        start = wall_now()
        requests = instance.requests
        if len(requests) == 0:
            raise AlgorithmError("cannot solve an instance with no requests")
        metric = instance.metric
        cost_function = instance.cost_function

        points = (
            list(self._candidate_points)
            if self._candidate_points is not None
            else sorted({r.point for r in requests})
        )
        configurations = candidate_configurations(instance)

        # Pre-compute distances from every request to every candidate point.
        distance = np.vstack([metric.distances_between(r.point, points) for r in requests])

        uncovered: Set[Tuple[int, int]] = {
            (request.index, commodity)
            for request in requests
            for commodity in request.commodities
        }
        chosen: List[Tuple[int, FrozenSet[int]]] = []
        # Requests already paying a connection to a chosen facility at a point
        # do not pay again when another commodity is covered from the same
        # point, mirroring the distinct-facility connection cost.
        connected_points: Dict[int, Set[int]] = {request.index: set() for request in requests}

        while uncovered:
            best: Optional[Tuple[float, int, FrozenSet[int], Set[Tuple[int, int]]]] = None
            for point_index, point in enumerate(points):
                for config in configurations:
                    covered_now = {
                        (r_index, commodity)
                        for (r_index, commodity) in uncovered
                        if commodity in config
                    }
                    if not covered_now:
                        continue
                    opening = cost_function.cost(point, config)
                    connection = 0.0
                    for r_index in sorted({r for (r, _) in covered_now}):
                        if point not in connected_points[r_index]:
                            connection += float(distance[r_index, point_index])
                    ratio = (opening + connection) / len(covered_now)
                    if best is None or ratio < best[0] - 1e-15:
                        best = (ratio, point, config, covered_now)
            if best is None:  # pragma: no cover - defensive
                raise AlgorithmError("greedy solver could not cover all demands")
            _, point, config, covered_now = best
            chosen.append((point, config))
            uncovered -= covered_now
            for r_index in sorted({r for (r, _) in covered_now}):
                connected_points[r_index].add(point)

        solution, total = solution_from_specs(instance, chosen)
        # Drop facilities that the optimal assignment does not use and
        # re-evaluate; this only ever improves the solution.
        used_ids = set()
        for assignment in solution.assignments:
            used_ids |= assignment.facility_ids()
        pruned = [chosen[i] for i in range(len(chosen)) if i in used_ids]
        if pruned and len(pruned) < len(chosen):
            pruned_solution, pruned_total = solution_from_specs(instance, pruned)
            if pruned_total <= total:
                solution, total = pruned_solution, pruned_total

        runtime = wall_now() - start
        breakdown = solution.cost_breakdown(requests)
        return OfflineResult(
            solver=self.name,
            instance_name=instance.name,
            solution=solution,
            total_cost=total,
            opening_cost=breakdown.opening,
            connection_cost=breakdown.connection,
            runtime_seconds=runtime,
            is_optimal=False,
        )
