"""Offline reference solvers used to measure competitive ratios.

Computing the exact optimal offline solution is NP-hard (the offline MFLP
generalizes weighted set cover, Ravi & Sinha 2004), so the reproduction uses
a portfolio of references, each documented with its guarantee:

* :class:`~repro.algorithms.offline.brute_force.BruteForceSolver` — exact OPT
  by exhaustive enumeration (tiny instances only);
* :func:`~repro.algorithms.offline.lp_bound.lp_relaxation_lower_bound` — a
  certified lower bound on OPT from the LP relaxation (small instances);
* :class:`~repro.algorithms.offline.greedy.GreedyOfflineSolver` — a greedy
  (set-cover flavoured) heuristic, an upper bound on OPT;
* :class:`~repro.algorithms.offline.local_search.LocalSearchSolver` — local
  search improvement, an upper bound on OPT;
* :class:`~repro.algorithms.offline.planted.PlantedSolver` — evaluates a
  planted facility set supplied by a workload generator, an upper bound on
  OPT that is usually close to it for clustered workloads.
"""

from repro.algorithms.offline.brute_force import BruteForceSolver
from repro.algorithms.offline.common import (
    candidate_configurations,
    evaluate_facility_specs,
    optimal_assignment,
)
from repro.algorithms.offline.greedy import GreedyOfflineSolver
from repro.algorithms.offline.local_search import LocalSearchSolver
from repro.algorithms.offline.lp_bound import lp_relaxation_lower_bound
from repro.algorithms.offline.planted import PlantedSolver

__all__ = [
    "BruteForceSolver",
    "GreedyOfflineSolver",
    "LocalSearchSolver",
    "PlantedSolver",
    "lp_relaxation_lower_bound",
    "optimal_assignment",
    "evaluate_facility_specs",
    "candidate_configurations",
]
