"""Exact optimal offline solutions by exhaustive enumeration (tiny instances).

By subadditivity of the cost function (Section 1.1 of the paper) it never
helps to open two facilities at the same point — replacing them by one
facility offering the union of their configurations costs at most as much and
can only reduce connection costs (each request pays per *distinct* facility).
The optimum can therefore be found by choosing, for every point, a single
configuration (possibly empty) and assigning every request optimally; the
solver enumerates all such choices.

The search space is ``(|configurations| + 1)^{|M|}``; the solver refuses to
run when it exceeds ``max_combinations`` so that accidental use on large
instances fails loudly instead of hanging.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.algorithms.base import OfflineResult, OfflineSolver
from repro.algorithms.offline.common import solution_from_specs
from repro.core.instance import Instance
from repro.exceptions import AlgorithmError, InfeasibleSolutionError
from repro.trace.clock import wall_now

__all__ = ["BruteForceSolver"]


class BruteForceSolver(OfflineSolver):
    """Exact OPT by enumerating one configuration per point.

    Parameters
    ----------
    max_combinations:
        Upper limit on the number of facility-placement combinations that will
        be enumerated; exceeding it raises :class:`AlgorithmError`.
    configurations:
        Optional explicit configuration family.  The default enumerates every
        non-empty subset of the commodities actually requested (plus the full
        set ``S``), which is exact for monotone cost functions — every cost
        family shipped with this library is monotone.
    """

    name = "brute-force"

    def __init__(
        self,
        *,
        max_combinations: int = 300_000,
        configurations: Optional[Sequence[Iterable[int]]] = None,
    ) -> None:
        if max_combinations <= 0:
            raise AlgorithmError("max_combinations must be positive")
        self._max_combinations = int(max_combinations)
        self._configurations = configurations

    # ------------------------------------------------------------------
    def _configuration_family(self, instance: Instance) -> List[FrozenSet[int]]:
        if self._configurations is not None:
            return [
                instance.cost_function.normalize_configuration(c) for c in self._configurations
            ]
        used = sorted(instance.requests.commodities_used())
        family: List[FrozenSet[int]] = []
        for size in range(1, len(used) + 1):
            family.extend(frozenset(c) for c in itertools.combinations(used, size))
        full = instance.cost_function.full_set
        if full not in family:
            family.append(full)
        return family

    def solve(self, instance: Instance) -> OfflineResult:
        start = wall_now()
        family = self._configuration_family(instance)
        options = len(family) + 1  # +1 for "no facility at this point"
        combinations = options**instance.num_points
        if combinations > self._max_combinations:
            raise AlgorithmError(
                f"brute force would enumerate {combinations} combinations "
                f"(> max_combinations = {self._max_combinations}); "
                "use a heuristic offline solver for instances of this size"
            )

        best_specs: Optional[List[Tuple[int, FrozenSet[int]]]] = None
        best_cost = float("inf")
        points = list(range(instance.num_points))
        choices: List[Optional[FrozenSet[int]]] = [None] + list(family)
        for combo in itertools.product(range(options), repeat=instance.num_points):
            specs = [
                (point, choices[selection])
                for point, selection in zip(points, combo)
                if selection != 0
            ]
            # Quick pruning on the opening cost alone.
            opening = sum(
                instance.cost_function.cost(point, config) for point, config in specs
            )
            if opening >= best_cost:
                continue
            try:
                _, total = solution_from_specs(instance, specs)
            except InfeasibleSolutionError:
                continue
            if total < best_cost - 1e-12:
                best_cost = total
                best_specs = [(p, c) for p, c in specs]

        if best_specs is None:
            raise AlgorithmError("brute force found no feasible solution")
        solution, total = solution_from_specs(instance, best_specs)
        runtime = wall_now() - start
        breakdown = solution.cost_breakdown(instance.requests)
        return OfflineResult(
            solver=self.name,
            instance_name=instance.name,
            solution=solution,
            total_cost=total,
            opening_cost=breakdown.opening,
            connection_cost=breakdown.connection,
            runtime_seconds=runtime,
            is_optimal=True,
            lower_bound=total,
        )
