"""LP-relaxation lower bound on the optimal offline cost.

The ILP of Section 1.1 (simplified form, after eliminating the served-subset
index ``s``) relaxes to the linear program

    min   sum_{m, sigma} f^sigma_m y^sigma_m
        + sum_{m, sigma, r} d(m, r) x^sigma_{m r}
    s.t.  sum_{m, sigma ∋ e} x^sigma_{m r} >= 1      for all r, e in s_r
          x^sigma_{m r} <= y^sigma_m                 for all m, sigma, r
          x, y >= 0.

Its optimal value is a certified lower bound on the integral optimum, which
the duality experiment compares against the weak-duality bound obtained from
PD-OMFLP's scaled dual variables.  The LP has ``Theta(|M| 2^{|S|} n)``
variables, so the function refuses instances beyond an explicit size guard —
it is meant for the small instances where brute force is already borderline.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, List, Optional, Sequence

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from repro.core.instance import Instance
from repro.exceptions import AlgorithmError

__all__ = ["lp_relaxation_lower_bound"]


def lp_relaxation_lower_bound(
    instance: Instance,
    *,
    configurations: Optional[Sequence[FrozenSet[int]]] = None,
    max_variables: int = 200_000,
) -> float:
    """Solve the LP relaxation and return its optimal value.

    Parameters
    ----------
    instance:
        The instance to bound.
    configurations:
        Optional explicit configuration family; the default is every non-empty
        subset of ``S`` (exact LP relaxation).  Restricting the family yields
        the LP of a restricted problem, which is *not* a valid lower bound in
        general, so the default should be used for certification.
    max_variables:
        Guard on the LP size.
    """
    if configurations is None:
        if instance.num_commodities > 14:
            raise AlgorithmError(
                "the exact LP relaxation enumerates all 2^|S| configurations; "
                f"|S| = {instance.num_commodities} is too large"
            )
        universe = list(range(instance.num_commodities))
        configurations = [
            frozenset(c)
            for size in range(1, instance.num_commodities + 1)
            for c in itertools.combinations(universe, size)
        ]
    configurations = [instance.cost_function.normalize_configuration(c) for c in configurations]

    num_points = instance.num_points
    num_configs = len(configurations)
    requests = list(instance.requests)
    n = len(requests)

    num_y = num_points * num_configs
    num_x = num_points * num_configs * n
    if num_y + num_x > max_variables:
        raise AlgorithmError(
            f"LP would have {num_y + num_x} variables (> max_variables = {max_variables})"
        )

    def y_index(m: int, c: int) -> int:
        return m * num_configs + c

    def x_index(m: int, c: int, r: int) -> int:
        return num_y + (m * num_configs + c) * n + r

    # Objective.
    objective = np.zeros(num_y + num_x, dtype=np.float64)
    for c, config in enumerate(configurations):
        costs = instance.cost_function.costs_over_points(config, list(range(num_points)))
        for m in range(num_points):
            objective[y_index(m, c)] = costs[m]
    for r, request in enumerate(requests):
        row = instance.metric.distances_from(request.point)
        for c in range(num_configs):
            for m in range(num_points):
                objective[x_index(m, c, r)] = row[m]

    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    b_ub: List[float] = []
    constraint = 0

    # Coverage constraints: -sum_{m, sigma ∋ e} x <= -1.
    for r, request in enumerate(requests):
        for e in sorted(request.commodities):
            for c, config in enumerate(configurations):
                if e not in config:
                    continue
                for m in range(num_points):
                    rows.append(constraint)
                    cols.append(x_index(m, c, r))
                    data.append(-1.0)
            b_ub.append(-1.0)
            constraint += 1

    # Capacity constraints: x - y <= 0.
    for r in range(n):
        for c in range(num_configs):
            for m in range(num_points):
                rows.append(constraint)
                cols.append(x_index(m, c, r))
                data.append(1.0)
                rows.append(constraint)
                cols.append(y_index(m, c))
                data.append(-1.0)
                b_ub.append(0.0)
                constraint += 1

    a_ub = coo_matrix((data, (rows, cols)), shape=(constraint, num_y + num_x))
    result = linprog(
        objective,
        A_ub=a_ub.tocsr(),
        b_ub=np.asarray(b_ub, dtype=np.float64),
        bounds=(0, None),
        method="highs",
    )
    if not result.success:  # pragma: no cover - HiGHS failure is unexpected here
        raise AlgorithmError(f"LP relaxation failed: {result.message}")
    return float(result.fun)
