"""Shared building blocks of the offline solvers.

* :func:`optimal_assignment` — given a fixed set of open facilities, compute
  the cheapest feasible connection of one request (exact, by dynamic
  programming over subsets of the request's demand set).  This is the inner
  problem every offline solver needs: the connection cost of a request is the
  sum of distances to the *distinct* facilities it uses, so choosing which
  facilities to connect to is itself a small weighted set cover.
* :func:`evaluate_facility_specs` — turn a list of ``(point, configuration)``
  facility specifications into a full :class:`~repro.core.solution.Solution`
  with optimal assignments.
* :func:`candidate_configurations` — the configuration family (singletons,
  distinct requested sets, the full set) that the greedy and local-search
  solvers draw their candidate facilities from.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.assignment import Assignment
from repro.core.facility import Facility
from repro.core.instance import Instance
from repro.core.requests import Request
from repro.core.solution import Solution
from repro.exceptions import InfeasibleSolutionError
from repro.metric.base import MetricSpace

__all__ = [
    "optimal_assignment",
    "evaluate_facility_specs",
    "candidate_configurations",
    "solution_from_specs",
]

#: Largest demand-set size for which the exact subset DP is attempted.
_MAX_DEMAND_FOR_DP = 20


def optimal_assignment(
    metric: MetricSpace,
    request: Request,
    facilities: Sequence[Facility],
) -> Tuple[Assignment, float]:
    """Cheapest feasible connection of ``request`` to the given open facilities.

    Uses dynamic programming over subsets of the request's demand set: state
    ``mask`` = commodities already covered, transition = connect to one more
    facility (paying its distance once, regardless of how many commodities it
    covers).  Exact for ``|s_r| <= 20``; raises for larger demand sets (no
    workload in this repository produces them).

    Raises
    ------
    InfeasibleSolutionError
        If some demanded commodity is offered by no facility.
    """
    demanded = sorted(request.commodities)
    k = len(demanded)
    if k > _MAX_DEMAND_FOR_DP:
        raise InfeasibleSolutionError(
            f"request {request.index} demands {k} commodities; the exact assignment DP "
            f"supports at most {_MAX_DEMAND_FOR_DP}"
        )
    index_of = {commodity: i for i, commodity in enumerate(demanded)}
    full_mask = (1 << k) - 1

    useful: List[Tuple[Facility, int, float]] = []
    for facility in facilities:
        mask = 0
        for commodity in facility.configuration & request.commodities:
            mask |= 1 << index_of[commodity]
        if mask:
            useful.append((facility, mask, metric.distance(request.point, facility.point)))
    coverable = 0
    for _, mask, _ in useful:
        coverable |= mask
    if coverable != full_mask:
        missing = [demanded[i] for i in range(k) if not (coverable >> i) & 1]
        raise InfeasibleSolutionError(
            f"request {request.index}: commodities {missing} are offered by no open facility"
        )

    INF = float("inf")
    dp = np.full(1 << k, INF, dtype=np.float64)
    dp[0] = 0.0
    choice: List[Optional[Tuple[int, int]]] = [None] * (1 << k)  # mask -> (facility idx, prev mask)
    order = sorted(range(1 << k), key=lambda m: dp[m]) if False else range(1 << k)
    # Plain forward DP over masks: since adding a facility only adds bits,
    # iterating masks in increasing numeric order is sufficient (the previous
    # mask is always numerically smaller than the new one).
    for mask in range(1 << k):
        if dp[mask] == INF:
            continue
        for idx, (facility, fmask, distance) in enumerate(useful):
            new_mask = mask | fmask
            if new_mask == mask:
                continue
            new_cost = dp[mask] + distance
            if new_cost < dp[new_mask] - 1e-15:
                dp[new_mask] = new_cost
                choice[new_mask] = (idx, mask)

    if dp[full_mask] == INF:  # pragma: no cover - excluded by the coverable check
        raise InfeasibleSolutionError(f"request {request.index} cannot be covered")

    # Reconstruct the chosen facilities and build the assignment.
    chosen: List[Facility] = []
    mask = full_mask
    while mask:
        entry = choice[mask]
        if entry is None:
            break
        idx, previous = entry
        chosen.append(useful[idx][0])
        mask = previous
    assignment = Assignment(request_index=request.index)
    for commodity in demanded:
        best_facility = None
        best_distance = INF
        for facility in chosen:
            if facility.offers(commodity):
                distance = metric.distance(request.point, facility.point)
                if distance < best_distance:
                    best_facility, best_distance = facility, distance
        if best_facility is None:  # pragma: no cover - defensive
            raise InfeasibleSolutionError(
                f"request {request.index}: reconstruction lost commodity {commodity}"
            )
        assignment.assign(commodity, best_facility.id)
    return assignment, float(dp[full_mask])


def solution_from_specs(
    instance: Instance, specs: Sequence[Tuple[int, Iterable[int]]]
) -> Tuple[Solution, float]:
    """Build a solution from ``(point, configuration)`` facility specs.

    Facilities are opened exactly as specified (duplicates allowed, matching
    the model's "multiple facilities on the same point"); every request is
    connected optimally.  Returns the solution and its total cost.
    """
    facilities: List[Facility] = []
    for point, configuration in specs:
        config = instance.cost_function.normalize_configuration(configuration)
        facilities.append(
            Facility(
                id=len(facilities),
                point=int(point),
                configuration=config,
                opening_cost=instance.cost_function.cost(int(point), config),
            )
        )
    assignments: List[Assignment] = []
    connection_total = 0.0
    for request in instance.requests:
        assignment, cost = optimal_assignment(instance.metric, request, facilities)
        assignments.append(assignment)
        connection_total += cost
    solution = Solution(instance.metric, instance.num_commodities, facilities, assignments)
    total = sum(f.opening_cost for f in facilities) + connection_total
    return solution, float(total)


def evaluate_facility_specs(
    instance: Instance, specs: Sequence[Tuple[int, Iterable[int]]]
) -> float:
    """Total cost of the cheapest solution that opens exactly the given facilities."""
    _, total = solution_from_specs(instance, specs)
    return total


def candidate_configurations(instance: Instance) -> List[FrozenSet[int]]:
    """Configuration family for the heuristic offline solvers.

    Includes every singleton of a requested commodity, every distinct demand
    set occurring in the instance, and the full set ``S``.  (By subadditivity
    the optimum never benefits from opening two facilities at the same point,
    but it may well use configurations outside this family; the heuristics
    trade that completeness for tractability, and the brute-force solver is
    the exact reference on small instances.)
    """
    used = instance.requests.commodities_used()
    family = {frozenset((e,)) for e in used}
    for request in instance.requests:
        family.add(frozenset(request.commodities))
    family.add(instance.cost_function.full_set)
    return sorted(family, key=lambda c: (len(c), sorted(c)))
