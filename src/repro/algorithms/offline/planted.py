"""Evaluate a planted facility set.

The clustered workload generator (:mod:`repro.workloads.clustered`) draws
requests around a known set of "optimal centers" (the paper's term in the
RAND-OMFLP analysis, Section 4.2) and reports the facilities a clairvoyant
provider would open.  Evaluating that planted facility set — with optimal
assignments — yields a natural upper bound on OPT that is tight enough for
the scaling experiments while remaining cheap to compute at any size.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.algorithms.base import OfflineResult, OfflineSolver
from repro.algorithms.offline.common import solution_from_specs
from repro.core.instance import Instance
from repro.exceptions import AlgorithmError
from repro.trace.clock import wall_now

__all__ = ["PlantedSolver"]


class PlantedSolver(OfflineSolver):
    """Offline reference that opens exactly a supplied facility set."""

    name = "planted"

    def __init__(self, facility_specs: Sequence[Tuple[int, Iterable[int]]]) -> None:
        if not facility_specs:
            raise AlgorithmError("the planted facility set must not be empty")
        self._specs = [(int(point), frozenset(int(e) for e in config)) for point, config in facility_specs]

    @property
    def facility_specs(self) -> List[Tuple[int, FrozenSet[int]]]:
        return list(self._specs)

    def solve(self, instance: Instance) -> OfflineResult:
        start = wall_now()
        solution, total = solution_from_specs(instance, self._specs)
        runtime = wall_now() - start
        breakdown = solution.cost_breakdown(instance.requests)
        return OfflineResult(
            solver=self.name,
            instance_name=instance.name,
            solution=solution,
            total_cost=total,
            opening_cost=breakdown.opening,
            connection_cost=breakdown.connection,
            runtime_seconds=runtime,
            is_optimal=False,
        )
