"""Algorithm interfaces and the online run loop.

``run_online`` is the single entry point used by tests, examples and the
experiment harness: it feeds the requests of an instance one at a time to an
:class:`OnlineAlgorithm`, enforces that each request is assigned before the
next one arrives (decisions are irrevocable, Section 1.1 of the paper) and
returns an :class:`OnlineResult` with the final solution and cost breakdown.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.core.instance import Instance
from repro.core.requests import Request
from repro.core.solution import CostBreakdown, Solution
from repro.core.state import OnlineState
from repro.core.trace import Trace
from repro.dual.variables import DualVariableStore
from repro.exceptions import SnapshotError
from repro.utils.rng import RandomState

__all__ = ["OnlineAlgorithm", "OnlineResult", "OfflineSolver", "OfflineResult", "run_online"]


class OnlineAlgorithm(abc.ABC):
    """An online algorithm for the OMFLP.

    Subclasses implement :meth:`process`; they may also override
    :meth:`prepare` to precompute static data (e.g. the facility cost classes
    of RAND-OMFLP).  Algorithms must be reusable: ``prepare`` is called once
    per run and must reset any per-run state.
    """

    #: Human-readable name used in experiment tables.
    name: str = "online-algorithm"

    #: Whether the algorithm uses randomness (experiments average over seeds).
    randomized: bool = False

    def prepare(self, instance: Instance, state: OnlineState, rng) -> None:
        """Hook called once before the first request arrives."""

    @abc.abstractmethod
    def process(self, request: Request, state: OnlineState, rng) -> None:
        """Handle one arriving request.

        Implementations must open any facilities they need via
        ``state.open_facility`` and finish by recording an assignment for the
        request (``state.record_assignment`` or a helper that calls it).
        """

    def duals(self) -> Optional[DualVariableStore]:
        """Dual variables raised by the run, when the algorithm maintains them."""
        return None

    # ------------------------------------------------------------------
    # Snapshot hooks (durable sessions, see repro.service)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """JSON-compatible snapshot of the algorithm's *per-run mutable* state.

        The contract mirrors the torch idiom: ``state_dict`` captures exactly
        the decision-relevant state accumulated since :meth:`prepare` (helper
        facility lists, dual stores, bid histories, slot maps) and
        :meth:`load_state_dict` restores it onto a freshly ``prepare``-d
        instance such that every subsequent :meth:`process` call — given the
        same restored RNG stream and :class:`OnlineState` — is bit-identical
        to an uninterrupted run.  Static precomputations (cost classes,
        distance tables, memo caches) are *not* captured; they are pure
        functions of the instance and are rebuilt by ``prepare`` or lazily.

        Stateless algorithms inherit this default, which returns ``{}``.
        """
        return {}

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot onto this algorithm.

        Must be called after :meth:`prepare` ran against an equivalent
        instance, and before any :meth:`process` call.  The default accepts
        only the empty snapshot of a stateless algorithm.
        """
        if state:
            raise SnapshotError(
                f"{self.name} is stateless and cannot load a non-empty "
                f"snapshot state (got keys {sorted(state)})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass
class OnlineResult:
    """Outcome of one online run."""

    algorithm: str
    instance_name: str
    solution: Solution
    opening_cost: float
    connection_cost: float
    breakdown: CostBreakdown
    runtime_seconds: float
    trace: Trace
    duals: Optional[DualVariableStore] = None

    @property
    def total_cost(self) -> float:
        return self.opening_cost + self.connection_cost

    def summary(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "instance": self.instance_name,
            "total_cost": self.total_cost,
            "opening_cost": self.opening_cost,
            "connection_cost": self.connection_cost,
            "opening_small": self.breakdown.opening_small,
            "opening_large": self.breakdown.opening_large,
            "num_facilities": self.solution.num_facilities(),
            "num_large_facilities": self.solution.num_large_facilities(),
            "runtime_seconds": self.runtime_seconds,
        }


def run_online(
    algorithm: OnlineAlgorithm,
    instance: Instance,
    *,
    rng: RandomState = None,
    trace: bool = False,
    validate: bool = True,
    use_accel: bool = True,
) -> OnlineResult:
    """Run an online algorithm over the request sequence of ``instance``.

    This is the batch shim over the streaming
    :class:`repro.api.session.OnlineSession`: the materialized sequence is fed
    through a session one request at a time, so batch and streaming execution
    share one code path and produce bit-identical costs for the same seed.
    ``use_accel=False`` selects the reference (scan-per-query) state
    implementation; see :mod:`repro.accel`.
    """
    # Imported lazily: repro.api.session depends on this module for the
    # OnlineAlgorithm / OnlineResult types.
    from repro.api.session import OnlineSession

    session = OnlineSession(
        algorithm,
        instance.metric,
        instance.cost_function,
        commodities=instance.commodities,
        rng=rng,
        trace=trace,
        validate=validate,
        use_accel=use_accel,
        name=instance.name,
        # Algorithms that inspect instance.requests (known-horizon baselines)
        # must see the caller's full instance, exactly as before the shim.
        instance=instance,
    )
    for request in instance.requests:
        session.submit(request.point, request.commodities)
    record = session.finalize()
    return record.source


class OfflineSolver(abc.ABC):
    """An offline solver producing a (reference) solution for a whole instance."""

    name: str = "offline-solver"

    @abc.abstractmethod
    def solve(self, instance: Instance) -> "OfflineResult":
        """Solve the instance and return the resulting solution and costs."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass
class OfflineResult:
    """Outcome of one offline solve."""

    solver: str
    instance_name: str
    solution: Solution
    total_cost: float
    opening_cost: float
    connection_cost: float
    runtime_seconds: float
    is_optimal: bool = False
    lower_bound: Optional[float] = None

    def summary(self) -> Dict[str, object]:
        return {
            "solver": self.solver,
            "instance": self.instance_name,
            "total_cost": self.total_cost,
            "opening_cost": self.opening_cost,
            "connection_cost": self.connection_cost,
            "num_facilities": self.solution.num_facilities(),
            "is_optimal": self.is_optimal,
            "runtime_seconds": self.runtime_seconds,
        }
