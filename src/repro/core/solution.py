"""Complete OMFLP solutions and their cost accounting.

The objective value of a solution is

``sum over opened facilities of f^σ_m  +  sum over requests of the connection
cost of their assignment``

exactly as in the ILP of Section 1.1.  :class:`Solution` performs this
accounting, provides the small/large cost breakdown used in the analysis and
validates feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.core.assignment import Assignment
from repro.core.facility import Facility
from repro.core.requests import RequestSequence
from repro.exceptions import InfeasibleSolutionError
from repro.metric.base import MetricSpace

__all__ = ["Solution", "CostBreakdown"]


@dataclass(frozen=True)
class CostBreakdown:
    """Decomposition of a solution's total cost.

    ``small``/``large`` follow the paper's terminology: a *large* facility
    offers all of ``S``; every other facility is *small* (the algorithms only
    ever open singleton-configuration small facilities, but offline references
    may open intermediate sizes, which are counted as small here).
    """

    opening_small: float
    opening_large: float
    connection: float

    @property
    def opening(self) -> float:
        return self.opening_small + self.opening_large

    @property
    def total(self) -> float:
        return self.opening + self.connection


class Solution:
    """A set of opened facilities plus one assignment per request."""

    def __init__(
        self,
        metric: MetricSpace,
        num_commodities: int,
        facilities: Iterable[Facility],
        assignments: Iterable[Assignment],
    ) -> None:
        self._metric = metric
        self._num_commodities = int(num_commodities)
        self._facilities: Dict[int, Facility] = {f.id: f for f in facilities}
        self._assignments: Dict[int, Assignment] = {a.request_index: a for a in assignments}

    # ------------------------------------------------------------------
    @property
    def facilities(self) -> List[Facility]:
        return [self._facilities[i] for i in sorted(self._facilities)]

    @property
    def assignments(self) -> List[Assignment]:
        return [self._assignments[i] for i in sorted(self._assignments)]

    def facility(self, facility_id: int) -> Facility:
        return self._facilities[facility_id]

    def assignment_for(self, request_index: int) -> Assignment:
        return self._assignments[request_index]

    def num_facilities(self) -> int:
        return len(self._facilities)

    def num_large_facilities(self) -> int:
        full = frozenset(range(self._num_commodities))
        return sum(1 for f in self._facilities.values() if f.configuration == full)

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------
    def opening_cost(self) -> float:
        return sum(f.opening_cost for f in self._facilities.values())

    def connection_cost(self, requests: RequestSequence) -> float:
        total = 0.0
        for request in requests:
            assignment = self._assignments.get(request.index)
            if assignment is None:
                raise InfeasibleSolutionError(f"request {request.index} has no assignment")
            total += assignment.connection_cost(request, self._facilities, self._metric)
        return total

    def total_cost(self, requests: RequestSequence) -> float:
        return self.opening_cost() + self.connection_cost(requests)

    def cost_breakdown(self, requests: RequestSequence) -> CostBreakdown:
        full = frozenset(range(self._num_commodities))
        opening_small = sum(
            f.opening_cost for f in self._facilities.values() if f.configuration != full
        )
        opening_large = sum(
            f.opening_cost for f in self._facilities.values() if f.configuration == full
        )
        return CostBreakdown(
            opening_small=opening_small,
            opening_large=opening_large,
            connection=self.connection_cost(requests),
        )

    # ------------------------------------------------------------------
    def validate(self, requests: RequestSequence) -> None:
        """Raise :class:`InfeasibleSolutionError` unless the solution is feasible."""
        for request in requests:
            assignment = self._assignments.get(request.index)
            if assignment is None:
                raise InfeasibleSolutionError(f"request {request.index} has no assignment")
            assignment.validate(request, self._facilities)
        for facility in self._facilities.values():
            if not 0 <= facility.point < self._metric.num_points:
                raise InfeasibleSolutionError(
                    f"facility {facility.id} is located at unknown point {facility.point}"
                )
            for commodity in facility.configuration:
                if not 0 <= commodity < self._num_commodities:
                    raise InfeasibleSolutionError(
                        f"facility {facility.id} offers unknown commodity {commodity}"
                    )

    def summary(self, requests: RequestSequence) -> str:
        """Human-readable one-paragraph summary used by the examples."""
        breakdown = self.cost_breakdown(requests)
        return (
            f"{len(self._facilities)} facilities "
            f"({self.num_large_facilities()} large), "
            f"opening cost {breakdown.opening:.4f} "
            f"(small {breakdown.opening_small:.4f} / large {breakdown.opening_large:.4f}), "
            f"connection cost {breakdown.connection:.4f}, "
            f"total {breakdown.total:.4f}"
        )
