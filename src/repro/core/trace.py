"""Execution traces of online algorithms.

The paper's Figures 1 and 3 are conceptual illustrations of algorithm
behaviour (rounds of the lower-bound game; the small-vs-large connection
choice of RAND-OMFLP).  The reproduction renders them as *executable traces*:
every online algorithm can record a sequence of structured events which the
corresponding experiments print as transcripts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence

from repro.exceptions import SnapshotError

__all__ = [
    "TraceEvent",
    "FacilityOpenedEvent",
    "RequestAssignedEvent",
    "DualFreezeEvent",
    "CoinFlipEvent",
    "Trace",
    "event_from_dict",
]


@dataclass(frozen=True)
class TraceEvent:
    """Base class of all trace events."""

    request_index: int

    def describe(self) -> str:
        return f"[request {self.request_index}] event"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form: field values plus the event type name.

        Frozensets and tuples become sorted lists / lists so the result
        round-trips through strict JSON; :func:`event_from_dict` is the
        inverse.
        """
        data: Dict[str, Any] = {"type": type(self).__name__}
        for spec in dataclasses.fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, frozenset):
                value = sorted(value)
            elif isinstance(value, tuple):
                value = list(value)
            data[spec.name] = value
        return data


@dataclass(frozen=True)
class FacilityOpenedEvent(TraceEvent):
    """A facility was opened while processing a request."""

    facility_id: int = -1
    point: int = -1
    configuration: FrozenSet[int] = frozenset()
    opening_cost: float = 0.0
    is_large: bool = False

    def describe(self) -> str:
        kind = "large" if self.is_large else "small"
        config = "S" if self.is_large else str(sorted(self.configuration))
        return (
            f"[request {self.request_index}] opened {kind} facility #{self.facility_id} "
            f"at point {self.point} offering {config} (cost {self.opening_cost:.4f})"
        )


@dataclass(frozen=True)
class RequestAssignedEvent(TraceEvent):
    """A request was (fully) connected."""

    facility_ids: Sequence[int] = ()
    connection_cost: float = 0.0
    via_large: bool = False

    def describe(self) -> str:
        mode = "a single large facility" if self.via_large else f"{len(self.facility_ids)} facility(ies)"
        return (
            f"[request {self.request_index}] connected via {mode} "
            f"{sorted(self.facility_ids)} (connection cost {self.connection_cost:.4f})"
        )


@dataclass(frozen=True)
class DualFreezeEvent(TraceEvent):
    """A dual variable a_{re} stopped increasing (PD-OMFLP)."""

    commodity: int = -1
    value: float = 0.0
    reason: str = ""

    def describe(self) -> str:
        return (
            f"[request {self.request_index}] froze dual a_(r,{self.commodity}) = "
            f"{self.value:.4f} ({self.reason})"
        )


@dataclass(frozen=True)
class CoinFlipEvent(TraceEvent):
    """A randomized opening decision (RAND-OMFLP)."""

    kind: str = "small"  # "small" or "large"
    commodity: Optional[int] = None
    class_index: int = 0
    probability: float = 0.0
    success: bool = False

    def describe(self) -> str:
        target = "large facility" if self.kind == "large" else f"small facility for commodity {self.commodity}"
        outcome = "OPENED" if self.success else "skipped"
        return (
            f"[request {self.request_index}] coin flip for {target}, class {self.class_index}, "
            f"p = {self.probability:.4f} -> {outcome}"
        )


#: Concrete event types by class name, for :func:`event_from_dict`.
_EVENT_TYPES = {
    cls.__name__: cls
    for cls in (
        TraceEvent,
        FacilityOpenedEvent,
        RequestAssignedEvent,
        DualFreezeEvent,
        CoinFlipEvent,
    )
}


def event_from_dict(data: Mapping[str, Any]) -> TraceEvent:
    """Rebuild a trace event from its :meth:`TraceEvent.to_dict` form."""
    kind = data.get("type")
    cls = _EVENT_TYPES.get(str(kind))
    if cls is None:
        raise SnapshotError(
            f"unknown trace event type {kind!r}; known: {', '.join(sorted(_EVENT_TYPES))}"
        )
    fields = {str(key): value for key, value in data.items() if key != "type"}
    if cls is FacilityOpenedEvent:
        fields["configuration"] = frozenset(int(e) for e in fields.get("configuration", ()))
    if cls is RequestAssignedEvent:
        fields["facility_ids"] = tuple(int(f) for f in fields.get("facility_ids", ()))
    try:
        return cls(**fields)
    except TypeError as error:
        raise SnapshotError(f"malformed {kind} trace event: {error}") from None


class Trace:
    """An append-only list of trace events with pretty-printing helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        if self.enabled:
            self._events.append(event)

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """JSON-compatible snapshot of the trace (flag plus events)."""
        return {
            "enabled": self.enabled,
            "events": [event.to_dict() for event in self._events],
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Replace the trace contents with a snapshot's events."""
        self.enabled = bool(state["enabled"])
        self._events = [event_from_dict(entry) for entry in state["events"]]

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def events_for_request(self, request_index: int) -> List[TraceEvent]:
        return [e for e in self._events if e.request_index == request_index]

    def facility_openings(self) -> List[FacilityOpenedEvent]:
        return [e for e in self._events if isinstance(e, FacilityOpenedEvent)]

    def transcript(self) -> str:
        """Multi-line human-readable transcript of the whole run."""
        return "\n".join(event.describe() for event in self._events)

    def __len__(self) -> int:
        return len(self._events)
