"""Mutable run-time state shared by all online algorithms.

:class:`OnlineState` owns the facility store, the accumulated assignments and
the event trace of one online run.  Algorithms interact with it through a
small set of verbs — ``open_facility``, ``assign``, distance queries — and the
runner converts the final state into an immutable
:class:`~repro.core.solution.Solution`.

Keeping this state in one place guarantees that every algorithm is charged
costs in exactly the same way (the cost model lives here, not in each
algorithm), which is essential for fair competitive-ratio comparisons.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.assignment import Assignment
from repro.core.facility import Facility, FacilityStore
from repro.core.instance import Instance
from repro.core.requests import Request
from repro.core.solution import Solution
from repro.core.trace import FacilityOpenedEvent, RequestAssignedEvent, Trace
from repro.exceptions import AlgorithmError, SnapshotError

__all__ = ["OnlineState"]


class OnlineState:
    """State of one online execution over a fixed instance."""

    def __init__(
        self,
        instance: Instance,
        *,
        trace: Optional[Trace] = None,
        use_accel: bool = True,
    ) -> None:
        self._instance = instance
        self._store = FacilityStore(
            instance.metric, instance.cost_function, use_accel=use_accel
        )
        self._assignments: Dict[int, Assignment] = {}
        self._trace = trace if trace is not None else Trace(enabled=False)
        self._full_set = instance.cost_function.full_set
        self._processed_requests: List[Request] = []
        # Connection cost accumulated assignment by assignment.  Assignments
        # are irrevocable, so each request's connection cost is fixed the
        # moment it is recorded; summing incrementally (in arrival order, the
        # same order Solution.connection_cost uses) makes streaming sessions
        # O(1) per request instead of O(n) end-of-run recomputation while
        # staying bit-identical to the batch total.
        self._connection_cost = 0.0

    # ------------------------------------------------------------------
    # Read-only views
    # ------------------------------------------------------------------
    @property
    def instance(self) -> Instance:
        return self._instance

    @property
    def store(self) -> FacilityStore:
        return self._store

    @property
    def trace(self) -> Trace:
        return self._trace

    @property
    def processed_requests(self) -> List[Request]:
        """Requests processed so far, in arrival order (the paper's current ``R``)."""
        return list(self._processed_requests)

    def assignment_of(self, request_index: int) -> Assignment:
        return self._assignments[request_index]

    # ------------------------------------------------------------------
    # Distance queries (the paper's d(F(e), r) and d(F̂, r))
    # ------------------------------------------------------------------
    def distance_to_nearest(self, commodity: int, point: int) -> float:
        return self._store.distance_to_nearest(commodity, point)

    def distance_to_nearest_large(self, point: int) -> float:
        return self._store.distance_to_nearest_large(point)

    def nearest_offering(self, commodity: int, point: int) -> Optional[Tuple[Facility, float]]:
        return self._store.nearest_offering(commodity, point)

    def nearest_large(self, point: int) -> Optional[Tuple[Facility, float]]:
        return self._store.nearest_large(point)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def open_facility(self, request: Request, point: int, configuration: Iterable[int]) -> Facility:
        """Open a facility while processing ``request`` (charged immediately)."""
        facility = self._store.open(point, configuration)
        self._trace.record(
            FacilityOpenedEvent(
                request_index=request.index,
                facility_id=facility.id,
                point=facility.point,
                configuration=facility.configuration,
                opening_cost=facility.opening_cost,
                is_large=facility.configuration == self._full_set,
            )
        )
        return facility

    def open_large_facility(self, request: Request, point: int) -> Facility:
        """Open a facility offering all of ``S`` at ``point``."""
        return self.open_facility(request, point, self._full_set)

    def record_assignment(self, request: Request, assignment: Assignment) -> None:
        """Finalize the (irrevocable) assignment of ``request``."""
        if request.index in self._assignments:
            raise AlgorithmError(f"request {request.index} was assigned twice")
        facilities = self._store.facility_map()
        assignment.validate(request, facilities)
        self._assignments[request.index] = assignment
        self._processed_requests.append(request)
        connection = assignment.connection_cost(request, facilities, self._instance.metric)
        self._connection_cost += connection
        self._trace.record(
            RequestAssignedEvent(
                request_index=request.index,
                facility_ids=tuple(sorted(assignment.facility_ids())),
                connection_cost=connection,
                via_large=assignment.uses_single_facility()
                and facilities[next(iter(assignment.facility_ids()))].configuration == self._full_set,
            )
        )

    def assign_to_single_facility(self, request: Request, facility: Facility) -> Assignment:
        """Connect every demanded commodity of ``request`` to one facility."""
        if not facility.offers_all(request.commodities):
            raise AlgorithmError(
                f"facility {facility.id} does not offer all commodities of request {request.index}"
            )
        assignment = Assignment(request_index=request.index)
        for commodity in request.commodities:
            assignment.assign(commodity, facility.id)
        self.record_assignment(request, assignment)
        return assignment

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    def current_opening_cost(self) -> float:
        return self._store.total_opening_cost

    def current_connection_cost(self) -> float:
        """Connection cost of all assignments so far (incrementally maintained)."""
        return self._connection_cost

    def current_total_cost(self) -> float:
        return self.current_opening_cost() + self.current_connection_cost()

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """JSON-compatible snapshot of facilities, assignments and trace.

        Assignment entries are stored in their original dict insertion order
        (the order the algorithm called ``assign``), which
        :meth:`load_state_dict` preserves so that rebuilt frozensets iterate
        — and hence connection-cost sums accumulate — in exactly the original
        float order.
        """
        return {
            "store": self._store.state_dict(),
            "requests": [
                [r.point, sorted(r.commodities)] for r in self._processed_requests
            ],
            "assignments": [
                [
                    [int(e), int(fid)]
                    for e, fid in self._assignments[
                        r.index
                    ].facility_of_commodity.items()
                ]
                for r in self._processed_requests
            ],
            "trace": self._trace.state_dict(),
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Deterministically rebuild the state by replaying its mutation log.

        Facilities are re-opened in id order (recharging identical opening
        costs and refolding the accel trackers in the original sequence) and
        assignments are re-recorded in arrival order (re-accumulating the
        identical connection-cost sum).  Requires a fresh state; the trace is
        restored verbatim from the snapshot rather than re-recorded.
        """
        if self._processed_requests or len(self._store):
            raise SnapshotError(
                "OnlineState.load_state_dict requires a fresh state; this one "
                f"already processed {len(self._processed_requests)} requests"
            )
        self._store.load_state_dict(state["store"])
        enabled = self._trace.enabled
        self._trace.enabled = False
        try:
            for index, ((point, commodities), items) in enumerate(
                zip(state["requests"], state["assignments"])
            ):
                request = Request(
                    index=index,
                    point=int(point),
                    commodities=frozenset(int(e) for e in commodities),
                )
                self._instance.validate_request(request)
                assignment = Assignment(request_index=index)
                for commodity, facility_id in items:
                    assignment.assign(int(commodity), int(facility_id))
                self.record_assignment(request, assignment)
        finally:
            self._trace.enabled = enabled
        self._trace.load_state_dict(state["trace"])

    # ------------------------------------------------------------------
    def to_solution(self) -> Solution:
        """Freeze the state into an immutable solution."""
        return Solution(
            self._instance.metric,
            self._instance.num_commodities,
            self._store.facilities,
            self._assignments.values(),
        )
