"""The commodity universe ``S``.

Commodities are represented as integers ``0, ..., |S| - 1`` throughout the
library; this class adds optional human-readable names (e.g. service names in
the introduction's provider scenario), validation and sampling helpers.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["CommodityUniverse"]


class CommodityUniverse:
    """The finite set ``S`` of commodities (services).

    Parameters
    ----------
    size:
        Number of commodities ``|S|``; must be positive.
    names:
        Optional list of ``size`` distinct human-readable names.
    """

    def __init__(self, size: int, *, names: Optional[Sequence[str]] = None) -> None:
        if size <= 0:
            raise InvalidInstanceError(f"|S| must be positive, got {size}")
        self._size = int(size)
        if names is not None:
            if len(names) != size:
                raise InvalidInstanceError(
                    f"got {len(names)} names for {size} commodities"
                )
            if len(set(names)) != len(names):
                raise InvalidInstanceError("commodity names must be distinct")
            self._names: Optional[List[str]] = list(names)
            self._index_of_name = {name: i for i, name in enumerate(self._names)}
        else:
            self._names = None
            self._index_of_name = {}

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """``|S|``."""
        return self._size

    @property
    def full_set(self) -> FrozenSet[int]:
        """The full commodity set ``S`` as a frozenset of indices."""
        return frozenset(range(self._size))

    def name_of(self, commodity: int) -> str:
        """Human-readable name of a commodity (falls back to ``s<i>``)."""
        self.check(commodity)
        if self._names is not None:
            return self._names[commodity]
        return f"s{commodity}"

    def index_of(self, name: str) -> int:
        """Commodity index of a named commodity."""
        if name in self._index_of_name:
            return self._index_of_name[name]
        if name.startswith("s") and name[1:].isdigit():
            index = int(name[1:])
            self.check(index)
            return index
        raise InvalidInstanceError(f"unknown commodity name {name!r}")

    def check(self, commodity: int) -> int:
        """Validate a commodity index and return it."""
        if not 0 <= commodity < self._size:
            raise InvalidInstanceError(
                f"commodity {commodity} out of range [0, {self._size})"
            )
        return int(commodity)

    def subset(self, commodities: Iterable[int]) -> FrozenSet[int]:
        """Validate and freeze a commodity subset."""
        return frozenset(self.check(int(e)) for e in commodities)

    def sample_subset(
        self,
        size: int,
        *,
        rng: RandomState = None,
        weights: Optional[Sequence[float]] = None,
    ) -> FrozenSet[int]:
        """Sample a subset of exactly ``size`` distinct commodities.

        ``weights`` gives an (unnormalized) popularity per commodity; sampling
        is then without replacement proportional to the weights, which is how
        the Zipf workload generates skewed demands.
        """
        if not 1 <= size <= self._size:
            raise InvalidInstanceError(
                f"subset size must lie in [1, {self._size}], got {size}"
            )
        generator = ensure_rng(rng)
        if weights is None:
            members = generator.choice(self._size, size=size, replace=False)
        else:
            weight_array = np.asarray(weights, dtype=np.float64)
            if weight_array.shape != (self._size,):
                raise InvalidInstanceError(
                    f"weights must have length {self._size}, got {weight_array.shape}"
                )
            if np.any(weight_array < 0) or weight_array.sum() <= 0:
                raise InvalidInstanceError("weights must be non-negative and not all zero")
            probabilities = weight_array / weight_array.sum()
            members = generator.choice(self._size, size=size, replace=False, p=probabilities)
        return frozenset(int(e) for e in members)

    def __len__(self) -> int:
        return self._size

    def __iter__(self):
        return iter(range(self._size))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CommodityUniverse(size={self._size})"
