"""OMFLP problem instances.

An instance bundles the three ingredients of Section 1.1: a finite metric
space ``M``, a facility construction cost function ``f^σ_m`` and the request
sequence.  The same object serves as the offline instance (the whole sequence
is visible) and as the online instance (algorithms consume requests in
arrival order through :class:`repro.algorithms.base.OnlineAlgorithm`).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.commodities import CommodityUniverse
from repro.core.requests import Request, RequestSequence
from repro.costs.base import FacilityCostFunction
from repro.exceptions import InvalidInstanceError
from repro.metric.base import MetricSpace

__all__ = ["Instance"]


class Instance:
    """A complete OMFLP instance.

    Parameters
    ----------
    metric:
        The finite metric space whose points host requests and facilities.
    cost_function:
        The construction cost function ``f^σ_m``.
    requests:
        The request sequence in arrival order.
    commodities:
        Optional commodity universe (defaults to one inferred from the cost
        function); supplying it allows named commodities in reports.
    name:
        Optional instance name used by the experiment tables.
    """

    def __init__(
        self,
        metric: MetricSpace,
        cost_function: FacilityCostFunction,
        requests: RequestSequence,
        *,
        commodities: Optional[CommodityUniverse] = None,
        name: Optional[str] = None,
    ) -> None:
        self._metric = metric
        self._cost_function = cost_function
        self._requests = requests
        self._commodities = commodities or CommodityUniverse(cost_function.num_commodities)
        if self._commodities.size != cost_function.num_commodities:
            raise InvalidInstanceError(
                f"commodity universe has size {self._commodities.size} but the cost function "
                f"expects |S| = {cost_function.num_commodities}"
            )
        self.name = name or "instance"
        self._validate()

    def _validate(self) -> None:
        for request in self._requests:
            self.validate_request(request)

    def validate_request(self, request: Request) -> None:
        """Check one request against this instance's metric and commodities.

        Used both for the constructor's whole-sequence validation and for
        requests arriving incrementally through a streaming session.
        """
        if not 0 <= request.point < self._metric.num_points:
            raise InvalidInstanceError(
                f"request {request.index} is located at unknown point {request.point}"
            )
        for commodity in request.commodities:
            self._commodities.check(commodity)

    # ------------------------------------------------------------------
    @property
    def metric(self) -> MetricSpace:
        return self._metric

    @property
    def cost_function(self) -> FacilityCostFunction:
        return self._cost_function

    @property
    def requests(self) -> RequestSequence:
        return self._requests

    @property
    def commodities(self) -> CommodityUniverse:
        return self._commodities

    @property
    def num_requests(self) -> int:
        """``n`` — the number of requests."""
        return len(self._requests)

    @property
    def num_commodities(self) -> int:
        """``|S|`` — the number of commodities."""
        return self._commodities.size

    @property
    def num_points(self) -> int:
        """``|M|`` — the number of metric points."""
        return self._metric.num_points

    # ------------------------------------------------------------------
    def prefix(self, length: int) -> "Instance":
        """The instance restricted to the first ``length`` requests."""
        return Instance(
            self._metric,
            self._cost_function,
            self._requests.prefix(length),
            commodities=self._commodities,
            name=f"{self.name}[:{length}]",
        )

    def reordered(self, order: Sequence[int]) -> "Instance":
        """The same instance with a permuted arrival order."""
        return Instance(
            self._metric,
            self._cost_function,
            self._requests.reordered(order),
            commodities=self._commodities,
            name=f"{self.name}(reordered)",
        )

    def split_per_commodity(self) -> "Instance":
        """The per-commodity-cost model simulation of Section 1.1."""
        return Instance(
            self._metric,
            self._cost_function,
            self._requests.split_per_commodity(),
            commodities=self._commodities,
            name=f"{self.name}(split)",
        )

    def describe(self) -> Dict[str, object]:
        """Small dictionary of summary statistics used in experiment tables."""
        return {
            "name": self.name,
            "num_requests": self.num_requests,
            "num_commodities": self.num_commodities,
            "num_points": self.num_points,
            "total_demand": self._requests.total_demand(),
            "metric": type(self._metric).__name__,
            "cost_function": getattr(self._cost_function, "name", type(self._cost_function).__name__),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Instance(name={self.name!r}, n={self.num_requests}, "
            f"|S|={self.num_commodities}, |M|={self.num_points})"
        )
