"""JSON (de)serialization of OMFLP instances.

Benchmark instances need to be shareable: an experiment that found an
interesting instance (e.g. a seed where an algorithm behaves badly) should be
able to dump it to a file that another machine — or a future version of the
library — can load bit-for-bit.  This module serializes

* the metric space as its explicit distance matrix (every
  :class:`~repro.metric.base.MetricSpace` can produce one; it is reloaded as
  an :class:`~repro.metric.matrix.ExplicitMetric`),
* the request sequence verbatim, and
* the cost function for the count-based families used by the paper's
  experiments (:class:`PowerCost`, :class:`LinearCost`, :class:`ConstantCost`,
  :class:`AdversaryCost`, with optional per-point scales) and for
  :class:`WeightedConcaveCost` with the default square-root transform.

Cost functions outside these families raise a clear error instead of being
silently approximated.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.core.commodities import CommodityUniverse
from repro.core.instance import Instance
from repro.core.requests import RequestSequence
from repro.costs.base import FacilityCostFunction
from repro.costs.count_based import AdversaryCost, ConstantCost, LinearCost, PowerCost
from repro.costs.general import WeightedConcaveCost
from repro.exceptions import InvalidInstanceError
from repro.metric.matrix import ExplicitMetric

__all__ = ["instance_to_dict", "instance_from_dict", "save_instance", "load_instance"]

#: Serialization format version (bump on breaking changes).
_FORMAT_VERSION = 1


def _cost_to_dict(cost: FacilityCostFunction) -> Dict[str, Any]:
    scales = getattr(cost, "_scales", None)
    scales_list = None if scales is None else [float(s) for s in scales]
    if isinstance(cost, PowerCost):
        return {
            "kind": "power",
            "num_commodities": cost.num_commodities,
            "exponent_x": cost.exponent_x,
            "scale": cost.scale,
            "point_scales": scales_list,
        }
    if isinstance(cost, LinearCost):
        return {
            "kind": "linear",
            "num_commodities": cost.num_commodities,
            "scale": cost.scale,
            "point_scales": scales_list,
        }
    if isinstance(cost, ConstantCost):
        return {
            "kind": "constant",
            "num_commodities": cost.num_commodities,
            "scale": cost.scale,
            "point_scales": scales_list,
        }
    if isinstance(cost, AdversaryCost):
        return {
            "kind": "adversary",
            "num_commodities": cost.num_commodities,
            "scale": cost.scale,
            "point_scales": scales_list,
        }
    if isinstance(cost, WeightedConcaveCost):
        return {
            "kind": "weighted-concave-sqrt",
            "weights": [float(w) for w in cost.weights],
            "point_scales": scales_list,
        }
    raise InvalidInstanceError(
        f"cost functions of type {type(cost).__name__} cannot be serialized; "
        "supported: PowerCost, LinearCost, ConstantCost, AdversaryCost, "
        "WeightedConcaveCost (sqrt transform)"
    )


def _cost_from_dict(data: Dict[str, Any]) -> FacilityCostFunction:
    kind = data.get("kind")
    scales = data.get("point_scales")
    if kind == "power":
        return PowerCost(
            int(data["num_commodities"]),
            float(data["exponent_x"]),
            scale=float(data["scale"]),
            point_scales=scales,
        )
    if kind == "linear":
        return LinearCost(
            int(data["num_commodities"]), scale=float(data["scale"]), point_scales=scales
        )
    if kind == "constant":
        return ConstantCost(
            int(data["num_commodities"]), scale=float(data["scale"]), point_scales=scales
        )
    if kind == "adversary":
        return AdversaryCost(
            int(data["num_commodities"]), scale=float(data["scale"]), point_scales=scales
        )
    if kind == "weighted-concave-sqrt":
        return WeightedConcaveCost(data["weights"], point_scales=scales)
    raise InvalidInstanceError(f"unknown serialized cost kind {kind!r}")


def instance_to_dict(instance: Instance) -> Dict[str, Any]:
    """Serialize an instance into a JSON-compatible dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": instance.name,
        "metric": {
            "kind": "explicit",
            "matrix": [
                [float(v) for v in row] for row in instance.metric.pairwise_matrix()
            ],
        },
        "cost_function": _cost_to_dict(instance.cost_function),
        "requests": [
            {"point": request.point, "commodities": sorted(request.commodities)}
            for request in instance.requests
        ],
        "commodity_names": [
            instance.commodities.name_of(e) for e in range(instance.num_commodities)
        ],
    }


def instance_from_dict(data: Dict[str, Any]) -> Instance:
    """Reconstruct an instance from :func:`instance_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise InvalidInstanceError(
            f"unsupported instance format version {version!r} (expected {_FORMAT_VERSION})"
        )
    metric_data = data.get("metric", {})
    if metric_data.get("kind") != "explicit":
        raise InvalidInstanceError(f"unknown serialized metric kind {metric_data.get('kind')!r}")
    metric = ExplicitMetric(np.asarray(metric_data["matrix"], dtype=np.float64))
    cost = _cost_from_dict(data["cost_function"])
    requests = RequestSequence.from_tuples(
        [(entry["point"], entry["commodities"]) for entry in data["requests"]]
    )
    names = data.get("commodity_names")
    commodities = (
        CommodityUniverse(cost.num_commodities, names=names)
        if names and len(set(names)) == cost.num_commodities
        else CommodityUniverse(cost.num_commodities)
    )
    return Instance(metric, cost, requests, commodities=commodities, name=data.get("name", "instance"))


def save_instance(instance: Instance, path: Union[str, Path]) -> Path:
    """Write an instance to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(instance_to_dict(instance), indent=2))
    return path


def load_instance(path: Union[str, Path]) -> Instance:
    """Load an instance previously written by :func:`save_instance`."""
    return instance_from_dict(json.loads(Path(path).read_text()))
