"""Core OMFLP model: commodities, requests, facilities, solutions, instances.

This subpackage is the executable form of Section 1.1 of the paper ("Model &
Problem Definition"):

* requests are located at points of a finite metric space and demand a set of
  commodities ``s_r ⊆ S`` (:class:`~repro.core.requests.Request`);
* facilities are opened at points with a configuration ``σ ⊆ S`` and cost
  ``f^σ_m`` (:class:`~repro.core.facility.Facility`,
  :class:`~repro.core.facility.FacilityStore`);
* a request must be connected to a set of facilities jointly offering its
  commodities, paying the sum of distances to the *distinct* facilities it is
  connected to (:class:`~repro.core.assignment.Assignment`);
* a solution is a set of opened facilities plus one assignment per request,
  with total cost = construction + connection
  (:class:`~repro.core.solution.Solution`);
* an instance bundles the metric space, the cost function and the request
  sequence (:class:`~repro.core.instance.Instance`);
* :class:`~repro.core.state.OnlineState` is the mutable run-time state shared
  by all online algorithms (open facilities, irrevocable assignments,
  incremental cost accounting, event trace).
"""

from repro.core.assignment import Assignment
from repro.core.commodities import CommodityUniverse
from repro.core.facility import Facility, FacilityStore
from repro.core.instance import Instance
from repro.core.requests import Request, RequestSequence
from repro.core.serialization import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)
from repro.core.solution import Solution
from repro.core.state import OnlineState
from repro.core.trace import (
    CoinFlipEvent,
    DualFreezeEvent,
    FacilityOpenedEvent,
    RequestAssignedEvent,
    Trace,
    TraceEvent,
)

__all__ = [
    "CommodityUniverse",
    "Request",
    "RequestSequence",
    "Facility",
    "FacilityStore",
    "Assignment",
    "Solution",
    "Instance",
    "OnlineState",
    "Trace",
    "TraceEvent",
    "FacilityOpenedEvent",
    "RequestAssignedEvent",
    "DualFreezeEvent",
    "CoinFlipEvent",
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
]
