"""Assignment of one request to a set of facilities.

Section 1.1: "Each request r ∈ R has to be connected to a set of facilities
F′ ⊆ F such that every commodity requested by r is offered by at least one
facility in F′.  The connection cost for r is then determined by the sum of
the distances from r to every facility of F′."

The assignment therefore records which facility serves each demanded
commodity; the connection cost counts each *distinct* facility once, which is
exactly the paper's primary cost model (the per-commodity cost model is
obtained by splitting requests, see
:meth:`repro.core.requests.RequestSequence.split_per_commodity`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping

from repro.core.facility import Facility
from repro.core.requests import Request
from repro.exceptions import InfeasibleSolutionError
from repro.metric.base import MetricSpace

__all__ = ["Assignment"]


@dataclass
class Assignment:
    """Which facility serves each commodity of one request.

    Attributes
    ----------
    request_index:
        Index of the request this assignment belongs to.
    facility_of_commodity:
        Mapping from each demanded commodity to the id of the facility that
        serves it.
    """

    request_index: int
    facility_of_commodity: Dict[int, int] = field(default_factory=dict)

    def assign(self, commodity: int, facility_id: int) -> None:
        """Record that ``commodity`` is served by ``facility_id``."""
        self.facility_of_commodity[int(commodity)] = int(facility_id)

    def assigned_commodities(self) -> FrozenSet[int]:
        return frozenset(self.facility_of_commodity.keys())

    def facility_ids(self) -> FrozenSet[int]:
        """The set ``F'`` of distinct facilities the request is connected to."""
        return frozenset(self.facility_of_commodity.values())

    def uses_single_facility(self) -> bool:
        """True when all commodities are served by one facility (e.g. a large one)."""
        return len(self.facility_ids()) == 1

    # ------------------------------------------------------------------
    def connection_cost(self, request: Request, facilities: Mapping[int, Facility], metric: MetricSpace) -> float:
        """Sum of distances from the request to its distinct facilities."""
        total = 0.0
        for facility_id in self.facility_ids():
            facility = facilities[facility_id]
            total += metric.distance(request.point, facility.point)
        return total

    def validate(self, request: Request, facilities: Mapping[int, Facility]) -> None:
        """Raise :class:`InfeasibleSolutionError` unless the assignment is feasible.

        Feasibility means: every demanded commodity is assigned, no undemanded
        commodity is assigned, every referenced facility exists and offers the
        commodity it serves.
        """
        if self.request_index != request.index:
            raise InfeasibleSolutionError(
                f"assignment for request {self.request_index} validated against request {request.index}"
            )
        assigned = self.assigned_commodities()
        missing = request.commodities - assigned
        if missing:
            raise InfeasibleSolutionError(
                f"request {request.index}: commodities {sorted(missing)} are not served"
            )
        extra = assigned - request.commodities
        if extra:
            raise InfeasibleSolutionError(
                f"request {request.index}: commodities {sorted(extra)} are assigned but not demanded"
            )
        for commodity, facility_id in self.facility_of_commodity.items():
            if facility_id not in facilities:
                raise InfeasibleSolutionError(
                    f"request {request.index}: facility {facility_id} does not exist"
                )
            facility = facilities[facility_id]
            if not facility.offers(commodity):
                raise InfeasibleSolutionError(
                    f"request {request.index}: facility {facility_id} does not offer commodity {commodity}"
                )
