"""Requests and request sequences.

A request ``r`` is located at a point of the metric space and demands a set
``s_r ⊆ S`` of commodities.  In the online problem the requests arrive one at
a time in the order of a :class:`RequestSequence`; decisions made on arrival
are irrevocable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Sequence, Tuple

from repro.exceptions import InvalidInstanceError

__all__ = ["Request", "RequestSequence"]


@dataclass(frozen=True)
class Request:
    """A single request.

    Attributes
    ----------
    index:
        Arrival position in the sequence (0-based).
    point:
        Index of the metric-space point where the request is located.
    commodities:
        The demanded commodity set ``s_r`` (non-empty).
    """

    index: int
    point: int
    commodities: FrozenSet[int]

    def __post_init__(self) -> None:
        if self.index < 0:
            raise InvalidInstanceError(f"request index must be non-negative, got {self.index}")
        if self.point < 0:
            raise InvalidInstanceError(f"request point must be non-negative, got {self.point}")
        if not isinstance(self.commodities, frozenset):
            object.__setattr__(self, "commodities", frozenset(self.commodities))
        if not self.commodities:
            raise InvalidInstanceError(f"request {self.index} demands no commodities")

    @property
    def num_commodities(self) -> int:
        """``|s_r|``."""
        return len(self.commodities)

    def demands(self, commodity: int) -> bool:
        """Whether the request demands the given commodity."""
        return commodity in self.commodities


class RequestSequence:
    """An ordered sequence of requests (the online input).

    The sequence validates that request indices are consecutive arrival
    positions and provides the derived views used by algorithms and
    experiments (requests per commodity, prefix subsequences, re-indexing).
    """

    def __init__(self, requests: Iterable[Request]) -> None:
        self._requests: List[Request] = list(requests)
        for expected, request in enumerate(self._requests):
            if request.index != expected:
                raise InvalidInstanceError(
                    f"request at position {expected} has index {request.index}; "
                    "indices must equal arrival positions"
                )

    @classmethod
    def from_tuples(
        cls, items: Iterable[Tuple[int, Iterable[int]]]
    ) -> "RequestSequence":
        """Build a sequence from ``(point, commodities)`` tuples in arrival order."""
        requests = [
            Request(index=i, point=int(point), commodities=frozenset(int(e) for e in commodities))
            for i, (point, commodities) in enumerate(items)
        ]
        return cls(requests)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __getitem__(self, index: int) -> Request:
        return self._requests[index]

    @property
    def requests(self) -> List[Request]:
        return list(self._requests)

    def points(self) -> List[int]:
        """Request locations in arrival order."""
        return [r.point for r in self._requests]

    def commodities_used(self) -> FrozenSet[int]:
        """Union of all demanded commodity sets."""
        union: set = set()
        for request in self._requests:
            union |= request.commodities
        return frozenset(union)

    def requests_demanding(self, commodity: int) -> List[Request]:
        """All requests whose demand set contains ``commodity`` (``R(e)`` in the paper)."""
        return [r for r in self._requests if commodity in r.commodities]

    def total_demand(self) -> int:
        """``sum_r |s_r|`` — the sequence length after the per-commodity split of §1.1."""
        return sum(r.num_commodities for r in self._requests)

    def prefix(self, length: int) -> "RequestSequence":
        """The first ``length`` requests as a new sequence."""
        if not 0 <= length <= len(self._requests):
            raise InvalidInstanceError(
                f"prefix length {length} out of range [0, {len(self._requests)}]"
            )
        return RequestSequence(self._requests[:length])

    def reordered(self, order: Sequence[int]) -> "RequestSequence":
        """Return the same multiset of requests in a different arrival order.

        Used by the arrival-order workload models (adversarial vs random
        order): the request contents stay identical but indices are rewritten
        to the new positions.
        """
        if sorted(order) != list(range(len(self._requests))):
            raise InvalidInstanceError("order must be a permutation of the request positions")
        reordered = [
            Request(index=i, point=self._requests[j].point, commodities=self._requests[j].commodities)
            for i, j in enumerate(order)
        ]
        return RequestSequence(reordered)

    def split_per_commodity(self) -> "RequestSequence":
        """Replace each request by ``|s_r|`` single-commodity requests (Section 1.1).

        This realizes the paper's "different cost model" reduction: counting
        connection cost per commodity is simulated by splitting requests.
        """
        singles: List[Request] = []
        for request in self._requests:
            for commodity in sorted(request.commodities):
                singles.append(
                    Request(index=len(singles), point=request.point, commodities=frozenset((commodity,)))
                )
        return RequestSequence(singles)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RequestSequence(n={len(self._requests)})"
