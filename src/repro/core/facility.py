"""Facilities and the store of currently open facilities.

A facility is opened at a point with a configuration ``σ ⊆ S`` and never
closes (online decisions are irrevocable).  :class:`FacilityStore` maintains
the open facilities together with the per-commodity indexes the paper's
notation refers to: ``F(e)`` (facilities offering commodity ``e``) and ``F̂``
(facilities offering all of ``S``, the *large* facilities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.accel.tracker import NearestSetTracker
from repro.costs.base import FacilityCostFunction
from repro.exceptions import InvalidInstanceError, SnapshotError
from repro.metric.base import MetricSpace

__all__ = ["Facility", "FacilityStore"]


@dataclass(frozen=True)
class Facility:
    """An opened facility.

    Attributes
    ----------
    id:
        Opening order (0-based, unique within a solution).
    point:
        Metric-space point where the facility is located.
    configuration:
        Set of commodities offered.
    opening_cost:
        The construction cost ``f^σ_m`` paid when the facility was opened.
    """

    id: int
    point: int
    configuration: FrozenSet[int]
    opening_cost: float

    def __post_init__(self) -> None:
        if self.id < 0:
            raise InvalidInstanceError(f"facility id must be non-negative, got {self.id}")
        if self.point < 0:
            raise InvalidInstanceError(f"facility point must be non-negative, got {self.point}")
        if not isinstance(self.configuration, frozenset):
            object.__setattr__(self, "configuration", frozenset(self.configuration))
        if not self.configuration:
            raise InvalidInstanceError("a facility must offer at least one commodity")
        if self.opening_cost < 0:
            raise InvalidInstanceError(
                f"opening cost must be non-negative, got {self.opening_cost}"
            )

    def offers(self, commodity: int) -> bool:
        """Whether the facility offers the commodity."""
        return commodity in self.configuration

    def offers_all(self, commodities: Iterable[int]) -> bool:
        """Whether the facility offers every commodity in the given set."""
        return frozenset(commodities) <= self.configuration


class FacilityStore:
    """The set ``F`` of currently open facilities with per-commodity indexes.

    The store answers the three distance queries the algorithms need —
    ``d(F(e), r)``, ``d(F̂, r)`` and nearest-facility lookups.  With
    ``use_accel`` (the default) each query is O(1) against incremental
    :class:`~repro.accel.tracker.NearestSetTracker` minima folded in at
    opening time; with ``use_accel=False`` the reference implementation scans
    the relevant facility locations with one vectorized pass per query.  The
    two paths are bit-identical (see :mod:`repro.accel`).
    """

    def __init__(
        self,
        metric: MetricSpace,
        cost_function: FacilityCostFunction,
        *,
        use_accel: bool = True,
    ) -> None:
        self._metric = metric
        self._cost_function = cost_function
        self._facilities: List[Facility] = []
        self._by_commodity: Dict[int, List[int]] = {}
        self._large: List[int] = []
        self._total_opening_cost = 0.0
        self._full_set = cost_function.full_set
        self._use_accel = bool(use_accel)
        self._trackers: Dict[int, NearestSetTracker] = {}
        self._large_tracker: Optional[NearestSetTracker] = None

    # ------------------------------------------------------------------
    # Opening facilities
    # ------------------------------------------------------------------
    def open(self, point: int, configuration: Iterable[int]) -> Facility:
        """Open a facility and return it (cost is charged automatically)."""
        config = self._cost_function.normalize_configuration(configuration)
        if not config:
            raise InvalidInstanceError("cannot open a facility with an empty configuration")
        if not 0 <= point < self._metric.num_points:
            raise InvalidInstanceError(
                f"facility point {point} out of range [0, {self._metric.num_points})"
            )
        cost = self._cost_function.cost(point, config)
        facility = Facility(
            id=len(self._facilities), point=int(point), configuration=config, opening_cost=cost
        )
        self._facilities.append(facility)
        for commodity in config:
            self._by_commodity.setdefault(commodity, []).append(facility.id)
        if config == self._full_set:
            self._large.append(facility.id)
        self._total_opening_cost += cost
        if self._use_accel:
            for commodity in config:
                tracker = self._trackers.get(commodity)
                if tracker is None:
                    tracker = self._trackers[commodity] = NearestSetTracker(self._metric)
                tracker.add(facility.point, tag=facility.id)
            if config == self._full_set:
                if self._large_tracker is None:
                    self._large_tracker = NearestSetTracker(self._metric)
                self._large_tracker.add(facility.point, tag=facility.id)
        return facility

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """JSON-compatible snapshot: ``(point, configuration)`` in opening order.

        Opening costs and ids are *not* stored — they are deterministic
        functions of the (static) cost function and the opening order, so
        :meth:`load_state_dict` re-derives them bit-identically by replaying
        :meth:`open`, which also rebuilds the accel trackers with the same
        fold sequence as the original run.
        """
        return {
            "facilities": [[f.point, sorted(f.configuration)] for f in self._facilities]
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Rebuild the store by replaying ``open`` (requires a fresh store)."""
        if self._facilities:
            raise SnapshotError(
                "FacilityStore.load_state_dict requires an empty store; "
                f"this one already holds {len(self._facilities)} facilities"
            )
        for point, configuration in state["facilities"]:
            self.open(int(point), (int(e) for e in configuration))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def facilities(self) -> List[Facility]:
        return list(self._facilities)

    def facility_map(self) -> Dict[int, Facility]:
        """Read-only id -> facility mapping maintained incrementally.

        Facility ids are their opening order, so the list indexes itself; the
        dict view is rebuilt only when facilities were opened since the last
        call (cheap, and callers on the per-request hot path avoid an O(|F|)
        rebuild per request).  Callers must not mutate the returned dict.
        """
        cached = getattr(self, "_facility_map_cache", None)
        if cached is None or len(cached) != len(self._facilities):
            cached = {f.id: f for f in self._facilities}
            self._facility_map_cache = cached
        return cached

    def __len__(self) -> int:
        return len(self._facilities)

    def __getitem__(self, facility_id: int) -> Facility:
        return self._facilities[facility_id]

    @property
    def total_opening_cost(self) -> float:
        """Sum of opening costs of all facilities opened so far."""
        return self._total_opening_cost

    def facilities_offering(self, commodity: int) -> List[Facility]:
        """``F(e)`` — currently open facilities offering ``commodity``."""
        return [self._facilities[i] for i in self._by_commodity.get(commodity, ())]

    def large_facilities(self) -> List[Facility]:
        """``F̂`` — currently open facilities offering all of ``S``."""
        return [self._facilities[i] for i in self._large]

    def has_facility_for(self, commodity: int) -> bool:
        return bool(self._by_commodity.get(commodity))

    def has_large_facility(self) -> bool:
        return bool(self._large)

    # ------------------------------------------------------------------
    # Distance queries
    # ------------------------------------------------------------------
    def distance_to_nearest(self, commodity: int, point: int) -> float:
        """``d(F(e), r)`` — ``inf`` when no facility offers the commodity yet."""
        if self._use_accel:
            tracker = self._trackers.get(commodity)
            return tracker.distance(point) if tracker is not None else float("inf")
        ids = self._by_commodity.get(commodity)
        if not ids:
            return float("inf")
        points = [self._facilities[i].point for i in ids]
        return float(np.min(self._metric.distances_between(point, points)))

    def nearest_offering(self, commodity: int, point: int) -> Optional[Tuple[Facility, float]]:
        """Nearest facility offering ``commodity`` and its distance, or ``None``."""
        if self._use_accel:
            tracker = self._trackers.get(commodity)
            if tracker is None:
                return None
            facility_id, distance = tracker.nearest(point)
            return self._facilities[facility_id], distance
        ids = self._by_commodity.get(commodity)
        if not ids:
            return None
        points = [self._facilities[i].point for i in ids]
        distances = self._metric.distances_between(point, points)
        best = int(np.argmin(distances))
        return self._facilities[ids[best]], float(distances[best])

    def distance_to_nearest_large(self, point: int) -> float:
        """``d(F̂, r)`` — ``inf`` when no large facility exists yet."""
        if self._use_accel:
            tracker = self._large_tracker
            return tracker.distance(point) if tracker is not None else float("inf")
        if not self._large:
            return float("inf")
        points = [self._facilities[i].point for i in self._large]
        return float(np.min(self._metric.distances_between(point, points)))

    def nearest_large(self, point: int) -> Optional[Tuple[Facility, float]]:
        """Nearest large facility and its distance, or ``None``."""
        if self._use_accel:
            tracker = self._large_tracker
            if tracker is None:
                return None
            facility_id, distance = tracker.nearest(point)
            return self._facilities[facility_id], distance
        if not self._large:
            return None
        points = [self._facilities[i].point for i in self._large]
        distances = self._metric.distances_between(point, points)
        best = int(np.argmin(distances))
        return self._facilities[self._large[best]], float(distances[best])

    def nearest_covering(self, commodities: FrozenSet[int], point: int) -> Optional[Tuple[Facility, float]]:
        """Nearest facility offering *all* the given commodities, or ``None``."""
        candidates = [f for f in self._facilities if f.offers_all(commodities)]
        if not candidates:
            return None
        points = [f.point for f in candidates]
        distances = self._metric.distances_between(point, points)
        best = int(np.argmin(distances))
        return candidates[best], float(distances[best])
