"""The telemetry sink: an ordered set of probes attached to one session.

:class:`TelemetrySink` is the object a session's ``telemetry=`` hook accepts.
It coerces a declarative probe list (names, spec dicts or live probe
instances) into built probes, binds them to the session's fixed environment,
fans every served event out to them, and round-trips the whole ensemble
through a strict-JSON state dict so snapshots carry telemetry bit-identically
(the probe *specs* are embedded alongside the state, making the sink
self-describing: :meth:`TelemetrySink.from_state_dict` rebuilds it without
re-supplying the configuration).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.api.session import AssignmentEvent
from repro.costs.base import FacilityCostFunction
from repro.exceptions import TelemetryError
from repro.metric.base import MetricSpace
from repro.telemetry.probes import METRICS_PROBES, MetricsProbe

__all__ = ["TelemetrySink", "DEFAULT_PROBES"]

#: Probe kinds a bare ``telemetry=True`` enables, in report order.
DEFAULT_PROBES = ("cost-decomposition", "opening-rate", "latency", "competitive-ratio")

#: Format marker embedded in every sink state dict.
SINK_STATE_FORMAT = "repro.telemetry.sink"
SINK_STATE_VERSION = 1

ProbeLike = Union[str, Mapping[str, Any], MetricsProbe]


def _build_probe(entry: ProbeLike) -> MetricsProbe:
    if isinstance(entry, MetricsProbe):
        return entry
    if isinstance(entry, str):
        return METRICS_PROBES.build(entry)
    if isinstance(entry, Mapping):
        params = dict(entry)
        kind = params.pop("kind", None)
        if not isinstance(kind, str):
            raise TelemetryError(
                f"probe spec dicts need a string 'kind' entry, got {entry!r}"
            )
        return METRICS_PROBES.build(kind, **params)
    raise TelemetryError(
        f"cannot build a probe from {type(entry).__name__}; pass a registered "
        "kind name, a spec dict or a MetricsProbe instance"
    )


class TelemetrySink:
    """An ordered, named collection of probes fed by one session.

    Parameters
    ----------
    probes:
        Probe kinds (names), spec dicts (``{"kind": ..., **params}``) or live
        :class:`~repro.telemetry.probes.MetricsProbe` instances.  ``None``
        enables the full stock catalog (:data:`DEFAULT_PROBES`).  Kinds must
        be unique per sink — summaries are keyed by kind.
    """

    def __init__(self, probes: Optional[Iterable[ProbeLike]] = None) -> None:
        entries = list(probes) if probes is not None else list(DEFAULT_PROBES)
        self._probes: List[MetricsProbe] = [_build_probe(entry) for entry in entries]
        seen: Dict[str, bool] = {}
        for probe in self._probes:
            if probe.kind in seen:
                raise TelemetryError(
                    f"duplicate probe kind {probe.kind!r} on one sink; "
                    "summaries are keyed by kind, so kinds must be unique"
                )
            seen[probe.kind] = True
        self._bound = False

    # ------------------------------------------------------------------
    @property
    def probes(self) -> List[MetricsProbe]:
        return list(self._probes)

    @property
    def kinds(self) -> List[str]:
        return [probe.kind for probe in self._probes]

    @property
    def bound(self) -> bool:
        return self._bound

    def __len__(self) -> int:
        return len(self._probes)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def bind(self, metric: MetricSpace, cost: FacilityCostFunction) -> None:
        """Attach every probe to the session's fixed environment (idempotent
        misuse guard: a sink serves exactly one session)."""
        if self._bound:
            raise TelemetryError(
                "this TelemetrySink is already attached to a session; "
                "build a fresh sink per session"
            )
        for probe in self._probes:
            probe.bind(metric, cost)
        self._bound = True

    def record(self, event: AssignmentEvent, elapsed_seconds: float) -> None:
        """Fan one served request out to every probe."""
        for probe in self._probes:
            probe.observe(event, elapsed_seconds)

    def record_batch(
        self, items: Iterable[Tuple[AssignmentEvent, float]]
    ) -> None:
        """Fan a short run of served requests out to every probe.

        Equivalent to :meth:`record` per item (each probe sees every event
        exactly once, in arrival order), but iterated probe-major: each
        probe's accumulators stay hot in cache for the whole batch and its
        ``observe`` is resolved once instead of per event.  Probes are
        independent by contract, so the cross-probe interleaving is not
        observable.
        """
        for probe in self._probes:
            observe = probe.observe
            for event, elapsed_seconds in items:
                observe(event, elapsed_seconds)

    def summary(self) -> Dict[str, Any]:
        """``{probe kind: probe summary}`` in probe order (strict JSON)."""
        return {probe.kind: probe.summary() for probe in self._probes}

    # ------------------------------------------------------------------
    # Strict-JSON durability
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "format": SINK_STATE_FORMAT,
            "version": SINK_STATE_VERSION,
            "probes": [
                {"spec": probe.spec(), "state": probe.state_dict()}
                for probe in self._probes
            ],
        }

    @classmethod
    def from_state_dict(cls, state: Mapping[str, Any]) -> "TelemetrySink":
        """Rebuild a sink (probes + their exact state) from :meth:`state_dict`.

        The returned sink is *unbound*; the restoring session binds it to the
        rebuilt environment before streaming resumes.
        """
        if state.get("format") != SINK_STATE_FORMAT:
            raise TelemetryError(
                f"not a telemetry sink state dict: format={state.get('format')!r}"
            )
        if state.get("version") != SINK_STATE_VERSION:
            raise TelemetryError(
                f"unsupported telemetry sink state version {state.get('version')!r}"
            )
        sink = cls([dict(entry["spec"]) for entry in state["probes"]])
        for probe, entry in zip(sink._probes, state["probes"]):
            probe.load_state_dict(entry["state"])
        return sink

    @classmethod
    def coerce(
        cls, telemetry: Union[bool, Iterable[ProbeLike], "TelemetrySink", None]
    ) -> Optional["TelemetrySink"]:
        """Normalize a session's ``telemetry=`` argument.

        ``None``/``False`` → no telemetry; ``True`` → a sink with the stock
        probe catalog; an iterable → a sink over those probes; a live sink is
        passed through.
        """
        if telemetry is None or telemetry is False:
            return None
        if telemetry is True:
            return cls()
        if isinstance(telemetry, TelemetrySink):
            return telemetry
        return cls(telemetry)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TelemetrySink(probes={self.kinds!r}, bound={self._bound})"
