"""Streaming observability + competitive-ratio analytics.

Three layers (see DESIGN notes in the submodule docstrings):

* :mod:`repro.telemetry.probes` — the string-keyed :data:`METRICS_PROBES`
  registry of O(1)-memory streaming statistics (cost decomposition, opening
  rate, latency percentiles, rolling competitive ratio);
* :mod:`repro.telemetry.sink` — :class:`TelemetrySink`, the opt-in
  ``telemetry=`` hook of :class:`~repro.api.session.OnlineSession` /
  :class:`~repro.scenarios.run.ScenarioSession`, strict-JSON durable so
  snapshots carry telemetry bit-identically;
* :mod:`repro.telemetry.report` — the ``repro report`` renderer turning a
  result store or RunRecord set into self-contained markdown/HTML dashboards
  with a committed-baseline regression gate.

Telemetry is passive by contract: enabling it changes no event, cost or RNG
draw of the session it observes (pinned by ``tests/test_telemetry.py``).
"""

from repro.telemetry.probes import (
    METRICS_PROBES,
    CompetitiveRatioProbe,
    CostDecompositionProbe,
    LatencyReservoirProbe,
    MetricsProbe,
    OpeningRateProbe,
)
from repro.telemetry.report import render_report
from repro.telemetry.sink import DEFAULT_PROBES, TelemetrySink

__all__ = [
    "DEFAULT_PROBES",
    "METRICS_PROBES",
    "CompetitiveRatioProbe",
    "CostDecompositionProbe",
    "LatencyReservoirProbe",
    "MetricsProbe",
    "OpeningRateProbe",
    "TelemetrySink",
    "render_report",
]
