"""The ``repro report`` subcommand: stores/records in, dashboards out.

Split out of :mod:`repro.cli` so plain experiment commands never import the
report renderer; the subcommand registration there imports this module
lazily, following the ``serve`` / ``lint`` pattern.
"""

from __future__ import annotations

import argparse
from pathlib import Path

__all__ = ["configure_parser", "run"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--store",
        type=Path,
        default=None,
        help="content-addressed result-store directory to render",
    )
    source.add_argument(
        "--records",
        type=Path,
        nargs="+",
        default=None,
        metavar="FILE",
        help="RunRecord JSON files (a row dict or a list of row dicts each)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("report"),
        help="output directory for report.md / report.html (default: report/)",
    )
    parser.add_argument(
        "--title", default="repro report", help="dashboard title"
    )
    parser.add_argument(
        "--format",
        choices=("markdown", "html", "both"),
        default="both",
        help="which artifacts to write (default: both)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "committed baseline JSON to diff per-task column means against; "
            "any drift beyond tolerance exits 1 (the CI regression gate)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the fresh per-task column means out as a baseline file",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "a 'repro trace record' payload: append a Profile section "
            "(per-phase wall-time aggregates, self time, slowest spans)"
        ),
    )
    parser.add_argument(
        "--trace-top",
        type=int,
        default=10,
        help="slowest spans listed in the Profile section (default 10)",
    )


def run(args: argparse.Namespace) -> int:
    from repro.telemetry.report import render_report

    formats = ("markdown", "html") if args.format == "both" else (args.format,)
    result = render_report(
        store=args.store,
        records=args.records,
        out_dir=args.out,
        title=args.title,
        baseline=args.baseline,
        write_baseline=args.write_baseline,
        formats=formats,
        trace=args.trace,
        trace_top=args.trace_top,
    )
    for path in (result.markdown_path, result.html_path, result.baseline_written):
        if path is not None:
            print(f"wrote {path}")
    if result.regressions is not None:
        if result.regressions:
            for finding in result.regressions:
                print(
                    "REGRESSION "
                    + " ".join(f"{k}={v}" for k, v in finding.items() if v is not None)
                )
            return 1
        print(f"regression gate: no drift vs {args.baseline}")
    return 0
