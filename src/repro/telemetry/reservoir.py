"""Uniform reservoir sampling with geometric skips (Li's "Algorithm L").

One shared implementation of the fixed-size uniform sample used everywhere a
percentile over an unbounded stream is reported: the
:class:`~repro.telemetry.probes.LatencyReservoirProbe` (per-request latency
percentiles on sessions) and the per-phase latency aggregates of
:class:`~repro.trace.tracer.Tracer` (``repro trace summarize`` and the
service ``metrics`` op) both fold their observations through a
:class:`ReservoirSampler`.

The sampler pre-computes the arrival index of the *next* replacement, so the
steady-state per-observation cost is one integer compare — O(k·log(n/k)) RNG
draws over the whole stream instead of one per observation.  All draws come
from a **private** generator seeded at construction; attaching a sampler to a
run therefore draws nothing from any algorithm's RNG stream (the passivity
contract of :mod:`repro.telemetry` and :mod:`repro.trace`).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import TelemetryError
from repro.utils.rng import rng_from_state, rng_state

__all__ = ["ReservoirSampler"]


class ReservoirSampler:
    """A fixed-capacity uniform sample over a stream of floats.

    Every observation ever :meth:`add`-ed has equal probability of being in
    the reservoir, regardless of stream length.  State round-trips losslessly
    through strict JSON (:meth:`state_dict` / :meth:`load_state_dict`), so
    the sample — including the exact skip position — survives snapshots.
    """

    def __init__(self, capacity: int = 512, seed: int = 0) -> None:
        if capacity < 1:
            raise TelemetryError(f"reservoir capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._seed = int(seed)
        self._rng = np.random.default_rng(self._seed)
        self._values: List[float] = []
        self._count = 0
        # Algorithm L skip state: w is the running acceptance weight, next
        # the 0-based arrival index of the next reservoir replacement.
        self._w = 1.0
        self._next_replacement = self._capacity
        self._filled = False

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def count(self) -> int:
        """Observations folded in so far (not the reservoir size)."""
        return self._count

    def values(self) -> List[float]:
        """The current sample, in reservoir-slot order."""
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

    # ------------------------------------------------------------------
    def _uniform_open(self) -> float:
        value = float(self._rng.random())
        # random() lives in [0, 1); dodge the measure-zero log(0) endpoint.
        return value if value > 0.0 else 0.5

    def _advance_skip(self, from_index: int) -> None:
        self._w *= math.exp(math.log(self._uniform_open()) / self._capacity)
        log_reject = math.log1p(-self._w)
        if log_reject == 0.0:  # w underflowed: no further replacements, ever
            self._next_replacement = 2**62
            return
        skip = int(math.log(self._uniform_open()) / log_reject)
        self._next_replacement = from_index + 1 + skip

    def add(self, value: float) -> None:
        """Fold one observation into the sample."""
        index = self._count
        self._count += 1
        if not self._filled:
            self._values.append(value)
            if len(self._values) == self._capacity:
                self._filled = True
                self._advance_skip(index)
        elif index == self._next_replacement:
            slot = int(self._rng.integers(0, self._capacity))
            self._values[slot] = value
            self._advance_skip(index)

    def percentiles(
        self, qs: Sequence[float] = (50.0, 90.0, 99.0)
    ) -> Dict[str, Optional[float]]:
        """``{"p50": ..., ...}`` over the current sample (``None`` when empty)."""
        if not self._values:
            return {f"p{q:g}": None for q in qs}
        values = np.asarray(self._values, dtype=np.float64)
        points = np.percentile(values, list(qs))
        return {f"p{q:g}": float(p) for q, p in zip(qs, points)}

    # ------------------------------------------------------------------
    # Strict-JSON durability
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "count": self._count,
            "reservoir": list(self._values),
            "w": self._w,
            "next_replacement": self._next_replacement,
            "rng": rng_state(self._rng),
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        self._count = int(state["count"])
        self._values = [float(v) for v in state["reservoir"]]
        self._w = float(state["w"])
        self._next_replacement = int(state["next_replacement"])
        self._filled = len(self._values) >= self._capacity
        self._rng = rng_from_state(state["rng"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReservoirSampler(capacity={self._capacity}, count={self._count}, "
            f"size={len(self._values)})"
        )
