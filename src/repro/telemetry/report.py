"""Store-backed dashboards: sweeps and RunRecords to markdown / HTML.

The renderer consumes either a content-addressed
:class:`~repro.engine.store.ResultStore` directory (every persisted task
entry, including the engine's per-task telemetry rows) or a set of
:class:`~repro.api.record.RunRecord` JSON files, and produces two
self-contained artifacts:

* ``report.md`` — one section per task with the result table, a
  competitive-ratio roll-up per scenario kind / algorithm, and the per-task
  engine telemetry;
* ``report.html`` — the same content plus inline-SVG cost-vs-n curves.
  Columns named ``upper_bound*`` / ``predicted_*`` / ``bound*`` (the shapes
  the fig2/fig3 experiments emit for the paper's bound curves) are drawn as
  dashed overlay lines over the measured series, no external assets needed.

Rendering is deterministic: entries are sorted by content, and *volatile*
columns (wall-clock runtimes) are excluded from tables and summaries, so the
same store renders byte-identical reports across runs — which is what makes
the committed-baseline regression gate in CI meaningful.  The baseline file
maps each task to its per-column means; :func:`compare_baseline` flags any
relative drift beyond tolerance, so a competitive-ratio regression fails CI
by name.
"""

from __future__ import annotations

import html as _html
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.tables import format_markdown_table
from repro.engine.store import ResultStore
from repro.exceptions import ReproError, TelemetryError

__all__ = [
    "compare_baseline",
    "load_record_rows",
    "load_store_entries",
    "load_trace_profile",
    "render_report",
    "summarize_groups",
    "ReportResult",
]

#: Format marker of the committed regression-baseline JSON.
BASELINE_FORMAT = "repro.telemetry.report-baseline"
BASELINE_VERSION = 1

#: Columns excluded from tables, summaries and baselines: wall-clock noise
#: would break byte-identical rendering and drown real ratio drift.
VOLATILE_COLUMNS = frozenset(
    {"runtime_seconds", "runtime_s", "wall_seconds", "total_seconds"}
)

#: Candidate x-axis columns for the cost-vs-n curves, in preference order.
X_COLUMN_CANDIDATES = ("n", "num_requests", "S", "num_commodities", "num_points")

#: Candidate group-by columns for the competitive-ratio roll-up.
RATIO_GROUP_CANDIDATES = ("scenario", "kind", "algorithm", "instance")


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_store_entries(directory: Union[str, Path]) -> List[Dict[str, Any]]:
    """Every readable entry of a result store, deterministically ordered."""
    store = ResultStore(directory)
    entries: List[Dict[str, Any]] = []
    for key in store.keys():
        payload = store.get(key)
        if payload is not None:
            entries.append(payload)
    if not entries:
        raise TelemetryError(
            f"result store {str(directory)!r} holds no readable entries"
        )
    entries.sort(
        key=lambda e: (
            str(e.get("task")),
            json.dumps(e.get("case"), sort_keys=True, default=str),
            int(e.get("seed", 0)),
        )
    )
    return entries


def load_record_rows(paths: Sequence[Union[str, Path]]) -> List[Dict[str, Any]]:
    """Rows from RunRecord JSON files (a dict or a list of dicts per file)."""
    rows: List[Dict[str, Any]] = []
    for path in paths:
        data = json.loads(Path(path).read_text())
        items = data if isinstance(data, list) else [data]
        for item in items:
            if not isinstance(item, Mapping):
                raise TelemetryError(
                    f"{path}: expected RunRecord row dict(s), got "
                    f"{type(item).__name__}"
                )
            rows.append(dict(item))
    if not rows:
        raise TelemetryError("no RunRecord rows to report on")
    return rows


def _group_entries(entries: Sequence[Mapping[str, Any]]) -> Dict[str, List[Dict[str, Any]]]:
    """``{task: [row, ...]}`` preserving entry order within each task."""
    groups: Dict[str, List[Dict[str, Any]]] = {}
    for entry in entries:
        task = str(entry.get("task", "records"))
        groups.setdefault(task, []).extend(dict(row) for row in entry.get("rows", []))
    return groups


def load_trace_profile(path: Union[str, Path], *, top: int = 10) -> Dict[str, Any]:
    """A ``repro trace record`` payload summarized for the Profile section.

    Imported lazily from :mod:`repro.trace` so reports without ``--trace``
    never touch the tracing stack.  The summary carries wall-clock numbers
    by design — the Profile section is the one deliberately volatile part of
    a report, which is why it only renders when a trace is passed in.
    """
    from repro.trace.export import summarize_trace
    from repro.trace.tracer import validate_payload

    try:
        data = json.loads(Path(path).read_text())
        payload = validate_payload(data)
    except (OSError, ValueError, ReproError) as error:
        raise TelemetryError(f"cannot load trace payload {str(path)!r}: {error}") from None
    return summarize_trace(payload, top=top)


# ----------------------------------------------------------------------
# Summaries + regression gate
# ----------------------------------------------------------------------
def _is_numeric(value: Any) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(float(value))
    )


def summarize_groups(
    groups: Mapping[str, Sequence[Mapping[str, Any]]]
) -> Dict[str, Dict[str, float]]:
    """Per-task per-column means over the stable numeric columns."""
    summary: Dict[str, Dict[str, float]] = {}
    for task in sorted(groups):
        columns: Dict[str, List[float]] = {}
        for row in groups[task]:
            for column, value in row.items():
                if column in VOLATILE_COLUMNS or not _is_numeric(value):
                    continue
                columns.setdefault(column, []).append(float(value))
        summary[task] = {
            column: sum(values) / len(values)
            for column, values in sorted(columns.items())
        }
    return summary


def baseline_payload(summary: Mapping[str, Mapping[str, float]]) -> Dict[str, Any]:
    return {
        "format": BASELINE_FORMAT,
        "version": BASELINE_VERSION,
        "groups": {task: dict(columns) for task, columns in summary.items()},
    }


def load_baseline(path: Union[str, Path]) -> Dict[str, Dict[str, float]]:
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("format") != BASELINE_FORMAT:
        raise TelemetryError(f"{path} is not a report baseline file")
    if data.get("version") != BASELINE_VERSION:
        raise TelemetryError(
            f"{path}: unsupported baseline version {data.get('version')!r}"
        )
    return {
        str(task): {str(c): float(v) for c, v in columns.items()}
        for task, columns in data["groups"].items()
    }


def compare_baseline(
    summary: Mapping[str, Mapping[str, float]],
    baseline: Mapping[str, Mapping[str, float]],
    *,
    rtol: float = 1e-6,
    atol: float = 1e-9,
) -> List[Dict[str, Any]]:
    """Drift findings between a fresh summary and the committed baseline.

    Any column whose mean moved beyond ``atol + rtol·|baseline|`` is flagged
    (in either direction — the sweeps are deterministic, so *any* unexplained
    movement is a contract break, not just ratios getting worse).  Tasks or
    columns missing on either side are flagged too: a silently dropped task
    must not pass the gate.
    """
    findings: List[Dict[str, Any]] = []
    for task in sorted(set(summary) | set(baseline)):
        if task not in baseline:
            findings.append({"task": task, "column": None, "kind": "new-task"})
            continue
        if task not in summary:
            findings.append({"task": task, "column": None, "kind": "missing-task"})
            continue
        fresh, old = summary[task], baseline[task]
        for column in sorted(set(fresh) | set(old)):
            if column not in old:
                findings.append({"task": task, "column": column, "kind": "new-column"})
                continue
            if column not in fresh:
                findings.append(
                    {"task": task, "column": column, "kind": "missing-column"}
                )
                continue
            drift = abs(fresh[column] - old[column])
            if drift > atol + rtol * abs(old[column]):
                findings.append(
                    {
                        "task": task,
                        "column": column,
                        "kind": "drift",
                        "baseline": old[column],
                        "current": fresh[column],
                        "relative": (
                            drift / abs(old[column]) if old[column] != 0 else None
                        ),
                    }
                )
    return findings


# ----------------------------------------------------------------------
# Table helpers
# ----------------------------------------------------------------------
def _sanitize_rows(rows: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Flatten multi-line / oversized string cells so tables stay tables."""

    def clean(value: Any) -> Any:
        if isinstance(value, str):
            flat = " ".join(value.split())
            return flat if len(flat) <= 120 else flat[:117] + "..."
        return value

    return [{column: clean(value) for column, value in row.items()} for row in rows]


def _stable_columns(rows: Sequence[Mapping[str, Any]]) -> List[str]:
    columns: List[str] = []
    for row in rows:
        for column in row:
            if column not in columns and column not in VOLATILE_COLUMNS:
                columns.append(column)
    return columns


def _ratio_rollup(rows: Sequence[Mapping[str, Any]]) -> Optional[List[Dict[str, Any]]]:
    """Mean/max competitive ratio per scenario kind (or algorithm/instance)."""
    if not any("ratio" in row for row in rows):
        return None
    group_column = next(
        (c for c in RATIO_GROUP_CANDIDATES if all(c in row for row in rows)), None
    )
    if group_column is None:
        return None
    buckets: Dict[str, List[float]] = {}
    for row in rows:
        if _is_numeric(row.get("ratio")):
            buckets.setdefault(str(row[group_column]), []).append(float(row["ratio"]))
    if not buckets:
        return None
    return [
        {
            group_column: name,
            "runs": len(values),
            "mean_ratio": sum(values) / len(values),
            "max_ratio": max(values),
        }
        for name, values in sorted(buckets.items())
    ]


def _chart_series(
    rows: Sequence[Mapping[str, Any]]
) -> Optional[Tuple[str, List[str], List[str]]]:
    """``(x column, measured y columns, overlay y columns)`` or ``None``."""
    x_column = next(
        (
            c
            for c in X_COLUMN_CANDIDATES
            if all(_is_numeric(row.get(c)) for row in rows)
            and len({float(row[c]) for row in rows}) >= 2
        ),
        None,
    )
    if x_column is None:
        return None
    measured: List[str] = []
    overlays: List[str] = []
    for column in _stable_columns(rows):
        if column == x_column:
            continue
        if not all(_is_numeric(row.get(column)) for row in rows):
            continue
        if column.startswith(("upper_bound", "predicted_", "bound", "lower_bound")):
            overlays.append(column)
        else:
            measured.append(column)
    if not measured and not overlays:
        return None
    return x_column, measured, overlays


# ----------------------------------------------------------------------
# SVG chart (no external assets — the HTML report is self-contained)
# ----------------------------------------------------------------------
_PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b")


def _svg_chart(
    rows: Sequence[Mapping[str, Any]],
    x_column: str,
    measured: Sequence[str],
    overlays: Sequence[str],
    *,
    width: int = 640,
    height: int = 320,
) -> str:
    pad = 48
    series = [(name, False) for name in measured] + [(name, True) for name in overlays]
    points: Dict[str, List[Tuple[float, float]]] = {}
    for name, _ in series:
        pairs = sorted(
            (float(row[x_column]), float(row[name]))
            for row in rows
            if _is_numeric(row.get(name)) and _is_numeric(row.get(x_column))
        )
        if pairs:
            points[name] = pairs
    if not points:
        return ""
    xs = [x for pairs in points.values() for x, _ in pairs]
    ys = [y for pairs in points.values() for _, y in pairs]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def sx(x: float) -> float:
        return pad + (x - x_lo) / x_span * (width - 2 * pad)

    def sy(y: float) -> float:
        return height - pad - (y - y_lo) / y_span * (height - 2 * pad)

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        'xmlns="http://www.w3.org/2000/svg" role="img">',
        f'<rect width="{width}" height="{height}" fill="#ffffff"/>',
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="#333"/>',
        f'<line x1="{pad}" y1="{pad}" x2="{pad}" y2="{height - pad}" stroke="#333"/>',
        f'<text x="{width / 2:.1f}" y="{height - 10}" text-anchor="middle" '
        f'font-size="12">{_html.escape(x_column)}</text>',
        f'<text x="{pad}" y="{pad - 8}" font-size="11" fill="#555">'
        f"[{y_lo:.4g}, {y_hi:.4g}]</text>",
    ]
    legend_y = pad
    for index, (name, is_overlay) in enumerate(series):
        pairs = points.get(name)
        if not pairs:
            continue
        color = _PALETTE[index % len(_PALETTE)]
        path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pairs)
        dash = ' stroke-dasharray="6 4"' if is_overlay else ""
        parts.append(
            f'<polyline points="{path}" fill="none" stroke="{color}" '
            f'stroke-width="1.5"{dash}/>'
        )
        parts.append(
            f'<text x="{width - pad + 4}" y="{legend_y}" font-size="11" '
            f'fill="{color}">{_html.escape(name)}{" (bound)" if is_overlay else ""}</text>'
        )
        legend_y += 14
    parts.append("</svg>")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Profile section (trace-backed, wall-clock — opt-in via --trace)
# ----------------------------------------------------------------------
_PHASE_COLUMNS = ("phase", "count", "total_seconds", "mean_seconds", "p50", "p95", "p99")
_SELF_COLUMNS = ("phase", "spans", "total_seconds", "self_seconds")
_SLOW_COLUMNS = ("name", "ordinal", "span_id", "shard", "wall_duration")


def _profile_tables(
    profile: Mapping[str, Any]
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]], List[Dict[str, Any]]]:
    """``(phase rows, self-time rows, slowest-span rows)`` for the tables."""
    phase_rows: List[Dict[str, Any]] = []
    for name, stats in profile["phases"].items():
        row = {"phase": name, **{c: stats.get(c) for c in _PHASE_COLUMNS[1:]}}
        count, total = stats.get("count", 0), stats.get("total_seconds")
        row["mean_seconds"] = total / count if (count and total is not None) else None
        phase_rows.append(row)
    self_time = profile["self_time"]
    self_rows = [
        {"phase": name, **{c: self_time[name].get(c) for c in _SELF_COLUMNS[1:]}}
        for name in sorted(self_time, key=lambda n: -self_time[n]["self_seconds"])
    ]
    slow_rows = [
        {c: ("" if span.get(c) is None else span.get(c)) for c in _SLOW_COLUMNS}
        for span in profile["slowest_spans"]
    ]
    return phase_rows, self_rows, slow_rows


def _profile_caption(profile: Mapping[str, Any], trace_path: Optional[str]) -> str:
    meta = profile["meta"]
    return (
        f"Span trace `{trace_path}`: {meta['spans_retained']} spans retained "
        f"({meta['dropped_spans']} dropped), event clock {meta['event_clock']}, "
        f"detail stride {meta['detail_stride']}.  Wall-clock profiling numbers "
        "— volatile by design, rendered only when a trace is passed in."
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _markdown_report(
    groups: Mapping[str, Sequence[Mapping[str, Any]]],
    telemetry_rows: Sequence[Mapping[str, Any]],
    regressions: Optional[Sequence[Mapping[str, Any]]],
    *,
    title: str,
    baseline_path: Optional[str],
    profile: Optional[Mapping[str, Any]] = None,
    trace_path: Optional[str] = None,
) -> str:
    lines: List[str] = [f"# {title}", ""]
    if regressions is not None:
        lines.append("## Regression gate")
        lines.append("")
        if regressions:
            lines.append(
                f"**{len(regressions)} finding(s)** vs baseline `{baseline_path}`:"
            )
            lines.append("")
            lines.append(
                format_markdown_table(
                    [dict(f) for f in regressions],
                    columns=["task", "column", "kind", "baseline", "current", "relative"],
                )
            )
        else:
            lines.append(f"No drift vs baseline `{baseline_path}`.")
        lines.append("")
    for task in sorted(groups):
        rows = _sanitize_rows(groups[task])
        lines.append(f"## {task}")
        lines.append("")
        lines.append(format_markdown_table(rows, columns=_stable_columns(rows)))
        lines.append("")
        rollup = _ratio_rollup(rows)
        if rollup is not None:
            lines.append(f"### Competitive ratio — {task}")
            lines.append("")
            lines.append(format_markdown_table(rollup))
            lines.append("")
    if telemetry_rows:
        lines.append("## Engine telemetry")
        lines.append("")
        lines.append(
            format_markdown_table(
                [dict(row) for row in telemetry_rows],
                columns=["task", "index", "seed", "rows", "reused"],
            )
        )
        lines.append("")
    if profile is not None:
        phase_rows, self_rows, slow_rows = _profile_tables(profile)
        lines += ["## Profile", "", _profile_caption(profile, trace_path), ""]
        lines += ["### Phase aggregates", ""]
        lines.append(format_markdown_table(phase_rows, columns=list(_PHASE_COLUMNS)))
        lines.append("")
        if self_rows:
            lines += ["### Self time", ""]
            lines.append(format_markdown_table(self_rows, columns=list(_SELF_COLUMNS)))
            lines.append("")
        if slow_rows:
            lines += ["### Slowest spans", ""]
            lines.append(format_markdown_table(slow_rows, columns=list(_SLOW_COLUMNS)))
            lines.append("")
    return "\n".join(lines)


def _html_table(rows: Sequence[Mapping[str, Any]], columns: Sequence[str]) -> str:
    def cell(value: Any) -> str:
        if isinstance(value, float):
            return format(value, ".4g")
        return _html.escape(str(value))

    head = "".join(f"<th>{_html.escape(c)}</th>" for c in columns)
    body = "".join(
        "<tr>" + "".join(f"<td>{cell(row.get(c, ''))}</td>" for c in columns) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _html_report(
    groups: Mapping[str, Sequence[Mapping[str, Any]]],
    telemetry_rows: Sequence[Mapping[str, Any]],
    regressions: Optional[Sequence[Mapping[str, Any]]],
    *,
    title: str,
    baseline_path: Optional[str],
    profile: Optional[Mapping[str, Any]] = None,
    trace_path: Optional[str] = None,
) -> str:
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8"/>',
        f"<title>{_html.escape(title)}</title>",
        "<style>",
        "body{font-family:system-ui,sans-serif;margin:2rem;max-width:70rem}",
        "table{border-collapse:collapse;margin:0.5rem 0}",
        "td,th{border:1px solid #ccc;padding:0.25rem 0.5rem;font-size:0.85rem;"
        "text-align:right}",
        "th{background:#f3f3f3}",
        "td:first-child,th:first-child{text-align:left}",
        ".fail{color:#b00020;font-weight:bold}.ok{color:#1a7f37}",
        "</style></head><body>",
        f"<h1>{_html.escape(title)}</h1>",
    ]
    if regressions is not None:
        parts.append("<h2>Regression gate</h2>")
        if regressions:
            parts.append(
                f'<p class="fail">{len(regressions)} finding(s) vs baseline '
                f"{_html.escape(str(baseline_path))}</p>"
            )
            parts.append(
                _html_table(
                    regressions,
                    ["task", "column", "kind", "baseline", "current", "relative"],
                )
            )
        else:
            parts.append(
                f'<p class="ok">No drift vs baseline '
                f"{_html.escape(str(baseline_path))}.</p>"
            )
    for task in sorted(groups):
        rows = _sanitize_rows(groups[task])
        parts.append(f"<h2>{_html.escape(task)}</h2>")
        chart = _chart_series(rows)
        if chart is not None:
            x_column, measured, overlays = chart
            svg = _svg_chart(rows, x_column, measured, overlays)
            if svg:
                parts.append(svg)
        parts.append(_html_table(rows, _stable_columns(rows)))
        rollup = _ratio_rollup(rows)
        if rollup is not None:
            parts.append(f"<h3>Competitive ratio — {_html.escape(task)}</h3>")
            parts.append(_html_table(rollup, _stable_columns(rollup)))
    if telemetry_rows:
        parts.append("<h2>Engine telemetry</h2>")
        parts.append(
            _html_table(telemetry_rows, ["task", "index", "seed", "rows", "reused"])
        )
    if profile is not None:
        phase_rows, self_rows, slow_rows = _profile_tables(profile)
        parts.append("<h2>Profile</h2>")
        parts.append(f"<p>{_html.escape(_profile_caption(profile, trace_path))}</p>")
        parts.append("<h3>Phase aggregates</h3>")
        parts.append(_html_table(phase_rows, list(_PHASE_COLUMNS)))
        if self_rows:
            parts.append("<h3>Self time</h3>")
            parts.append(_html_table(self_rows, list(_SELF_COLUMNS)))
        if slow_rows:
            parts.append("<h3>Slowest spans</h3>")
            parts.append(_html_table(slow_rows, list(_SLOW_COLUMNS)))
    parts.append("</body></html>")
    return "\n".join(parts)


@dataclass
class ReportResult:
    """Outcome of one :func:`render_report` call."""

    markdown_path: Optional[Path]
    html_path: Optional[Path]
    summary: Dict[str, Dict[str, float]]
    regressions: Optional[List[Dict[str, Any]]] = None
    baseline_written: Optional[Path] = None
    tasks: List[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        """Whether the regression gate flagged drift."""
        return bool(self.regressions)


def render_report(
    *,
    store: Optional[Union[str, Path]] = None,
    records: Optional[Sequence[Union[str, Path]]] = None,
    out_dir: Union[str, Path],
    title: str = "repro report",
    baseline: Optional[Union[str, Path]] = None,
    write_baseline: Optional[Union[str, Path]] = None,
    formats: Sequence[str] = ("markdown", "html"),
    trace: Optional[Union[str, Path]] = None,
    trace_top: int = 10,
) -> ReportResult:
    """Render a store-backed sweep (or RunRecord files) to dashboards.

    Exactly one of ``store`` / ``records`` must be given.  With ``baseline``,
    the per-task column means are diffed against the committed baseline and
    the findings are embedded in the report (CI turns ``result.failed`` into
    a nonzero exit).  With ``write_baseline``, the fresh summary is written
    out as the new baseline file.  With ``trace`` (a ``repro trace record``
    payload), a Profile section is appended: per-phase wall-time aggregates,
    self time, and the ``trace_top`` slowest spans.  The section is opt-in
    because its numbers are wall-clock volatile — reports without it stay
    byte-identical across runs.
    """
    if (store is None) == (records is None):
        raise TelemetryError("pass exactly one of store= or records=")
    if store is not None:
        entries = load_store_entries(store)
    else:
        entries = [{"task": "records", "rows": load_record_rows(records or [])}]
    groups = _group_entries(entries)
    telemetry_rows = [
        dict(entry["telemetry"]) for entry in entries if isinstance(entry.get("telemetry"), Mapping)
    ]
    summary = summarize_groups(groups)

    regressions: Optional[List[Dict[str, Any]]] = None
    baseline_path = str(baseline) if baseline is not None else None
    if baseline is not None:
        regressions = compare_baseline(summary, load_baseline(baseline))

    profile: Optional[Dict[str, Any]] = None
    trace_path = str(trace) if trace is not None else None
    if trace is not None:
        profile = load_trace_profile(trace, top=trace_top)

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    markdown_path: Optional[Path] = None
    html_path: Optional[Path] = None
    if "markdown" in formats:
        markdown_path = out / "report.md"
        markdown_path.write_text(
            _markdown_report(
                groups,
                telemetry_rows,
                regressions,
                title=title,
                baseline_path=baseline_path,
                profile=profile,
                trace_path=trace_path,
            )
        )
    if "html" in formats:
        html_path = out / "report.html"
        html_path.write_text(
            _html_report(
                groups,
                telemetry_rows,
                regressions,
                title=title,
                baseline_path=baseline_path,
                profile=profile,
                trace_path=trace_path,
            )
        )

    baseline_written: Optional[Path] = None
    if write_baseline is not None:
        baseline_written = Path(write_baseline)
        baseline_written.parent.mkdir(parents=True, exist_ok=True)
        baseline_written.write_text(
            json.dumps(baseline_payload(summary), indent=2, sort_keys=True) + "\n"
        )

    return ReportResult(
        markdown_path=markdown_path,
        html_path=html_path,
        summary=summary,
        regressions=regressions,
        baseline_written=baseline_written,
        tasks=sorted(groups),
    )
