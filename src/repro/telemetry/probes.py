"""Streaming metrics probes — O(1)-memory running statistics over sessions.

A probe consumes the stream of :class:`~repro.api.session.AssignmentEvent`
objects a session emits (plus the per-request wall-clock time the session
already measures) and maintains a bounded-memory running summary.  Probes are
registered by name in the string-keyed :data:`METRICS_PROBES` registry,
mirroring the metric/cost/algorithm/scenario registries, so a telemetry
configuration is plain data: ``telemetry=["cost-decomposition", "latency"]``.

Contracts every probe honours (pinned by ``tests/test_telemetry.py``):

* **passive** — a probe only *reads* events; it never touches the session's
  RNG, state or decisions, so enabling telemetry is bit-identical to running
  without it (any probe that needs randomness, like the latency reservoir,
  carries its own fixed-seeded private generator);
* **O(1) memory** — summaries are running aggregates or fixed-size sketches,
  never per-request logs, so probes survive multi-million-request streams;
* **strict-JSON durability** — :meth:`MetricsProbe.state_dict` /
  :meth:`MetricsProbe.load_state_dict` round-trip the full probe state
  losslessly through JSON, so session snapshots carry telemetry and a
  resumed session continues its metrics exactly where they left off.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Mapping, Optional

from repro.analysis.competitive import IncrementalOfflineBound
from repro.api.registry import Registry
from repro.api.session import AssignmentEvent
from repro.costs.base import FacilityCostFunction
from repro.exceptions import TelemetryError
from repro.metric.base import MetricSpace
from repro.telemetry.reservoir import ReservoirSampler

__all__ = [
    "METRICS_PROBES",
    "MetricsProbe",
    "CostDecompositionProbe",
    "OpeningRateProbe",
    "LatencyReservoirProbe",
    "CompetitiveRatioProbe",
]

#: Format marker embedded in every probe state dict.
PROBE_STATE_FORMAT = "repro.telemetry.probe"
PROBE_STATE_VERSION = 1

#: The probe registry (strict params: a typo'd probe parameter in a
#: declarative telemetry spec fails naming the offending key).
METRICS_PROBES = Registry("metrics probe", strict_params=True)


class MetricsProbe(abc.ABC):
    """One streaming statistic over a session's event stream.

    Subclasses set the class attribute ``kind`` (their registry name),
    implement :meth:`observe`, :meth:`summary` and the ``_state`` /
    ``_load_state`` payload hooks, and declare their constructor parameters
    via :meth:`params` so a probe can be rebuilt declaratively from its
    :meth:`spec`.
    """

    kind: str = ""

    # ------------------------------------------------------------------
    # Declarative identity
    # ------------------------------------------------------------------
    def params(self) -> Dict[str, Any]:
        """Constructor parameters (strict JSON) to rebuild this probe."""
        return {}

    def spec(self) -> Dict[str, Any]:
        """``{"kind": ..., **params}`` — the declarative form of this probe."""
        return {"kind": self.kind, **self.params()}

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def bind(self, metric: MetricSpace, cost: FacilityCostFunction) -> None:
        """Attach the probe to a session's fixed environment (optional hook).

        Called once by the sink when telemetry attaches to a session; probes
        that need the environment (the competitive-ratio probe) build their
        derived structures here.  Default: no-op.
        """

    @abc.abstractmethod
    def observe(self, event: AssignmentEvent, elapsed_seconds: float) -> None:
        """Fold one served request into the running statistic.

        ``elapsed_seconds`` is the wall-clock time the session already
        measured for this request (probes never call ``perf_counter``
        themselves).
        """

    @abc.abstractmethod
    def summary(self) -> Dict[str, Any]:
        """Current value of the statistic as a strict-JSON dict."""

    # ------------------------------------------------------------------
    # Strict-JSON durability
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _state(self) -> Dict[str, Any]:
        """Probe-specific mutable state (strict JSON)."""

    @abc.abstractmethod
    def _load_state(self, state: Mapping[str, Any]) -> None:
        """Inverse of :meth:`_state`."""

    def state_dict(self) -> Dict[str, Any]:
        return {
            "format": PROBE_STATE_FORMAT,
            "version": PROBE_STATE_VERSION,
            "kind": self.kind,
            "state": self._state(),
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        if state.get("format") != PROBE_STATE_FORMAT:
            raise TelemetryError(
                f"not a probe state dict: format={state.get('format')!r}"
            )
        if state.get("version") != PROBE_STATE_VERSION:
            raise TelemetryError(
                f"unsupported probe state version {state.get('version')!r}"
            )
        if state.get("kind") != self.kind:
            raise TelemetryError(
                f"probe state is for kind {state.get('kind')!r}, "
                f"cannot load into {self.kind!r}"
            )
        self._load_state(state["state"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(kind={self.kind!r})"


# ----------------------------------------------------------------------
# Stock probes
# ----------------------------------------------------------------------
@METRICS_PROBES.register("cost-decomposition")
class CostDecompositionProbe(MetricsProbe):
    """Running opening-vs-connection cost split, per commodity.

    Connection cost is attributed to the demanded commodities in equal
    shares (an event reports one connection cost for the whole commodity
    set; the uniform split keeps the per-commodity columns summing exactly
    to the total).  Opening cost is kept as a session-wide aggregate — a
    facility opening serves a configuration, not one commodity.
    """

    kind = "cost-decomposition"

    def __init__(self) -> None:
        self._num_requests = 0
        self._opening_cost = 0.0
        self._connection_cost = 0.0
        self._per_commodity: Dict[int, Dict[str, Any]] = {}

    def observe(self, event: AssignmentEvent, elapsed_seconds: float) -> None:
        self._num_requests += 1
        self._opening_cost += event.opening_cost_delta
        self._connection_cost += event.connection_cost
        share = event.connection_cost / len(event.commodities)
        # Per-commodity accumulators are independent, so iteration order is
        # irrelevant to the result (summaries and state sort on the way out).
        per_commodity = self._per_commodity
        for commodity in event.commodities:
            entry = per_commodity.get(commodity)
            if entry is None:
                entry = per_commodity[commodity] = {
                    "requests": 0,
                    "connection_cost": 0.0,
                }
            entry["requests"] += 1
            entry["connection_cost"] += share

    def summary(self) -> Dict[str, Any]:
        total = self._opening_cost + self._connection_cost
        return {
            "num_requests": self._num_requests,
            "opening_cost": self._opening_cost,
            "connection_cost": self._connection_cost,
            "total_cost": total,
            "opening_fraction": (self._opening_cost / total) if total > 0 else None,
            "per_commodity": {
                str(e): {
                    "requests": entry["requests"],
                    "connection_cost": entry["connection_cost"],
                }
                for e, entry in sorted(self._per_commodity.items())
            },
        }

    def _state(self) -> Dict[str, Any]:
        return {
            "num_requests": self._num_requests,
            "opening_cost": self._opening_cost,
            "connection_cost": self._connection_cost,
            "per_commodity": {
                str(e): dict(entry) for e, entry in sorted(self._per_commodity.items())
            },
        }

    def _load_state(self, state: Mapping[str, Any]) -> None:
        self._num_requests = int(state["num_requests"])
        self._opening_cost = float(state["opening_cost"])
        self._connection_cost = float(state["connection_cost"])
        self._per_commodity = {
            int(e): {
                "requests": int(entry["requests"]),
                "connection_cost": float(entry["connection_cost"]),
            }
            for e, entry in state["per_commodity"].items()
        }


@METRICS_PROBES.register("opening-rate")
class OpeningRateProbe(MetricsProbe):
    """How often (and how expensively) the algorithm opens facilities."""

    kind = "opening-rate"

    def __init__(self) -> None:
        self._num_requests = 0
        self._opening_events = 0
        self._opening_cost = 0.0
        self._max_facility_id = -1

    def observe(self, event: AssignmentEvent, elapsed_seconds: float) -> None:
        self._num_requests += 1
        if event.opening_cost_delta > 0.0:
            self._opening_events += 1
        self._opening_cost += event.opening_cost_delta
        if event.facility_ids:
            self._max_facility_id = max(self._max_facility_id, max(event.facility_ids))

    def summary(self) -> Dict[str, Any]:
        return {
            "num_requests": self._num_requests,
            "opening_events": self._opening_events,
            "opening_rate": (
                self._opening_events / self._num_requests
                if self._num_requests
                else None
            ),
            "opening_cost": self._opening_cost,
            "facilities_seen": self._max_facility_id + 1,
        }

    def _state(self) -> Dict[str, Any]:
        return {
            "num_requests": self._num_requests,
            "opening_events": self._opening_events,
            "opening_cost": self._opening_cost,
            "max_facility_id": self._max_facility_id,
        }

    def _load_state(self, state: Mapping[str, Any]) -> None:
        self._num_requests = int(state["num_requests"])
        self._opening_events = int(state["opening_events"])
        self._opening_cost = float(state["opening_cost"])
        self._max_facility_id = int(state["max_facility_id"])


@METRICS_PROBES.register("latency")
class LatencyReservoirProbe(MetricsProbe):
    """Per-request latency percentiles from a fixed-size reservoir sample.

    The sampling core is the shared
    :class:`~repro.telemetry.reservoir.ReservoirSampler` (Li's "Algorithm L"
    with geometric skips) over the per-request wall-clock times the session
    already measures — the same sampler the span tracer uses for its
    per-phase percentiles, so every latency distribution in the repo is
    estimated the same way.  Its draws come from a **private** generator
    seeded by the probe's own ``seed`` parameter — never from the session's
    generator — so enabling the probe draws nothing from the algorithm's RNG
    stream (the zero-cost contract).
    """

    kind = "latency"

    def __init__(self, capacity: int = 512, seed: int = 0) -> None:
        self._capacity = int(capacity)
        self._seed = int(seed)
        self._sampler = ReservoirSampler(capacity=self._capacity, seed=self._seed)
        self._total_seconds = 0.0
        self._max_seconds = 0.0

    def params(self) -> Dict[str, Any]:
        return {"capacity": self._capacity, "seed": self._seed}

    def observe(self, event: AssignmentEvent, elapsed_seconds: float) -> None:
        self._total_seconds += elapsed_seconds
        if elapsed_seconds > self._max_seconds:
            self._max_seconds = elapsed_seconds
        self._sampler.add(elapsed_seconds)

    def summary(self) -> Dict[str, Any]:
        count = self._sampler.count
        return {
            "num_requests": count,
            "total_seconds": self._total_seconds,
            "mean_seconds": (self._total_seconds / count) if count else None,
            "max_seconds": self._max_seconds if count else None,
            "requests_per_second": (
                count / self._total_seconds if self._total_seconds > 0 else None
            ),
            "reservoir_size": len(self._sampler),
            **self._sampler.percentiles((50.0, 90.0, 99.0)),
        }

    def _state(self) -> Dict[str, Any]:
        # Flattened sampler state: the layout predates the shared sampler
        # class, and keeping it lets version-1 snapshots load unchanged.
        sampler = self._sampler.state_dict()
        return {
            "count": sampler["count"],
            "total_seconds": self._total_seconds,
            "max_seconds": self._max_seconds,
            "reservoir": sampler["reservoir"],
            "w": sampler["w"],
            "next_replacement": sampler["next_replacement"],
            "rng": sampler["rng"],
        }

    def _load_state(self, state: Mapping[str, Any]) -> None:
        self._total_seconds = float(state["total_seconds"])
        self._max_seconds = float(state["max_seconds"])
        self._sampler.load_state_dict(
            {
                "count": state["count"],
                "reservoir": state["reservoir"],
                "w": state["w"],
                "next_replacement": state["next_replacement"],
                "rng": state["rng"],
            }
        )


@METRICS_PROBES.register("competitive-ratio")
class CompetitiveRatioProbe(MetricsProbe):
    """Rolling competitive-ratio estimate against a streaming offline bound.

    Pairs the session's running online cost with the LP-free
    :class:`~repro.analysis.competitive.IncrementalOfflineBound` lower bound
    on offline OPT of the prefix — updated per arrival, never re-solving.
    The reported ``ratio_upper_bound`` (online cost / lower bound) therefore
    *over*-estimates the true competitive ratio; at finalize it exactly
    matches the post-hoc batch computation
    :func:`~repro.analysis.competitive.streaming_lower_bound` on the served
    prefix (pinned with ``==`` in ``tests/test_telemetry.py``).
    """

    kind = "competitive-ratio"

    def __init__(self, anchor_cap: int = 256) -> None:
        self._anchor_cap = int(anchor_cap)
        self._bound: Optional[IncrementalOfflineBound] = None
        self._pending_state: Optional[Dict[str, Any]] = None
        self._online_cost = 0.0
        self._num_requests = 0

    def params(self) -> Dict[str, Any]:
        return {"anchor_cap": self._anchor_cap}

    def bind(self, metric: MetricSpace, cost: FacilityCostFunction) -> None:
        self._bound = IncrementalOfflineBound(
            metric, cost, anchor_cap=self._anchor_cap
        )
        if self._pending_state is not None:
            self._bound.load_state_dict(self._pending_state)
            self._pending_state = None

    def observe(self, event: AssignmentEvent, elapsed_seconds: float) -> None:
        if self._bound is None:
            raise TelemetryError(
                "competitive-ratio probe observed an event before bind(); "
                "attach it through a TelemetrySink"
            )
        self._num_requests += 1
        # Inlined event.total_cost_so_far: this runs once per streamed
        # request, so skip the property-call frame.
        self._online_cost = event.opening_cost_so_far + event.connection_cost_so_far
        # Raw-arrival fast path: the event already validated the request.
        self._bound.update_arrival(event.point, event.commodities)

    @property
    def lower_bound(self) -> float:
        if self._bound is not None:
            return self._bound.value
        if self._pending_state is not None:
            return float(self._pending_state["bound"])
        return 0.0

    def summary(self) -> Dict[str, Any]:
        bound = self.lower_bound
        return {
            "num_requests": self._num_requests,
            "online_cost": self._online_cost,
            "offline_lower_bound": bound,
            "ratio_upper_bound": (self._online_cost / bound) if bound > 0 else None,
        }

    def _state(self) -> Dict[str, Any]:
        if self._bound is not None:
            bound_state: Optional[Dict[str, Any]] = self._bound.state_dict()
        elif self._pending_state is not None:
            bound_state = dict(self._pending_state)
        else:
            bound_state = None  # never bound: nothing observed yet
        return {
            "num_requests": self._num_requests,
            "online_cost": self._online_cost,
            "bound": bound_state,
        }

    def _load_state(self, state: Mapping[str, Any]) -> None:
        self._num_requests = int(state["num_requests"])
        self._online_cost = float(state["online_cost"])
        bound_state = state["bound"]
        if bound_state is None:
            self._pending_state = None
        elif self._bound is not None:
            self._bound.load_state_dict(bound_state)
        else:
            self._pending_state = dict(bound_state)
