"""Uniformly random workloads."""

from __future__ import annotations

from typing import Optional


from repro.core.commodities import CommodityUniverse
from repro.core.instance import Instance
from repro.core.requests import Request, RequestSequence
from repro.costs.base import FacilityCostFunction
from repro.costs.count_based import PowerCost
from repro.exceptions import InvalidInstanceError
from repro.metric.base import MetricSpace
from repro.metric.factories import random_euclidean_metric, random_line_metric
from repro.utils.rng import RandomState, ensure_rng
from repro.workloads.base import GeneratedWorkload

__all__ = ["uniform_workload"]


def uniform_workload(
    *,
    num_requests: int,
    num_commodities: int,
    num_points: int = 64,
    metric: Optional[MetricSpace] = None,
    metric_kind: str = "euclidean",
    cost_function: Optional[FacilityCostFunction] = None,
    cost_exponent_x: float = 1.0,
    cost_scale: float = 1.0,
    min_demand: int = 1,
    max_demand: Optional[int] = None,
    rng: RandomState = None,
) -> GeneratedWorkload:
    """Requests at uniformly random points with uniformly random demand sets.

    Parameters
    ----------
    num_requests, num_commodities, num_points:
        Instance dimensions ``n``, ``|S|``, ``|M|``.
    metric / metric_kind:
        Either an explicit metric space or ``"euclidean"`` / ``"line"`` to
        generate one.
    cost_function / cost_exponent_x / cost_scale:
        Either an explicit cost function or a
        :class:`~repro.costs.count_based.PowerCost` with the given class-``C``
        exponent and scale.
    min_demand, max_demand:
        Each request demands a uniformly random number of commodities in
        ``[min_demand, max_demand]`` (default upper bound: ``min(|S|, 4)``).
    """
    if num_requests < 1 or num_commodities < 1 or num_points < 1:
        raise InvalidInstanceError("num_requests, num_commodities, num_points must be positive")
    generator = ensure_rng(rng)
    if metric is None:
        if metric_kind == "euclidean":
            metric = random_euclidean_metric(num_points, rng=generator)
        elif metric_kind == "line":
            metric = random_line_metric(num_points, rng=generator)
        else:
            raise InvalidInstanceError(f"unknown metric_kind {metric_kind!r}")
    if cost_function is None:
        cost_function = PowerCost(num_commodities, cost_exponent_x, scale=cost_scale)
    if cost_function.num_commodities != num_commodities:
        raise InvalidInstanceError("cost_function.num_commodities must equal num_commodities")

    upper = max_demand if max_demand is not None else min(num_commodities, 4)
    if not 1 <= min_demand <= upper <= num_commodities:
        raise InvalidInstanceError(
            f"demand bounds must satisfy 1 <= min_demand <= max_demand <= |S| "
            f"(got {min_demand}, {upper}, {num_commodities})"
        )

    universe = CommodityUniverse(num_commodities)
    requests = []
    for index in range(num_requests):
        point = int(generator.integers(0, metric.num_points))
        size = int(generator.integers(min_demand, upper + 1))
        demand = universe.sample_subset(size, rng=generator)
        requests.append(Request(index=index, point=point, commodities=demand))
    instance = Instance(
        metric,
        cost_function,
        RequestSequence(requests),
        commodities=universe,
        name=f"uniform(n={num_requests},S={num_commodities},M={metric.num_points})",
    )
    return GeneratedWorkload(
        instance=instance,
        planted_specs=None,
        metadata={
            "workload": "uniform",
            "metric_kind": type(metric).__name__,
            "min_demand": min_demand,
            "max_demand": upper,
        },
    )
