"""The introduction's service-provider scenario as a workload.

Section 1 of the paper motivates the OMFLP with a provider of services in a
network infrastructure: clients appear over time at network locations and ask
for subsets of the offered services; instantiating a set of services in one
virtual machine costs less than instantiating them separately, and talking to
one nearby node offering several requested services is cheaper than talking
to many.

This generator realizes that story end to end:

* the metric is the shortest-path metric of a random connected network
  (:class:`~repro.metric.graph.GraphMetric`);
* the facility cost is a concave function of the total "size" of the bundled
  services, scaled per node (some nodes are cheaper to provision than others)
  — a :class:`~repro.costs.general.WeightedConcaveCost`;
* clients request service bundles drawn from Zipf-skewed popularity, with a
  tunable number of distinct bundle "profiles" (think: web stack, analytics
  stack, ...) so that co-location opportunities exist.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.commodities import CommodityUniverse
from repro.core.instance import Instance
from repro.core.requests import Request, RequestSequence
from repro.costs.general import WeightedConcaveCost
from repro.exceptions import InvalidInstanceError
from repro.metric.factories import random_graph_metric
from repro.utils.rng import RandomState, ensure_rng
from repro.workloads.base import GeneratedWorkload

__all__ = ["service_network_workload"]


def service_network_workload(
    *,
    num_requests: int,
    num_services: int,
    num_nodes: int = 48,
    num_profiles: int = 6,
    profile_size: int = 3,
    edge_probability: float = 0.1,
    zipf_alpha: float = 1.1,
    node_cost_spread: float = 0.5,
    service_weight_spread: float = 0.0,
    rng: RandomState = None,
) -> GeneratedWorkload:
    """Clients requesting service bundles on a random network.

    Parameters
    ----------
    num_profiles, profile_size:
        Number of distinct bundle profiles and their size; each client
        requests one profile (plus occasionally an extra popular service).
    node_cost_spread:
        Relative spread of per-node provisioning cost multipliers.
    service_weight_spread:
        Relative spread of service sizes; ``0`` keeps all services equal,
        which guarantees Condition 1 (heavier spreads model the "heavy
        commodity" regime of the closing remarks).
    """
    if num_requests < 1 or num_services < 1 or num_nodes < 2:
        raise InvalidInstanceError("num_requests, num_services must be >= 1 and num_nodes >= 2")
    if num_profiles < 1 or not 1 <= profile_size <= num_services:
        raise InvalidInstanceError("num_profiles >= 1 and 1 <= profile_size <= num_services required")
    generator = ensure_rng(rng)

    metric = random_graph_metric(num_nodes, edge_probability=edge_probability, rng=generator)
    weights = 1.0 + service_weight_spread * generator.uniform(0.0, 1.0, size=num_services)
    node_scales = 1.0 + node_cost_spread * generator.uniform(0.0, 1.0, size=num_nodes)
    cost = WeightedConcaveCost(weights, point_scales=node_scales, name="service-vm-cost")

    universe = CommodityUniverse(
        num_services, names=[f"service-{i}" for i in range(num_services)]
    )
    ranks = np.arange(1, num_services + 1, dtype=np.float64)
    popularity = 1.0 / np.power(ranks, zipf_alpha)
    profiles: List[frozenset] = [
        universe.sample_subset(profile_size, rng=generator, weights=popularity)
        for _ in range(num_profiles)
    ]

    requests = []
    for index in range(num_requests):
        node = int(generator.integers(0, num_nodes))
        profile = profiles[int(generator.integers(0, num_profiles))]
        demand = set(profile)
        if generator.uniform() < 0.25:
            demand |= universe.sample_subset(1, rng=generator, weights=popularity)
        requests.append(Request(index=index, point=node, commodities=frozenset(demand)))

    instance = Instance(
        metric,
        cost,
        RequestSequence(requests),
        commodities=universe,
        name=f"service-network(n={num_requests},S={num_services},nodes={num_nodes})",
    )
    return GeneratedWorkload(
        instance=instance,
        metadata={
            "workload": "service-network",
            "num_profiles": num_profiles,
            "profile_size": profile_size,
            "zipf_alpha": zipf_alpha,
            "node_cost_spread": node_cost_spread,
            "service_weight_spread": service_weight_spread,
        },
    )
