"""Clustered workloads with planted optimal centers.

The analysis of RAND-OMFLP (Section 4.2 of the paper) reasons about *optimal
centers*: facilities of the offline optimum together with the requests they
serve.  This generator produces instances with exactly that structure made
explicit — a set of cluster centers, each with a commodity bundle, and
requests that appear near their center demanding subsets of its bundle — and
returns the planted facility set so experiments can use it as an offline
reference (an upper bound on OPT that is near-tight for well-separated
clusters).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core.commodities import CommodityUniverse
from repro.core.instance import Instance
from repro.core.requests import Request, RequestSequence
from repro.costs.base import FacilityCostFunction
from repro.costs.count_based import PowerCost
from repro.exceptions import InvalidInstanceError
from repro.metric.base import MetricSpace
from repro.metric.euclidean import EuclideanMetric
from repro.utils.rng import RandomState, ensure_rng
from repro.workloads.base import GeneratedWorkload

__all__ = ["clustered_workload"]


def clustered_workload(
    *,
    num_requests: int,
    num_commodities: int,
    num_clusters: int = 4,
    points_per_cluster: int = 12,
    cluster_radius: float = 0.05,
    side: float = 1.0,
    bundle_size: Optional[int] = None,
    demand_size: Optional[int] = None,
    cost_function: Optional[FacilityCostFunction] = None,
    cost_exponent_x: float = 1.0,
    cost_scale: float = 1.0,
    rng: RandomState = None,
) -> GeneratedWorkload:
    """Requests clustered around planted centers with per-center commodity bundles.

    The metric is Euclidean (the plane): each cluster has a center drawn
    uniformly from ``[0, side]^2`` and ``points_per_cluster`` candidate points
    within ``cluster_radius`` of it.  Each cluster owns a commodity *bundle*
    of size ``bundle_size`` (default ``min(|S|, max(2, |S| // num_clusters))``)
    and every request located in the cluster demands a random subset of the
    bundle of size ``demand_size`` (default: between 1 and the bundle size).

    The planted solution opens one facility per cluster at the center point
    offering the full bundle.
    """
    if num_requests < 1 or num_commodities < 1 or num_clusters < 1:
        raise InvalidInstanceError("num_requests, num_commodities, num_clusters must be positive")
    if points_per_cluster < 1:
        raise InvalidInstanceError("points_per_cluster must be positive")
    if cluster_radius < 0 or side <= 0:
        raise InvalidInstanceError("cluster_radius must be >= 0 and side > 0")
    generator = ensure_rng(rng)

    universe = CommodityUniverse(num_commodities)
    default_bundle = min(num_commodities, max(2, num_commodities // num_clusters))
    bundle = bundle_size if bundle_size is not None else default_bundle
    if not 1 <= bundle <= num_commodities:
        raise InvalidInstanceError(f"bundle_size must lie in [1, {num_commodities}], got {bundle}")

    # Build the point set: the first point of each cluster is its center.
    coordinates: List[Tuple[float, float]] = []
    cluster_center_point: List[int] = []
    cluster_points: List[List[int]] = []
    for _ in range(num_clusters):
        cx, cy = generator.uniform(0.0, side, size=2)
        center_index = len(coordinates)
        coordinates.append((float(cx), float(cy)))
        members = [center_index]
        for _ in range(points_per_cluster - 1):
            angle = generator.uniform(0.0, 2.0 * np.pi)
            radius = generator.uniform(0.0, cluster_radius)
            coordinates.append((float(cx + radius * np.cos(angle)), float(cy + radius * np.sin(angle))))
            members.append(len(coordinates) - 1)
        cluster_center_point.append(center_index)
        cluster_points.append(members)
    metric: MetricSpace = EuclideanMetric(np.asarray(coordinates, dtype=np.float64))

    if cost_function is None:
        cost_function = PowerCost(num_commodities, cost_exponent_x, scale=cost_scale)
    if cost_function.num_commodities != num_commodities:
        raise InvalidInstanceError("cost_function.num_commodities must equal num_commodities")

    # Assign a commodity bundle to each cluster (bundles may overlap).
    bundles: List[FrozenSet[int]] = [
        universe.sample_subset(bundle, rng=generator) for _ in range(num_clusters)
    ]

    requests = []
    for index in range(num_requests):
        cluster = int(generator.integers(0, num_clusters))
        point = int(cluster_points[cluster][int(generator.integers(0, len(cluster_points[cluster])))])
        members = sorted(bundles[cluster])
        if demand_size is not None:
            size = min(demand_size, len(members))
        else:
            size = int(generator.integers(1, len(members) + 1))
        chosen = generator.choice(len(members), size=size, replace=False)
        demand = frozenset(members[i] for i in chosen)
        requests.append(Request(index=index, point=point, commodities=demand))

    instance = Instance(
        metric,
        cost_function,
        RequestSequence(requests),
        commodities=universe,
        name=(
            f"clustered(n={num_requests},S={num_commodities},"
            f"k={num_clusters},r={cluster_radius:g})"
        ),
    )
    planted = [
        (cluster_center_point[c], bundles[c]) for c in range(num_clusters)
    ]
    return GeneratedWorkload(
        instance=instance,
        planted_specs=planted,
        metadata={
            "workload": "clustered",
            "num_clusters": num_clusters,
            "cluster_radius": cluster_radius,
            "bundle_size": bundle,
        },
    )
