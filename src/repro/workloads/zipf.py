"""Workloads with Zipf-distributed commodity popularity.

Real service demand is heavily skewed: a few services are requested by almost
every client while the long tail is rarely needed.  This generator draws each
request's demand set without replacement proportionally to Zipf weights
``1 / rank^alpha``, producing instances where a handful of commodities appear
in most requests — the regime where sharing large facilities pays off most.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.commodities import CommodityUniverse
from repro.core.instance import Instance
from repro.core.requests import Request, RequestSequence
from repro.costs.base import FacilityCostFunction
from repro.costs.count_based import PowerCost
from repro.exceptions import InvalidInstanceError
from repro.metric.base import MetricSpace
from repro.metric.factories import random_euclidean_metric
from repro.utils.rng import RandomState, ensure_rng
from repro.workloads.base import GeneratedWorkload

__all__ = ["zipf_workload"]


def zipf_workload(
    *,
    num_requests: int,
    num_commodities: int,
    num_points: int = 64,
    zipf_alpha: float = 1.2,
    min_demand: int = 1,
    max_demand: Optional[int] = None,
    metric: Optional[MetricSpace] = None,
    cost_function: Optional[FacilityCostFunction] = None,
    cost_exponent_x: float = 1.0,
    rng: RandomState = None,
) -> GeneratedWorkload:
    """Uniform request locations, Zipf-skewed commodity demand."""
    if zipf_alpha < 0:
        raise InvalidInstanceError("zipf_alpha must be non-negative")
    if num_requests < 1 or num_commodities < 1 or num_points < 1:
        raise InvalidInstanceError("num_requests, num_commodities, num_points must be positive")
    generator = ensure_rng(rng)
    if metric is None:
        metric = random_euclidean_metric(num_points, rng=generator)
    if cost_function is None:
        cost_function = PowerCost(num_commodities, cost_exponent_x)
    if cost_function.num_commodities != num_commodities:
        raise InvalidInstanceError("cost_function.num_commodities must equal num_commodities")

    upper = max_demand if max_demand is not None else min(num_commodities, 4)
    if not 1 <= min_demand <= upper <= num_commodities:
        raise InvalidInstanceError(
            f"demand bounds must satisfy 1 <= min_demand <= max_demand <= |S| "
            f"(got {min_demand}, {upper}, {num_commodities})"
        )

    universe = CommodityUniverse(num_commodities)
    ranks = np.arange(1, num_commodities + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, zipf_alpha)

    requests = []
    for index in range(num_requests):
        point = int(generator.integers(0, metric.num_points))
        size = int(generator.integers(min_demand, upper + 1))
        demand = universe.sample_subset(size, rng=generator, weights=weights)
        requests.append(Request(index=index, point=point, commodities=demand))
    instance = Instance(
        metric,
        cost_function,
        RequestSequence(requests),
        commodities=universe,
        name=f"zipf(n={num_requests},S={num_commodities},alpha={zipf_alpha:g})",
    )
    return GeneratedWorkload(
        instance=instance,
        metadata={"workload": "zipf", "zipf_alpha": zipf_alpha, "max_demand": upper},
    )
