"""Arrival-order models.

Section 1.2 of the paper points out that Meyerson's algorithm performs much
better when the adversary cannot fully control the arrival order (random order
gives O(1), and gradually weakening the adversary interpolates, citing Lang
2018).  These helpers produce reordered copies of an instance so experiments
can compare adversarial-ish and random arrival orders for the same multiset of
requests.
"""

from __future__ import annotations


import numpy as np

from repro.core.instance import Instance
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["random_order", "adversarial_order"]


def random_order(instance: Instance, *, rng: RandomState = None) -> Instance:
    """The same requests in a uniformly random arrival order."""
    generator = ensure_rng(rng)
    order = list(generator.permutation(instance.num_requests))
    return instance.reordered([int(i) for i in order])


def adversarial_order(instance: Instance) -> Instance:
    """A heuristic adversarial order: sparse demands first, far points first.

    The classical hard sequences reveal little information early (isolated,
    small demands) and concentrate mass late; this reordering sorts requests
    by (ascending demand size, descending distance from the request-location
    centroid), which empirically degrades the online algorithms relative to
    random order without requiring adaptivity.
    """
    metric = instance.metric
    points = [r.point for r in instance.requests]
    # Distance of each request from the most central request location.
    counts = np.bincount(points, minlength=metric.num_points).astype(np.float64)
    centroid = int(np.argmax(counts))
    row = metric.distances_from(centroid)
    keys = []
    for request in instance.requests:
        keys.append((len(request.commodities), -float(row[request.point]), request.index))
    order = [index for _, _, index in sorted(keys)]
    return instance.reordered(order)
