"""Common container for generated workloads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.algorithms.offline.planted import PlantedSolver
from repro.core.instance import Instance

__all__ = ["GeneratedWorkload"]


@dataclass
class GeneratedWorkload:
    """An instance plus the generator's side information.

    Attributes
    ----------
    instance:
        The generated OMFLP instance.
    planted_specs:
        Optional list of ``(point, configuration)`` facilities that the
        generator considers a good offline solution (clustered workloads plant
        one facility per cluster).  ``planted_solver()`` wraps them into an
        offline reference.
    metadata:
        Free-form generator parameters recorded for experiment tables.
    """

    instance: Instance
    planted_specs: Optional[List[Tuple[int, FrozenSet[int]]]] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def planted_solver(self) -> Optional[PlantedSolver]:
        """Offline reference solver evaluating the planted facilities, if any."""
        if not self.planted_specs:
            return None
        return PlantedSolver(self.planted_specs)

    def describe(self) -> Dict[str, object]:
        info = dict(self.instance.describe())
        info.update(self.metadata)
        info["has_planted_solution"] = bool(self.planted_specs)
        return info
