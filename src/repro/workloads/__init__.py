"""Synthetic workload generators.

The paper has no experimental section, so the reproduction evaluates the
algorithms on synthetic instance families chosen to exercise the regimes the
theory distinguishes:

* :mod:`repro.workloads.uniform` — requests at uniformly random points with
  uniformly random demand sets (the unstructured baseline workload);
* :mod:`repro.workloads.clustered` — requests concentrated around planted
  "optimal centers" with per-center commodity bundles (the structure the
  RAND-OMFLP analysis reasons about, Section 4.2) together with the planted
  facility set used as an offline reference;
* :mod:`repro.workloads.zipf` — skewed commodity popularity (realistic service
  demand distributions for the introduction's provider scenario);
* :mod:`repro.workloads.service_network` — the introduction's scenario end to
  end: a random network (graph metric), services with set-up economies of
  scale, clients requesting service bundles;
* :mod:`repro.workloads.orders` — arrival-order models (adversarial-ish
  sorted orders vs uniformly random order), reflecting the discussion of
  weakened adversaries in Section 1.2.
"""

from repro.workloads.base import GeneratedWorkload
from repro.workloads.clustered import clustered_workload
from repro.workloads.orders import adversarial_order, random_order
from repro.workloads.service_network import service_network_workload
from repro.workloads.uniform import uniform_workload
from repro.workloads.zipf import zipf_workload

__all__ = [
    "GeneratedWorkload",
    "uniform_workload",
    "clustered_workload",
    "zipf_workload",
    "service_network_workload",
    "random_order",
    "adversarial_order",
]
