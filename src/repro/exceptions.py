"""Exception hierarchy of the OMFLP reproduction library.

All library-specific failures derive from :class:`ReproError` so that callers
can distinguish modelling errors (infeasible assignments, invalid cost
functions, malformed instances) from ordinary Python errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidMetricError",
    "InvalidCostFunctionError",
    "InfeasibleSolutionError",
    "InvalidInstanceError",
    "AlgorithmError",
    "ExperimentError",
    "ParallelTaskError",
    "EngineError",
    "UnknownComponentError",
    "SnapshotError",
    "ServiceError",
    "ScenarioError",
    "TelemetryError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InvalidMetricError(ReproError):
    """A metric space violates the metric axioms or received invalid points."""


class InvalidCostFunctionError(ReproError):
    """A facility cost function violates its declared structural properties."""


class InvalidInstanceError(ReproError):
    """An OMFLP instance is malformed (unknown points, empty commodity sets, ...)."""


class InfeasibleSolutionError(ReproError):
    """A solution leaves some request's commodity unserved or references unopened facilities."""


class AlgorithmError(ReproError):
    """An online or offline algorithm reached an internal inconsistency."""


class ExperimentError(ReproError):
    """An experiment was configured inconsistently or produced invalid output."""


class ParallelTaskError(ExperimentError):
    """One item of a parallel map failed inside a worker process.

    Carries the failing item's identity (``item_index`` into the input list
    and a truncated ``item_repr``) so that a crash in a thousand-task sweep
    names the offending case instead of surfacing a bare pool traceback.
    Raised by :func:`repro.parallel.pool.parallel_map`; the original exception
    is chained as ``__cause__`` (or, across process boundaries, preserved in
    the message and remote traceback).
    """

    def __init__(
        self,
        message: str,
        item_index: "int | None" = None,
        item_repr: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.item_index = item_index
        self.item_repr = item_repr

    def __reduce__(self):
        # Exceptions with keyword state need an explicit reduce to survive the
        # pickle round-trip from a pool worker back to the parent process.
        return (type(self), (self.args[0], self.item_index, self.item_repr))


class EngineError(ReproError):
    """The experiment engine was misused (unstorable task, bad plan, ...)."""


class UnknownComponentError(ReproError):
    """A string key did not resolve against a component registry.

    Raised by :mod:`repro.api.registry` lookups; the message always lists the
    registered names (plus a did-you-mean suggestion for near misses) so that
    a typo in a config file is immediately fixable.
    """


class SnapshotError(ReproError):
    """A session snapshot could not be captured, decoded or restored.

    Raised by the durable-session codec (:mod:`repro.service.snapshot`) and by
    the ``state_dict`` / ``load_state_dict`` hooks when a snapshot is applied
    to a component in the wrong state (not freshly prepared, wrong accel mode,
    unknown format version, ...).
    """


class ServiceError(ReproError):
    """A session-manager operation failed (unknown session, bad name, ...)."""


class ScenarioError(ReproError):
    """A scenario was declared or driven inconsistently.

    Raised by the compositional scenario engine (:mod:`repro.scenarios`) for
    invalid or out-of-range scenario parameters (always naming the offending
    key), incompatible combinator children, realizing an unbounded stream
    without a limit, or resuming a stream from a mismatched state dict.
    """


class TelemetryError(ReproError):
    """A telemetry probe or sink was configured or driven inconsistently.

    Raised by :mod:`repro.telemetry` for unknown probe kinds (with the
    registry's did-you-mean suggestion), duplicate probes on one sink,
    recording into an unbound sink, and malformed probe/sink state dicts.
    """
