"""Exception hierarchy of the OMFLP reproduction library.

All library-specific failures derive from :class:`ReproError` so that callers
can distinguish modelling errors (infeasible assignments, invalid cost
functions, malformed instances) from ordinary Python errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidMetricError",
    "InvalidCostFunctionError",
    "InfeasibleSolutionError",
    "InvalidInstanceError",
    "AlgorithmError",
    "ExperimentError",
    "UnknownComponentError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InvalidMetricError(ReproError):
    """A metric space violates the metric axioms or received invalid points."""


class InvalidCostFunctionError(ReproError):
    """A facility cost function violates its declared structural properties."""


class InvalidInstanceError(ReproError):
    """An OMFLP instance is malformed (unknown points, empty commodity sets, ...)."""


class InfeasibleSolutionError(ReproError):
    """A solution leaves some request's commodity unserved or references unopened facilities."""


class AlgorithmError(ReproError):
    """An online or offline algorithm reached an internal inconsistency."""


class ExperimentError(ReproError):
    """An experiment was configured inconsistently or produced invalid output."""


class UnknownComponentError(ReproError):
    """A string key did not resolve against a component registry.

    Raised by :mod:`repro.api.registry` lookups; the message always lists the
    registered names so that a typo in a config file is immediately fixable.
    """
